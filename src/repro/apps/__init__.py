"""Applications built on the library: the MiniCMS case study (the paper's
running example) and a hand-coded three-tier baseline used for comparison
(``docs/architecture.md`` § "repro.apps")."""
