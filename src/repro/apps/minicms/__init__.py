"""MiniCMS: the paper's running example as a loadable Hilda application
(``docs/architecture.md`` § "repro.apps")."""

from repro.apps.minicms.fixtures import (
    ADMIN_USER,
    STUDENT1_USER,
    STUDENT2_USER,
    SYSADMIN_USER,
    PaperScenarioIds,
    seed_paper_scenario,
    seed_scaled,
)
from repro.apps.minicms.builder import (
    build_minicms_program,
    build_navcms_program,
    minicms_builder,
    navcms_builder,
)
from repro.apps.minicms.source import (
    MINICMS_SOURCE,
    NAVCMS_PROGRAM_SOURCE,
)

__all__ = [
    "ADMIN_USER",
    "MINICMS_SOURCE",
    "NAVCMS_PROGRAM_SOURCE",
    "PaperScenarioIds",
    "STUDENT1_USER",
    "STUDENT2_USER",
    "SYSADMIN_USER",
    "build_minicms_program",
    "build_navcms_program",
    "load_minicms",
    "load_navcms",
    "minicms_builder",
    "navcms_builder",
    "seed_paper_scenario",
    "seed_scaled",
]


def load_minicms(validate: bool = True):
    """Load the MiniCMS program rooted at CMSRoot (Figures 2-4, 8)."""
    from repro.hilda.program import load_program

    return load_program(MINICMS_SOURCE, validate=validate)


def load_navcms(validate: bool = True):
    """Load MiniCMS structured as a web site rooted at NavCMS (Figure 13)."""
    from repro.hilda.program import load_program

    return load_program(NAVCMS_PROGRAM_SOURCE, validate=validate)
