"""MiniCMS authored in the Python builder DSL (:mod:`repro.api`).

This is the same application as :mod:`repro.apps.minicms.source` — the
paper's running example (Figures 2, 3, 4, 8 and 13) — written as plain
Python instead of Hilda text.  Both front ends construct the same AST and
resolve through the same pipeline, so the two versions are observationally
equivalent: the round-trip property test
(``tests/api/test_roundtrip_minicms.py``) drives randomized workloads
against both and asserts byte-identical pages and identical persistent
state.

Besides being the equivalence witness, this module is the reference for
how a real multi-AUnit application reads in the DSL: inout schemas,
activation queries, conditions, inheritance with activation filters
(NavCMS), and PUnit templates.
"""

from __future__ import annotations

from repro.api.builder import AppBuilder, AUnitBuilder, aunit, table
from repro.hilda.program import HildaProgram

__all__ = [
    "build_minicms_program",
    "build_navcms_program",
    "minicms_builder",
    "navcms_builder",
]


# ---------------------------------------------------------------------------
# CMSRoot (Figure 2)
# ---------------------------------------------------------------------------


def _cmsroot(root: bool) -> AUnitBuilder:
    cmsroot = aunit("CMSRoot", root=root)
    cmsroot.input(table("user", name="string"))
    cmsroot.persist(
        table("sysadmin", aname="string"),
        table("course", cid="int key", cname="string"),
        table("staff", stid="int key", cid="int", sname="string", role="string"),
        table("student", sid="int key", cid="int", sname="string"),
        table(
            "assign",
            aid="int key",
            cid="int",
            name="string",
            release="date",
            due="date",
        ),
        table("problem", pid="int key", aid="int", name="string", weight="float"),
        table("group", gid="int key", aid="int"),
        table("groupmember", gmid="int key", gid="int", sid="int", grade="float"),
        table(
            "invitation",
            iid="int key",
            gid="int",
            invitersid="int",
            inviteesid="int",
        ),
    )

    # One CourseAdmin instance per administered course.
    admin = cmsroot.activator("ActCourseAdmin", "CourseAdmin")
    admin.activation(
        table("acourse", cid="int"),
        """
        SELECT C.cid
        FROM course C, staff S, user U
        WHERE C.cid = S.cid AND S.sname = U.name AND S.role = "admin"
        """,
    )
    admin.input_query(
        "CourseAdmin.assign",
        """
        SELECT A.aid, A.name, A.release, A.due
        FROM assign A
        WHERE A.cid = activationTuple.cid
        """,
    )
    admin.input_query(
        "CourseAdmin.problem",
        """
        SELECT P.pid, P.aid, P.name, P.weight
        FROM problem P, assign A
        WHERE P.aid = A.aid AND A.cid = activationTuple.cid
        """,
    )
    admin.handler("UpdateAssignments").do(
        "assign",
        """
        SELECT A.aid, A.cid, A.name, A.release, A.due
        FROM assign A
        WHERE A.aid NOT IN (SELECT I.aid FROM CourseAdmin.in.assign I)
        UNION
        SELECT O.aid, activationTuple.cid, O.name, O.release, O.due
        FROM CourseAdmin.out.assign O
        """,
    ).do(
        "problem",
        """
        SELECT P.pid, P.aid, P.name, P.weight
        FROM problem P
        WHERE P.pid NOT IN (SELECT I.pid FROM CourseAdmin.in.problem I)
        UNION
        SELECT O.pid, O.aid, O.name, O.weight
        FROM CourseAdmin.out.problem O
        """,
    )

    # One Student instance per enrolled course.
    student = cmsroot.activator("ActStudent", "Student")
    student.activation(
        table("acourse", cid="int"),
        """
        SELECT C.cid
        FROM course C, student S, user U
        WHERE C.cid = S.cid AND S.sname = U.name
        """,
    )
    student.input_query(
        "Student.curstudent",
        """
        SELECT S.sid
        FROM student S, user U
        WHERE S.sname = U.name AND S.cid = activationTuple.cid
        """,
    )
    student.input_query(
        "Student.assign",
        """
        SELECT A.aid, A.name, A.release, A.due
        FROM assign A
        WHERE A.cid = activationTuple.cid
        """,
    )
    student.input_query(
        "Student.others",
        """
        SELECT S.sid, S.sname
        FROM student S, user U
        WHERE S.cid = activationTuple.cid AND S.sname <> U.name
        """,
    )
    student.input_query(
        "Student.group",
        """
        SELECT G.gid, G.aid
        FROM group G, assign A
        WHERE G.aid = A.aid AND A.cid = activationTuple.cid
        """,
    )
    student.input_query(
        "Student.groupmember",
        """
        SELECT GM.gmid, GM.gid, GM.sid, GM.grade
        FROM groupmember GM, group G, assign A
        WHERE GM.gid = G.gid AND G.aid = A.aid AND A.cid = activationTuple.cid
        """,
    )
    student.input_query(
        "Student.invitation",
        """
        SELECT I.iid, I.gid, I.invitersid, I.inviteesid
        FROM invitation I, group G, assign A
        WHERE I.gid = G.gid AND G.aid = A.aid AND A.cid = activationTuple.cid
        """,
    )
    student.handler("UpdateGroups").do(
        "group",
        """
        SELECT G.gid, G.aid
        FROM group G
        WHERE G.gid NOT IN (SELECT X.gid FROM Student.in.group X)
        UNION
        SELECT O.gid, O.aid FROM Student.out.group O
        """,
    ).do(
        "groupmember",
        """
        SELECT GM.gmid, GM.gid, GM.sid, GM.grade
        FROM groupmember GM
        WHERE GM.gmid NOT IN (SELECT X.gmid FROM Student.in.groupmember X)
        UNION
        SELECT O.gmid, O.gid, O.sid, O.grade FROM Student.out.groupmember O
        """,
    ).do(
        "invitation",
        """
        SELECT I.iid, I.gid, I.invitersid, I.inviteesid
        FROM invitation I
        WHERE I.iid NOT IN (SELECT X.iid FROM Student.in.invitation X)
        UNION
        SELECT O.iid, O.gid, O.invitersid, O.inviteesid
        FROM Student.out.invitation O
        """,
    )

    # System administrators: manage courses, students and staff.
    sysadmin = cmsroot.activator("ActSysAdmin", "SysAdmin")
    sysadmin.activation(
        table("aadmin", aname="string"),
        'SELECT A.aname FROM sysadmin A, user U WHERE A.aname = U.name',
    )
    sysadmin.input_query("SysAdmin.course", "SELECT C.cid, C.cname FROM course C")
    sysadmin.input_query(
        "SysAdmin.staff", "SELECT S.stid, S.cid, S.sname, S.role FROM staff S"
    )
    sysadmin.input_query(
        "SysAdmin.student", "SELECT S.sid, S.cid, S.sname FROM student S"
    )
    sysadmin.handler("UpdateCatalog").do(
        "course", "SELECT O.cid, O.cname FROM SysAdmin.out.course O"
    ).do(
        "staff", "SELECT O.stid, O.cid, O.sname, O.role FROM SysAdmin.out.staff O"
    ).do(
        "student", "SELECT O.sid, O.cid, O.sname FROM SysAdmin.out.student O"
    )
    return cmsroot


# ---------------------------------------------------------------------------
# CourseAdmin (Figure 3)
# ---------------------------------------------------------------------------


def _course_admin() -> AUnitBuilder:
    admin = aunit("CourseAdmin")
    admin.inout(
        table("assign", aid="int key", name="string", release="date", due="date"),
        table("problem", pid="int key", aid="int", name="string", weight="float"),
    )

    create = admin.activator("ActCreateAssign", "CreateAssignment")
    create.return_handler("NewAssignment").do(
        "assign",
        """
        SELECT A.aid, A.name, A.release, A.due FROM in.assign A
        UNION
        SELECT N.aid, N.name, N.release, N.due
        FROM CreateAssignment.newassign N
        """,
    ).do(
        "problem",
        """
        SELECT P.pid, P.aid, P.name, P.weight FROM in.problem P
        UNION
        SELECT N.pid, N.aid, N.name, N.weight
        FROM CreateAssignment.newproblem N
        """,
    )

    show = admin.activator("ActShowAssignment", "ShowRow", "string")
    show.activation(
        table("allassign", aid="int", assignname="string"),
        "SELECT A.aid, A.name FROM in.assign A",
    )
    show.input_query("ShowRow.input", "SELECT activationTuple.assignname")

    delete = admin.activator("ActDeleteAssign", "SelectRow", "int", "string")
    delete.input_query("SelectRow.input", "SELECT A.aid, A.name FROM in.assign A")
    delete.return_handler("DeleteAssignment").do(
        "assign",
        """
        SELECT A.aid, A.name, A.release, A.due
        FROM in.assign A, SelectRow.output O
        WHERE A.aid <> O.c1
        """,
    ).do(
        "problem",
        """
        SELECT P.pid, P.aid, P.name, P.weight
        FROM in.problem P, SelectRow.output O
        WHERE P.aid <> O.c1
        """,
    )
    return admin


# ---------------------------------------------------------------------------
# CreateAssignment (Figure 4)
# ---------------------------------------------------------------------------


def _create_assignment() -> AUnitBuilder:
    create = aunit("CreateAssignment")
    create.output(
        table("newassign", aid="int", name="string", release="date", due="date"),
        table("newproblem", pid="int", aid="int", name="string", weight="float"),
    )
    create.local(
        table("assign", name="string", release="date", due="date"),
        table("problem", pid="int", name="string", weight="float"),
    )
    create.local_init("assign", 'SELECT "", curr_date(), curr_date()')

    info = create.activator("ActAssignInfo", "UpdateRow", "string", "date", "date")
    info.input_query(
        "UpdateRow.input", "SELECT A.name, A.release, A.due FROM assign A"
    )
    info.handler("updateAssign").do(
        "assign", "SELECT O.c1, O.c2, O.c3 FROM UpdateRow.output O"
    )

    new_problem = create.activator("ActNewProblem", "GetRow", "string", "float")
    new_problem.handler("addProblem").do(
        "problem",
        """
        SELECT P.pid, P.name, P.weight FROM problem P
        UNION
        SELECT genkey(), O.c1, O.c2 FROM GetRow.output O
        """,
    )

    submit = create.activator("SubmitAssignment", "SubmitBasic")
    submit.return_handler("success").when(
        "SELECT A.name FROM assign A WHERE A.release <= A.due"
    ).do(
        "newassign", "SELECT genkey(), A.name, A.release, A.due FROM assign A"
    ).do(
        "newproblem",
        """
        SELECT P.pid, N.aid, P.name, P.weight
        FROM problem P, newassign N
        """,
    )
    submit.handler("fail").when(
        "SELECT A.name FROM assign A WHERE A.release > A.due"
    ).do("assign", 'SELECT "", curr_date(), curr_date()')
    return create


# ---------------------------------------------------------------------------
# Student (Figure 8)
# ---------------------------------------------------------------------------


def _student() -> AUnitBuilder:
    student = aunit("Student")
    student.input(
        table("curstudent", sid="int"),
        table("assign", aid="int key", name="string", release="date", due="date"),
        table("others", osid="int key", oname="string"),
    )
    student.inout(
        table("group", gid="int key", aid="int"),
        table("groupmember", gmid="int key", gid="int", sid="int", grade="float"),
        table(
            "invitation",
            iid="int key",
            gid="int",
            invitersid="int",
            inviteesid="int",
        ),
    )

    grades = student.activator("ActShowGrades", "ShowRow", "string", "float")
    grades.activation(
        table("agrade", aid="int", assignname="string", grade="float"),
        """
        SELECT A.aid, A.name, GM.grade
        FROM assign A, group G, groupmember GM, curstudent S
        WHERE G.aid = A.aid AND GM.gid = G.gid AND GM.sid = S.sid
        """,
    )
    grades.input_query(
        "ShowRow.input",
        "SELECT activationTuple.assignname, activationTuple.grade",
    )

    place = student.activator("ActPlaceInv", "SelectRow", "int", "string", "int")
    place.input_query(
        "SelectRow.input",
        "SELECT O.osid, O.oname, A.aid FROM others O, assign A",
    )
    place.return_handler("PlaceInvitation").do(
        "group",
        """
        SELECT G.gid, G.aid FROM in.group G
        UNION
        SELECT genkey(), O.c3 FROM SelectRow.output O
        """,
    ).do(
        "groupmember",
        """
        SELECT GM.gmid, GM.gid, GM.sid, GM.grade FROM in.groupmember GM
        UNION
        SELECT genkey(), G.gid, S.sid, NULL
        FROM group G, SelectRow.output O, curstudent S
        WHERE G.aid = O.c3
          AND G.gid NOT IN (SELECT X.gid FROM in.group X)
        """,
    ).do(
        "invitation",
        """
        SELECT I.iid, I.gid, I.invitersid, I.inviteesid FROM in.invitation I
        UNION
        SELECT genkey(), G.gid, S.sid, O.c1
        FROM group G, SelectRow.output O, curstudent S
        WHERE G.aid = O.c3
          AND G.gid NOT IN (SELECT X.gid FROM in.group X)
        """,
    )

    withdraw = student.activator("ActWithdrawInv", "SelectRow", "int", "int")
    withdraw.activation(
        table("ainv", iid="int", inviteesid="int"),
        """
        SELECT I.iid, I.inviteesid
        FROM invitation I, curstudent S
        WHERE I.invitersid = S.sid
        """,
    )
    withdraw.input_query(
        "SelectRow.input",
        "SELECT activationTuple.iid, activationTuple.inviteesid",
    )
    withdraw.return_handler("Withdraw").do(
        "invitation",
        """
        SELECT I.iid, I.gid, I.invitersid, I.inviteesid
        FROM in.invitation I, SelectRow.output O
        WHERE I.iid <> O.c1
        """,
    ).do(
        "group", "SELECT G.gid, G.aid FROM in.group G"
    ).do(
        "groupmember",
        "SELECT GM.gmid, GM.gid, GM.sid, GM.grade FROM in.groupmember GM",
    )

    accept = student.activator("ActAcceptInv", "SelectRow", "int", "int")
    accept.activation(
        table("ainv", iid="int", invitersid="int"),
        """
        SELECT I.iid, I.invitersid
        FROM invitation I, curstudent S
        WHERE I.inviteesid = S.sid
        """,
    )
    accept.input_query(
        "SelectRow.input",
        "SELECT activationTuple.iid, activationTuple.invitersid",
    )
    accept.return_handler("Accept").do(
        "invitation",
        """
        SELECT I.iid, I.gid, I.invitersid, I.inviteesid
        FROM in.invitation I, SelectRow.output O
        WHERE I.iid <> O.c1
        """,
    ).do(
        "group", "SELECT G.gid, G.aid FROM in.group G"
    ).do(
        "groupmember",
        """
        SELECT GM.gmid, GM.gid, GM.sid, GM.grade FROM in.groupmember GM
        UNION
        SELECT genkey(), I.gid, S.sid, NULL
        FROM in.invitation I, SelectRow.output O, curstudent S
        WHERE I.iid = O.c1
        """,
    )

    decline = student.activator("ActDeclineInv", "SelectRow", "int", "int")
    decline.activation(
        table("ainv", iid="int", invitersid="int"),
        """
        SELECT I.iid, I.invitersid
        FROM invitation I, curstudent S
        WHERE I.inviteesid = S.sid
        """,
    )
    decline.input_query(
        "SelectRow.input",
        "SELECT activationTuple.iid, activationTuple.invitersid",
    )
    decline.return_handler("Decline").do(
        "invitation",
        """
        SELECT I.iid, I.gid, I.invitersid, I.inviteesid
        FROM in.invitation I, SelectRow.output O
        WHERE I.iid <> O.c1
        """,
    ).do(
        "group", "SELECT G.gid, G.aid FROM in.group G"
    ).do(
        "groupmember",
        "SELECT GM.gmid, GM.gid, GM.sid, GM.grade FROM in.groupmember GM",
    )
    return student


# ---------------------------------------------------------------------------
# SysAdmin (the branch Figure 2 elides)
# ---------------------------------------------------------------------------


def _sysadmin() -> AUnitBuilder:
    sysadmin = aunit("SysAdmin")
    sysadmin.inout(
        table("course", cid="int key", cname="string"),
        table("staff", stid="int key", cid="int", sname="string", role="string"),
        table("student", sid="int key", cid="int", sname="string"),
    )

    sysadmin.activator("ActShowCourses", "ShowTable", "int", "string").input_query(
        "ShowTable.input", "SELECT C.cid, C.cname FROM in.course C"
    )

    add_course = sysadmin.activator("ActAddCourse", "GetRow", "string")
    add_course.return_handler("AddCourse").do(
        "course",
        """
        SELECT C.cid, C.cname FROM in.course C
        UNION
        SELECT genkey(), O.c1 FROM GetRow.output O
        """,
    ).do(
        "staff", "SELECT S.stid, S.cid, S.sname, S.role FROM in.staff S"
    ).do(
        "student", "SELECT S.sid, S.cid, S.sname FROM in.student S"
    )

    add_student = sysadmin.activator("ActAddStudent", "GetRow", "int", "string")
    add_student.return_handler("AddStudent").do(
        "course", "SELECT C.cid, C.cname FROM in.course C"
    ).do(
        "staff", "SELECT S.stid, S.cid, S.sname, S.role FROM in.staff S"
    ).do(
        "student",
        """
        SELECT S.sid, S.cid, S.sname FROM in.student S
        UNION
        SELECT genkey(), O.c1, O.c2 FROM GetRow.output O
        """,
    )

    add_staff = sysadmin.activator("ActAddStaff", "GetRow", "int", "string", "string")
    add_staff.return_handler("AddStaff").do(
        "course", "SELECT C.cid, C.cname FROM in.course C"
    ).do(
        "staff",
        """
        SELECT S.stid, S.cid, S.sname, S.role FROM in.staff S
        UNION
        SELECT genkey(), O.c1, O.c2, O.c3 FROM GetRow.output O
        """,
    ).do(
        "student", "SELECT S.sid, S.cid, S.sname FROM in.student S"
    )
    return sysadmin


# ---------------------------------------------------------------------------
# NavCMS (Figure 13): inheritance with activation filters
# ---------------------------------------------------------------------------


def _navcms() -> AUnitBuilder:
    navcms = aunit("NavCMS", root=True, extends="CMSRoot")
    navcms.local(table("currcourse", cid="int"))

    select = navcms.activator("ActSelectCourse", "SelectRow", "int", "string")
    select.input_query("SelectRow.input", "SELECT C.cid, C.cname FROM course C")
    select.handler("SelectCourse").do(
        "currcourse", "SELECT O.c1 FROM SelectRow.output O"
    )

    navcms.extend_activator("ActCourseAdmin").filter(
        "SELECT CC.cid FROM currcourse CC WHERE activationTuple.cid = CC.cid"
    )
    navcms.extend_activator("ActStudent").filter(
        "SELECT CC.cid FROM currcourse CC WHERE activationTuple.cid = CC.cid"
    )
    return navcms


# ---------------------------------------------------------------------------
# PUnits (Section 3.4) — templates identical to the Hilda-source versions
# so rendered pages are byte-for-byte the same.
# ---------------------------------------------------------------------------

SHOW_CMSROOT_TEMPLATE = """
    <body>
    <h1>MiniCMS</h1>
    <hr>
    <h2>Courses you administer</h2>
    <punit activator="ActCourseAdmin" name="ShowCourseAdmin">
    <hr>
    <h2>Courses you take</h2>
    <punit activator="ActStudent" name="ShowStudent">
    <hr>
    <punit activator="ActSysAdmin" name="ShowSysAdmin">
    </body>
"""

SHOW_NAVCMS_TEMPLATE = """
    <body bgcolor="yellow">
    <h1>MiniCMS</h1>
    <hr>
    <punit activator="ActSelectCourse">
    <hr>
    <punit activator="ActCourseAdmin" name="ShowCourseAdmin">
    <hr>
    <punit activator="ActStudent" name="ShowStudent">
    </body>
"""

SHOW_COURSE_ADMIN_TEMPLATE = """
    <div class="course-admin">
    <h3>Assignments</h3>
    <punit activator="ActShowAssignment">
    <h3>Create an assignment</h3>
    <punit activator="ActCreateAssign">
    <h3>Delete an assignment</h3>
    <punit activator="ActDeleteAssign">
    </div>
"""

SHOW_CREATE_ASSIGNMENT_TEMPLATE = """
    <div class="create-assignment">
    <h4>Assignment properties</h4>
    <punit activator="ActAssignInfo">
    <h4>Add a problem</h4>
    <punit activator="ActNewProblem">
    <punit activator="SubmitAssignment">
    </div>
"""

SHOW_STUDENT_TEMPLATE = """
    <div class="student">
    <h3>Your grades</h3>
    <punit activator="ActShowGrades">
    <h3>Invite a group partner</h3>
    <punit activator="ActPlaceInv">
    <h3>Invitations you sent</h3>
    <punit activator="ActWithdrawInv">
    <h3>Invitations you received</h3>
    <punit activator="ActAcceptInv">
    <punit activator="ActDeclineInv">
    </div>
"""

SHOW_SYSADMIN_TEMPLATE = """
    <div class="sysadmin">
    <h3>Course catalog</h3>
    <punit activator="ActShowCourses">
    <h3>Add a course</h3>
    <punit activator="ActAddCourse">
    <h3>Enroll a student</h3>
    <punit activator="ActAddStudent">
    <h3>Add staff</h3>
    <punit activator="ActAddStaff">
    </div>
"""


def _shared_punits(app: AppBuilder) -> None:
    app.punit("ShowCourseAdmin", "CourseAdmin", SHOW_COURSE_ADMIN_TEMPLATE)
    app.punit("ShowCreateAssignment", "CreateAssignment", SHOW_CREATE_ASSIGNMENT_TEMPLATE)
    app.punit("ShowStudent", "Student", SHOW_STUDENT_TEMPLATE)
    app.punit("ShowSysAdmin", "SysAdmin", SHOW_SYSADMIN_TEMPLATE)


# ---------------------------------------------------------------------------
# Assembled applications
# ---------------------------------------------------------------------------


def minicms_builder() -> AppBuilder:
    """MiniCMS rooted at CMSRoot, as an (unbuilt) :class:`AppBuilder`."""
    app = AppBuilder("MiniCMS")
    app.add(_cmsroot(root=True), _course_admin(), _create_assignment(), _student(), _sysadmin())
    app.punit("ShowCMSRoot", "CMSRoot", SHOW_CMSROOT_TEMPLATE)
    _shared_punits(app)
    return app


def navcms_builder() -> AppBuilder:
    """MiniCMS structured as a web site rooted at NavCMS (Figure 13)."""
    app = AppBuilder("NavCMS")
    app.add(
        _cmsroot(root=False),
        _course_admin(),
        _create_assignment(),
        _student(),
        _sysadmin(),
        _navcms(),
    )
    app.punit("ShowCMSRoot", "CMSRoot", SHOW_CMSROOT_TEMPLATE)
    app.punit("ShowNavCMS", "NavCMS", SHOW_NAVCMS_TEMPLATE)
    _shared_punits(app)
    return app


def build_minicms_program(validate: bool = True) -> HildaProgram:
    """The builder-authored twin of :func:`repro.apps.minicms.load_minicms`."""
    return minicms_builder().build(validate=validate)


def build_navcms_program(validate: bool = True) -> HildaProgram:
    """The builder-authored twin of :func:`repro.apps.minicms.load_navcms`."""
    return navcms_builder().build(validate=validate)
