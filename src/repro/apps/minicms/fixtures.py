"""Fixtures and scenario data for MiniCMS.

Two canned data sets are provided:

* :func:`seed_paper_scenario` — the data behind the paper's walkthroughs:
  two courses (ids 10 and 11), an administrator ``alice`` of both (Figure 5),
  two students ``s1`` and ``s2`` enrolled in both courses, one assignment
  per course, and an outstanding group invitation from ``s1`` to ``s2`` for
  course 10's assignment (Figures 9-11).
* :func:`seed_scaled` — a parameterised data set used by the benchmarks
  (``n_courses`` courses, ``n_students`` students per course,
  ``n_assignments`` assignments per course, optional groups and grades).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.engine import HildaEngine

__all__ = [
    "PaperScenarioIds",
    "seed_paper_scenario",
    "seed_scaled",
    "ADMIN_USER",
    "STUDENT1_USER",
    "STUDENT2_USER",
    "SYSADMIN_USER",
]

#: User names used throughout the examples and tests.
ADMIN_USER = "alice"
STUDENT1_USER = "s1"
STUDENT2_USER = "s2"
SYSADMIN_USER = "root"

_RELEASE = datetime.date(2006, 3, 1)
_DUE = datetime.date(2006, 3, 15)


@dataclass
class PaperScenarioIds:
    """The identifiers of the rows created by :func:`seed_paper_scenario`."""

    course_ids: Tuple[int, int] = (10, 11)
    student1_sid: int = 1
    student2_sid: int = 2
    assignment_ids: Tuple[int, int] = (100, 110)
    problem_ids: Tuple[int, int] = (200, 210)
    group_id: int = 300
    invitation_id: int = 400


def seed_paper_scenario(engine: HildaEngine, aunit_name: Optional[str] = None) -> PaperScenarioIds:
    """Load the data set of the paper's Figures 5-11 into an engine.

    The data is inserted directly into the root AUnit's persistent tables,
    mirroring a pre-existing database; active sessions (if any) are refreshed
    so their activation trees reflect the data.
    """
    ids = PaperScenarioIds()
    cid1, cid2 = ids.course_ids
    aid1, aid2 = ids.assignment_ids
    pid1, pid2 = ids.problem_ids

    engine.seed_persistent(
        {
            "sysadmin": [(SYSADMIN_USER,)],
            "course": [(cid1, "Introduction to Databases"), (cid2, "Operating Systems")],
            "staff": [
                (1, cid1, ADMIN_USER, "admin"),
                (2, cid2, ADMIN_USER, "admin"),
                (3, cid1, "carol", "ta"),
            ],
            "student": [
                (ids.student1_sid, cid1, STUDENT1_USER),
                (ids.student2_sid, cid1, STUDENT2_USER),
                (3, cid2, STUDENT1_USER),
                (4, cid2, STUDENT2_USER),
            ],
            "assign": [
                (aid1, cid1, "Homework 1", _RELEASE, _DUE),
                (aid2, cid2, "Lab 1", _RELEASE, _DUE),
            ],
            "problem": [
                (pid1, aid1, "Relational algebra", 50.0),
                (pid2, aid2, "Scheduling", 100.0),
            ],
            "group": [(ids.group_id, aid1)],
            "groupmember": [(500, ids.group_id, ids.student1_sid, None)],
            "invitation": [
                (ids.invitation_id, ids.group_id, ids.student1_sid, ids.student2_sid)
            ],
        },
        aunit_name=aunit_name,
    )
    return ids


def seed_scaled(
    engine: HildaEngine,
    n_courses: int = 5,
    n_students: int = 20,
    n_assignments: int = 4,
    n_problems: int = 2,
    admin_user: str = ADMIN_USER,
    with_groups: bool = True,
    aunit_name: Optional[str] = None,
) -> Dict[str, int]:
    """Load a synthetic data set of configurable size (benchmark workloads).

    Every course is administered by ``admin_user``; students are named
    ``stu<k>`` and each is enrolled in every course.  When ``with_groups``
    is set, each student has a single-member group per first assignment with
    a grade, so grade viewing has data to show.

    Returns a dictionary of row counts per table.
    """
    courses: List[Sequence] = []
    staff: List[Sequence] = []
    students: List[Sequence] = []
    assigns: List[Sequence] = []
    problems: List[Sequence] = []
    groups: List[Sequence] = []
    members: List[Sequence] = []

    next_sid = 1
    next_aid = 1
    next_pid = 1
    next_gid = 1
    next_gmid = 1

    for course_index in range(n_courses):
        cid = 10 + course_index
        courses.append((cid, f"Course {cid}"))
        staff.append((course_index + 1, cid, admin_user, "admin"))
        course_assign_ids = []
        for assign_index in range(n_assignments):
            aid = next_aid
            next_aid += 1
            course_assign_ids.append(aid)
            assigns.append(
                (aid, cid, f"Assignment {assign_index + 1}", _RELEASE, _DUE)
            )
            for problem_index in range(n_problems):
                problems.append(
                    (next_pid, aid, f"Problem {problem_index + 1}", 100.0 / n_problems)
                )
                next_pid += 1
        for student_index in range(n_students):
            sid = next_sid
            next_sid += 1
            students.append((sid, cid, f"stu{student_index + 1}"))
            if with_groups and course_assign_ids:
                gid = next_gid
                next_gid += 1
                groups.append((gid, course_assign_ids[0]))
                members.append((next_gmid, gid, sid, float(60 + (sid % 40))))
                next_gmid += 1

    engine.seed_persistent(
        {
            "course": courses,
            "staff": staff,
            "student": students,
            "assign": assigns,
            "problem": problems,
            "group": groups,
            "groupmember": members,
        },
        aunit_name=aunit_name,
    )
    return {
        "course": len(courses),
        "staff": len(staff),
        "student": len(students),
        "assign": len(assigns),
        "problem": len(problems),
        "group": len(groups),
        "groupmember": len(members),
    }
