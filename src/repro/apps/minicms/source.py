"""The MiniCMS Hilda program.

This is the paper's running example (Figures 2, 3, 4, 8 and 13) written out
as a complete, loadable Hilda program.  The AUnits follow the figures
closely; where the paper's listings are elliptical ("..." or informal SQL)
the missing pieces are filled in so that the program validates and runs:

* ``CMSRoot`` (Figure 2) — the root AUnit holding the persistent schema and
  activating CourseAdmin, Student and SysAdmin instances.
* ``CourseAdmin`` (Figure 3) — add/delete assignments for one course.
* ``CreateAssignment`` (Figure 4) — the assignment-creation dialogue with the
  release-date/due-date sanity check in handler conditions.
* ``Student`` (Figure 8) — grades, group invitations (place / withdraw /
  accept / decline), the source of the paper's conflict-detection scenario.
* ``SysAdmin`` — the "system admin, etc." branch the paper elides; it lets
  courses, students and staff be managed through the application itself.
* ``NavCMS`` (Figure 13) — inherits from CMSRoot and filters activation to
  the currently selected course, structuring the web site.

Basic AUnit output columns are referred to as ``c1 .. cn`` (the paper writes
positional references ``O.1``; both forms are accepted by the SQL engine).
"""

from __future__ import annotations

__all__ = [
    "CMSROOT_SOURCE",
    "COURSE_ADMIN_SOURCE",
    "CREATE_ASSIGNMENT_SOURCE",
    "STUDENT_SOURCE",
    "SYSADMIN_SOURCE",
    "NAVCMS_SOURCE",
    "PUNITS_SOURCE",
    "MINICMS_SOURCE",
    "NAVCMS_PROGRAM_SOURCE",
]


CMSROOT_SOURCE = """
// Figure 2: the root AUnit of MiniCMS.
root aunit CMSRoot {
    // The name of the logged-in user (authentication is external, Section 2).
    input schema { user(name:string) }

    // Persistent application state, shared by every session.
    persist schema {
        sysadmin(aname:string)
        course(cid:int key, cname:string)
        staff(stid:int key, cid:int, sname:string, role:string)
        student(sid:int key, cid:int, sname:string)
        assign(aid:int key, cid:int, name:string, release:date, due:date)
        problem(pid:int key, aid:int, name:string, weight:float)
        group(gid:int key, aid:int)
        groupmember(gmid:int key, gid:int, sid:int, grade:float)
        invitation(iid:int key, gid:int, invitersid:int, inviteesid:int)
    }

    // Course administrators: one CourseAdmin instance per administered course.
    activator ActCourseAdmin : CourseAdmin {
        activation schema { acourse(cid:int) }
        activation query {
            SELECT C.cid
            FROM course C, staff S, user U
            WHERE C.cid = S.cid AND S.sname = U.name AND S.role = "admin"
        }
        input query {
            CourseAdmin.assign :-
                SELECT A.aid, A.name, A.release, A.due
                FROM assign A
                WHERE A.cid = activationTuple.cid
            CourseAdmin.problem :-
                SELECT P.pid, P.aid, P.name, P.weight
                FROM problem P, assign A
                WHERE P.aid = A.aid AND A.cid = activationTuple.cid
        }
        handler UpdateAssignments {
            action {
                assign :-
                    SELECT A.aid, A.cid, A.name, A.release, A.due
                    FROM assign A
                    WHERE A.aid NOT IN (SELECT I.aid FROM CourseAdmin.in.assign I)
                    UNION
                    SELECT O.aid, activationTuple.cid, O.name, O.release, O.due
                    FROM CourseAdmin.out.assign O
                problem :-
                    SELECT P.pid, P.aid, P.name, P.weight
                    FROM problem P
                    WHERE P.pid NOT IN (SELECT I.pid FROM CourseAdmin.in.problem I)
                    UNION
                    SELECT O.pid, O.aid, O.name, O.weight
                    FROM CourseAdmin.out.problem O
            }
        }
    }

    // Students: one Student instance per enrolled course.
    activator ActStudent : Student {
        activation schema { acourse(cid:int) }
        activation query {
            SELECT C.cid
            FROM course C, student S, user U
            WHERE C.cid = S.cid AND S.sname = U.name
        }
        input query {
            Student.curstudent :-
                SELECT S.sid
                FROM student S, user U
                WHERE S.sname = U.name AND S.cid = activationTuple.cid
            Student.assign :-
                SELECT A.aid, A.name, A.release, A.due
                FROM assign A
                WHERE A.cid = activationTuple.cid
            Student.others :-
                SELECT S.sid, S.sname
                FROM student S, user U
                WHERE S.cid = activationTuple.cid AND S.sname <> U.name
            Student.group :-
                SELECT G.gid, G.aid
                FROM group G, assign A
                WHERE G.aid = A.aid AND A.cid = activationTuple.cid
            Student.groupmember :-
                SELECT GM.gmid, GM.gid, GM.sid, GM.grade
                FROM groupmember GM, group G, assign A
                WHERE GM.gid = G.gid AND G.aid = A.aid AND A.cid = activationTuple.cid
            Student.invitation :-
                SELECT I.iid, I.gid, I.invitersid, I.inviteesid
                FROM invitation I, group G, assign A
                WHERE I.gid = G.gid AND G.aid = A.aid AND A.cid = activationTuple.cid
        }
        handler UpdateGroups {
            action {
                group :-
                    SELECT G.gid, G.aid
                    FROM group G
                    WHERE G.gid NOT IN (SELECT X.gid FROM Student.in.group X)
                    UNION
                    SELECT O.gid, O.aid FROM Student.out.group O
                groupmember :-
                    SELECT GM.gmid, GM.gid, GM.sid, GM.grade
                    FROM groupmember GM
                    WHERE GM.gmid NOT IN (SELECT X.gmid FROM Student.in.groupmember X)
                    UNION
                    SELECT O.gmid, O.gid, O.sid, O.grade FROM Student.out.groupmember O
                invitation :-
                    SELECT I.iid, I.gid, I.invitersid, I.inviteesid
                    FROM invitation I
                    WHERE I.iid NOT IN (SELECT X.iid FROM Student.in.invitation X)
                    UNION
                    SELECT O.iid, O.gid, O.invitersid, O.inviteesid
                    FROM Student.out.invitation O
            }
        }
    }

    // System administrators: manage courses, students and staff.
    activator ActSysAdmin : SysAdmin {
        activation schema { aadmin(aname:string) }
        activation query {
            SELECT A.aname FROM sysadmin A, user U WHERE A.aname = U.name
        }
        input query {
            SysAdmin.course :- SELECT C.cid, C.cname FROM course C
            SysAdmin.staff :- SELECT S.stid, S.cid, S.sname, S.role FROM staff S
            SysAdmin.student :- SELECT S.sid, S.cid, S.sname FROM student S
        }
        handler UpdateCatalog {
            action {
                course :- SELECT O.cid, O.cname FROM SysAdmin.out.course O
                staff :- SELECT O.stid, O.cid, O.sname, O.role FROM SysAdmin.out.staff O
                student :- SELECT O.sid, O.cid, O.sname FROM SysAdmin.out.student O
            }
        }
    }
}
"""


COURSE_ADMIN_SOURCE = """
// Figure 3: the course administrator AUnit.
aunit CourseAdmin {
    // The current set of assignments and problems for the course; the output
    // is the modified set.
    inout schema {
        assign(aid:int key, name:string, release:date, due:date)
        problem(pid:int key, aid:int, name:string, weight:float)
    }

    // Create a new assignment (a single CreateAssignment child instance).
    activator ActCreateAssign : CreateAssignment {
        return handler NewAssignment {
            action {
                assign :-
                    SELECT A.aid, A.name, A.release, A.due FROM in.assign A
                    UNION
                    SELECT N.aid, N.name, N.release, N.due
                    FROM CreateAssignment.newassign N
                problem :-
                    SELECT P.pid, P.aid, P.name, P.weight FROM in.problem P
                    UNION
                    SELECT N.pid, N.aid, N.name, N.weight
                    FROM CreateAssignment.newproblem N
            }
        }
    }

    // Show every assignment of the course (one ShowRow per assignment).
    activator ActShowAssignment : ShowRow(string) {
        activation schema { allassign(aid:int, assignname:string) }
        activation query {
            SELECT A.aid, A.name FROM in.assign A
        }
        input query {
            ShowRow.input :- SELECT activationTuple.assignname
        }
    }

    // Delete an assignment (and its problems).
    activator ActDeleteAssign : SelectRow(int, string) {
        input query {
            SelectRow.input :- SELECT A.aid, A.name FROM in.assign A
        }
        return handler DeleteAssignment {
            action {
                assign :-
                    SELECT A.aid, A.name, A.release, A.due
                    FROM in.assign A, SelectRow.output O
                    WHERE A.aid <> O.c1
                problem :-
                    SELECT P.pid, P.aid, P.name, P.weight
                    FROM in.problem P, SelectRow.output O
                    WHERE P.aid <> O.c1
            }
        }
    }
}
"""


CREATE_ASSIGNMENT_SOURCE = """
// Figure 4: the assignment-creation AUnit.
aunit CreateAssignment {
    // Returns the newly created assignment and its problems.
    output schema {
        newassign(aid:int, name:string, release:date, due:date)
        newproblem(pid:int, aid:int, name:string, weight:float)
    }

    // Temporary state while the assignment is being put together.
    local schema {
        assign(name:string, release:date, due:date)
        problem(pid:int, name:string, weight:float)
    }
    local query {
        assign :- SELECT "", curr_date(), curr_date()
    }

    // Edit the assignment's name and dates.
    activator ActAssignInfo : UpdateRow(string, date, date) {
        input query {
            UpdateRow.input :- SELECT A.name, A.release, A.due FROM assign A
        }
        handler updateAssign {
            assign :- SELECT O.c1, O.c2, O.c3 FROM UpdateRow.output O
        }
    }

    // Add a problem (name, weight).
    activator ActNewProblem : GetRow(string, float) {
        handler addProblem {
            problem :-
                SELECT P.pid, P.name, P.weight FROM problem P
                UNION
                SELECT genkey(), O.c1, O.c2 FROM GetRow.output O
        }
    }

    // Submit: create the assignment when the dates are sane, otherwise reset.
    activator SubmitAssignment : SubmitBasic {
        return handler success {
            condition {
                SELECT A.name FROM assign A WHERE A.release <= A.due
            }
            action {
                newassign :-
                    SELECT genkey(), A.name, A.release, A.due FROM assign A
                newproblem :-
                    SELECT P.pid, N.aid, P.name, P.weight
                    FROM problem P, newassign N
            }
        }
        handler fail {
            condition {
                SELECT A.name FROM assign A WHERE A.release > A.due
            }
            action {
                assign :- SELECT "", curr_date(), curr_date()
            }
        }
    }
}
"""


STUDENT_SOURCE = """
// Figure 8: the student AUnit (grades and group management).
aunit Student {
    input schema {
        curstudent(sid:int)
        assign(aid:int key, name:string, release:date, due:date)
        others(osid:int key, oname:string)
    }
    inout schema {
        group(gid:int key, aid:int)
        groupmember(gmid:int key, gid:int, sid:int, grade:float)
        invitation(iid:int key, gid:int, invitersid:int, inviteesid:int)
    }

    // Show the student's grade for each assignment.
    activator ActShowGrades : ShowRow(string, float) {
        activation schema { agrade(aid:int, assignname:string, grade:float) }
        activation query {
            SELECT A.aid, A.name, GM.grade
            FROM assign A, group G, groupmember GM, curstudent S
            WHERE G.aid = A.aid AND GM.gid = G.gid AND GM.sid = S.sid
        }
        input query {
            ShowRow.input :-
                SELECT activationTuple.assignname, activationTuple.grade
        }
    }

    // Invite another student to form a group for an assignment.
    activator ActPlaceInv : SelectRow(int, string, int) {
        input query {
            SelectRow.input :-
                SELECT O.osid, O.oname, A.aid FROM others O, assign A
        }
        return handler PlaceInvitation {
            action {
                group :-
                    SELECT G.gid, G.aid FROM in.group G
                    UNION
                    SELECT genkey(), O.c3 FROM SelectRow.output O
                groupmember :-
                    SELECT GM.gmid, GM.gid, GM.sid, GM.grade FROM in.groupmember GM
                    UNION
                    SELECT genkey(), G.gid, S.sid, NULL
                    FROM group G, SelectRow.output O, curstudent S
                    WHERE G.aid = O.c3
                      AND G.gid NOT IN (SELECT X.gid FROM in.group X)
                invitation :-
                    SELECT I.iid, I.gid, I.invitersid, I.inviteesid FROM in.invitation I
                    UNION
                    SELECT genkey(), G.gid, S.sid, O.c1
                    FROM group G, SelectRow.output O, curstudent S
                    WHERE G.aid = O.c3
                      AND G.gid NOT IN (SELECT X.gid FROM in.group X)
            }
        }
    }

    // Withdraw an outstanding invitation (one instance per invitation sent).
    activator ActWithdrawInv : SelectRow(int, int) {
        activation schema { ainv(iid:int, inviteesid:int) }
        activation query {
            SELECT I.iid, I.inviteesid
            FROM invitation I, curstudent S
            WHERE I.invitersid = S.sid
        }
        input query {
            SelectRow.input :-
                SELECT activationTuple.iid, activationTuple.inviteesid
        }
        return handler Withdraw {
            action {
                invitation :-
                    SELECT I.iid, I.gid, I.invitersid, I.inviteesid
                    FROM in.invitation I, SelectRow.output O
                    WHERE I.iid <> O.c1
                group :- SELECT G.gid, G.aid FROM in.group G
                groupmember :-
                    SELECT GM.gmid, GM.gid, GM.sid, GM.grade FROM in.groupmember GM
            }
        }
    }

    // Accept an invitation (one instance per invitation received).
    activator ActAcceptInv : SelectRow(int, int) {
        activation schema { ainv(iid:int, invitersid:int) }
        activation query {
            SELECT I.iid, I.invitersid
            FROM invitation I, curstudent S
            WHERE I.inviteesid = S.sid
        }
        input query {
            SelectRow.input :-
                SELECT activationTuple.iid, activationTuple.invitersid
        }
        return handler Accept {
            action {
                invitation :-
                    SELECT I.iid, I.gid, I.invitersid, I.inviteesid
                    FROM in.invitation I, SelectRow.output O
                    WHERE I.iid <> O.c1
                group :- SELECT G.gid, G.aid FROM in.group G
                groupmember :-
                    SELECT GM.gmid, GM.gid, GM.sid, GM.grade FROM in.groupmember GM
                    UNION
                    SELECT genkey(), I.gid, S.sid, NULL
                    FROM in.invitation I, SelectRow.output O, curstudent S
                    WHERE I.iid = O.c1
            }
        }
    }

    // Decline an invitation (one instance per invitation received).
    activator ActDeclineInv : SelectRow(int, int) {
        activation schema { ainv(iid:int, invitersid:int) }
        activation query {
            SELECT I.iid, I.invitersid
            FROM invitation I, curstudent S
            WHERE I.inviteesid = S.sid
        }
        input query {
            SelectRow.input :-
                SELECT activationTuple.iid, activationTuple.invitersid
        }
        return handler Decline {
            action {
                invitation :-
                    SELECT I.iid, I.gid, I.invitersid, I.inviteesid
                    FROM in.invitation I, SelectRow.output O
                    WHERE I.iid <> O.c1
                group :- SELECT G.gid, G.aid FROM in.group G
                groupmember :-
                    SELECT GM.gmid, GM.gid, GM.sid, GM.grade FROM in.groupmember GM
            }
        }
    }
}
"""


SYSADMIN_SOURCE = """
// The "system admin, etc." branch Figure 2 elides: manage the catalog.
aunit SysAdmin {
    inout schema {
        course(cid:int key, cname:string)
        staff(stid:int key, cid:int, sname:string, role:string)
        student(sid:int key, cid:int, sname:string)
    }

    // Show the current course catalog.
    activator ActShowCourses : ShowTable(int, string) {
        input query {
            ShowTable.input :- SELECT C.cid, C.cname FROM in.course C
        }
    }

    // Add a course by name.
    activator ActAddCourse : GetRow(string) {
        return handler AddCourse {
            action {
                course :-
                    SELECT C.cid, C.cname FROM in.course C
                    UNION
                    SELECT genkey(), O.c1 FROM GetRow.output O
                staff :- SELECT S.stid, S.cid, S.sname, S.role FROM in.staff S
                student :- SELECT S.sid, S.cid, S.sname FROM in.student S
            }
        }
    }

    // Enroll a student: (course id, student name).
    activator ActAddStudent : GetRow(int, string) {
        return handler AddStudent {
            action {
                course :- SELECT C.cid, C.cname FROM in.course C
                staff :- SELECT S.stid, S.cid, S.sname, S.role FROM in.staff S
                student :-
                    SELECT S.sid, S.cid, S.sname FROM in.student S
                    UNION
                    SELECT genkey(), O.c1, O.c2 FROM GetRow.output O
            }
        }
    }

    // Add a staff member: (course id, name, role).
    activator ActAddStaff : GetRow(int, string, string) {
        return handler AddStaff {
            action {
                course :- SELECT C.cid, C.cname FROM in.course C
                staff :-
                    SELECT S.stid, S.cid, S.sname, S.role FROM in.staff S
                    UNION
                    SELECT genkey(), O.c1, O.c2, O.c3 FROM GetRow.output O
                student :- SELECT S.sid, S.cid, S.sname FROM in.student S
            }
        }
    }
}
"""


NAVCMS_SOURCE = """
// Figure 13: structure CMSRoot as a web site showing one course at a time.
root aunit NavCMS extends CMSRoot {
    // The currently selected course (empty until the user picks one).
    local schema { currcourse(cid:int) }

    // Course picker.
    activator ActSelectCourse : SelectRow(int, string) {
        input query {
            SelectRow.input :- SELECT C.cid, C.cname FROM course C
        }
        handler SelectCourse {
            currcourse :- SELECT O.c1 FROM SelectRow.output O
        }
    }

    // Only activate the CourseAdmin / Student instances of the current course.
    activator extending ActCourseAdmin {
        filter activation {
            SELECT CC.cid FROM currcourse CC WHERE activationTuple.cid = CC.cid
        }
    }
    activator extending ActStudent {
        filter activation {
            SELECT CC.cid FROM currcourse CC WHERE activationTuple.cid = CC.cid
        }
    }
}
"""


PUNITS_SOURCE = """
// Section 3.4: presentation units.  Each PUnit is HTML with <punit> tags
// that recursively pull in the PUnits of child AUnit instances.
punit ShowCMSRoot for CMSRoot {
    <body>
    <h1>MiniCMS</h1>
    <hr>
    <h2>Courses you administer</h2>
    <punit activator="ActCourseAdmin" name="ShowCourseAdmin">
    <hr>
    <h2>Courses you take</h2>
    <punit activator="ActStudent" name="ShowStudent">
    <hr>
    <punit activator="ActSysAdmin" name="ShowSysAdmin">
    </body>
}

punit ShowNavCMS for NavCMS {
    <body bgcolor="yellow">
    <h1>MiniCMS</h1>
    <hr>
    <punit activator="ActSelectCourse">
    <hr>
    <punit activator="ActCourseAdmin" name="ShowCourseAdmin">
    <hr>
    <punit activator="ActStudent" name="ShowStudent">
    </body>
}

punit ShowCourseAdmin for CourseAdmin {
    <div class="course-admin">
    <h3>Assignments</h3>
    <punit activator="ActShowAssignment">
    <h3>Create an assignment</h3>
    <punit activator="ActCreateAssign">
    <h3>Delete an assignment</h3>
    <punit activator="ActDeleteAssign">
    </div>
}

punit ShowCreateAssignment for CreateAssignment {
    <div class="create-assignment">
    <h4>Assignment properties</h4>
    <punit activator="ActAssignInfo">
    <h4>Add a problem</h4>
    <punit activator="ActNewProblem">
    <punit activator="SubmitAssignment">
    </div>
}

punit ShowStudent for Student {
    <div class="student">
    <h3>Your grades</h3>
    <punit activator="ActShowGrades">
    <h3>Invite a group partner</h3>
    <punit activator="ActPlaceInv">
    <h3>Invitations you sent</h3>
    <punit activator="ActWithdrawInv">
    <h3>Invitations you received</h3>
    <punit activator="ActAcceptInv">
    <punit activator="ActDeclineInv">
    </div>
}

punit ShowSysAdmin for SysAdmin {
    <div class="sysadmin">
    <h3>Course catalog</h3>
    <punit activator="ActShowCourses">
    <h3>Add a course</h3>
    <punit activator="ActAddCourse">
    <h3>Enroll a student</h3>
    <punit activator="ActAddStudent">
    <h3>Add staff</h3>
    <punit activator="ActAddStaff">
    </div>
}
"""


#: The full MiniCMS program rooted at CMSRoot (Figures 2, 3, 4, 8).
MINICMS_SOURCE = "\n".join(
    [
        CMSROOT_SOURCE,
        COURSE_ADMIN_SOURCE,
        CREATE_ASSIGNMENT_SOURCE,
        STUDENT_SOURCE,
        SYSADMIN_SOURCE,
        PUNITS_SOURCE,
    ]
)

#: MiniCMS structured as a navigable web site (Figure 13), rooted at NavCMS.
NAVCMS_PROGRAM_SOURCE = "\n".join(
    [
        CMSROOT_SOURCE.replace("root aunit CMSRoot", "aunit CMSRoot"),
        COURSE_ADMIN_SOURCE,
        CREATE_ASSIGNMENT_SOURCE,
        STUDENT_SOURCE,
        SYSADMIN_SOURCE,
        NAVCMS_SOURCE,
        PUNITS_SOURCE,
    ]
)
