"""Synthetic workloads over MiniCMS used by benchmarks and examples.

The generators are deterministic (seeded) so benchmark numbers are
reproducible run to run.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.apps.minicms.fixtures import ADMIN_USER
from repro.runtime.engine import HildaEngine

__all__ = [
    "start_admin_session",
    "start_student_sessions",
    "create_assignment_via_ui",
    "invitation_pairs",
    "read_mostly_page_workload",
]


def start_admin_session(engine: HildaEngine, user: str = ADMIN_USER) -> str:
    """Start a session for a course administrator."""
    return engine.start_session({"user": [(user,)]})


def start_student_sessions(engine: HildaEngine, student_names: Sequence[str]) -> Dict[str, str]:
    """Start one session per student name; returns name -> session id."""
    return {name: engine.start_session({"user": [(name,)]}) for name in student_names}


def create_assignment_via_ui(
    engine: HildaEngine,
    session_id: str,
    course_id: int,
    name: str,
    release: Optional[datetime.date] = None,
    due: Optional[datetime.date] = None,
    problems: Sequence[Tuple[str, float]] = (),
) -> bool:
    """Drive the CreateAssignment dialogue for one course through user actions.

    Returns True when the submission was accepted (the success handler fired).
    """
    release = release or datetime.date(2006, 4, 1)
    due = due or datetime.date(2006, 4, 15)

    def create_instance():
        admins = [
            admin
            for admin in engine.find_instances("CourseAdmin", session_id=session_id)
            if admin.activation_tuple == (course_id,)
        ]
        if not admins:
            raise LookupError(f"session {session_id} administers no course {course_id}")
        return admins[0].find_children("CreateAssignment")[0]

    update_row = create_instance().find_children("UpdateRow")[0]
    engine.perform(update_row.instance_id, [name, release, due])

    for problem_name, weight in problems:
        get_row = create_instance().find_children("GetRow")[0]
        engine.perform(get_row.instance_id, [problem_name, weight])

    submit = create_instance().find_children("SubmitBasic")[0]
    result = engine.perform(submit.instance_id)
    return any(handler.handler_name == "success" for handler in result.handlers)


def invitation_pairs(
    engine: HildaEngine,
    student_sessions: Dict[str, str],
    course_id: int,
    pairs: Sequence[Tuple[str, str]],
) -> int:
    """Have each (inviter, invitee) pair place an invitation through the UI.

    Returns the number of invitations successfully placed.
    """
    placed = 0
    for inviter, invitee in pairs:
        session_id = student_sessions[inviter]
        students = [
            node
            for node in engine.find_instances("Student", session_id=session_id)
            if node.activation_tuple == (course_id,)
        ]
        if not students:
            continue
        place = students[0].find_children("SelectRow", activator="ActPlaceInv")
        if not place:
            continue
        instance = place[0]
        input_table = instance.input_tables.get("input")
        target_row = None
        for row in input_table.rows if input_table is not None else []:
            if row[1] == invitee:
                target_row = row
                break
        if target_row is None:
            continue
        result = engine.perform(instance.instance_id, list(target_row))
        if result.accepted:
            placed += 1
    return placed


def read_mostly_page_workload(
    n_reads_per_write: int = 20, n_writes: int = 5, seed: int = 11
) -> List[str]:
    """A deterministic sequence of 'read'/'write' events for the caching bench."""
    rng = random.Random(seed)
    events: List[str] = []
    for _ in range(n_writes):
        events.extend(["read"] * n_reads_per_write)
        events.append("write")
    rng.shuffle(events)
    return events
