"""The hand-coded three-tier baseline (the development style Section 2
critiques; ``docs/architecture.md`` § "repro.apps")."""

from repro.apps.baseline.beans import (
    AssignmentBean,
    BeanMapper,
    CourseBean,
    GroupBean,
    GroupMemberBean,
    InvitationBean,
    StudentBean,
)
from repro.apps.baseline.handcoded import HandCodedCMS, create_baseline_schema

__all__ = [
    "AssignmentBean",
    "BeanMapper",
    "CourseBean",
    "GroupBean",
    "GroupMemberBean",
    "HandCodedCMS",
    "InvitationBean",
    "StudentBean",
    "create_baseline_schema",
]
