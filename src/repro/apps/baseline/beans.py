"""\"Java Bean\"-style objects for the hand-coded baseline.

Section 2 of the paper describes the J2EE implementation of CMS: relational
data is exposed to the application as bean objects, and developers write
fragile mapping code plus nested ``for`` loops over beans (which amount to
nested-loop joins executed in the application server).  These classes model
that style faithfully so the baseline benchmark (E9) can compare it against
issuing a single SQL query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.relational.database import Database

__all__ = [
    "CourseBean",
    "StudentBean",
    "AssignmentBean",
    "GroupBean",
    "GroupMemberBean",
    "InvitationBean",
    "BeanMapper",
]


@dataclass
class CourseBean:
    cid: int
    cname: str


@dataclass
class StudentBean:
    sid: int
    cid: int
    sname: str


@dataclass
class AssignmentBean:
    aid: int
    cid: int
    name: str
    release: Any
    due: Any


@dataclass
class GroupBean:
    gid: int
    aid: int


@dataclass
class GroupMemberBean:
    gmid: int
    gid: int
    sid: int
    grade: Optional[float]


@dataclass
class InvitationBean:
    iid: int
    gid: int
    invitersid: int
    inviteesid: int


class BeanMapper:
    """Loads bean objects from relational tables (the impedance-mismatch layer).

    Every ``load_*`` call copies whole tables into fresh Python objects —
    which is exactly the per-request object materialisation cost the paper's
    Section 2.2 complains about.
    """

    def __init__(self, database: Database) -> None:
        self.database = database

    def load_courses(self) -> List[CourseBean]:
        return [CourseBean(*row) for row in self.database.rows("course")]

    def load_students(self) -> List[StudentBean]:
        return [StudentBean(*row) for row in self.database.rows("student")]

    def load_assignments(self) -> List[AssignmentBean]:
        return [AssignmentBean(*row) for row in self.database.rows("assign")]

    def load_groups(self) -> List[GroupBean]:
        return [GroupBean(*row) for row in self.database.rows("group")]

    def load_group_members(self) -> List[GroupMemberBean]:
        return [GroupMemberBean(*row) for row in self.database.rows("groupmember")]

    def load_invitations(self) -> List[InvitationBean]:
        return [InvitationBean(*row) for row in self.database.rows("invitation")]

    def load_everything(self) -> Dict[str, List[Any]]:
        """Materialise every bean collection (one request's worth of objects)."""
        return {
            "courses": self.load_courses(),
            "students": self.load_students(),
            "assignments": self.load_assignments(),
            "groups": self.load_groups(),
            "members": self.load_group_members(),
            "invitations": self.load_invitations(),
        }
