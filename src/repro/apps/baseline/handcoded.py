"""A hand-coded, three-tier MiniCMS in the style the paper argues against.

This baseline reproduces the problems catalogued in Section 2:

* **Impedance mismatch** (2.2): grade viewing is implemented twice — once by
  materialising bean objects and running nested ``for`` loops in the
  application layer (:meth:`HandCodedCMS.grades_for_student_nested_loops`),
  and once by issuing a single SQL join
  (:meth:`HandCodedCMS.grades_for_student_sql`).  Benchmark E9 compares the
  two as the data grows.
* **No conflict detection** (2.3): :meth:`HandCodedCMS.accept_invitation`
  and :meth:`HandCodedCMS.withdraw_invitation` are written the way a typical
  servlet would be — they check nothing beyond the row they touch, so an
  accept racing a withdraw silently corrupts the group state.  The
  integration tests contrast this with Hilda's automatic rejection.
* **Mixing of logic and presentation** (2.1): validation of assignment dates
  happens inside the page-producing method, not in a reusable layer.
"""

from __future__ import annotations

import datetime
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.apps.baseline.beans import BeanMapper
from repro.relational.database import Database
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.sql.executor import SQLExecutor

__all__ = ["HandCodedCMS", "create_baseline_schema"]


def create_baseline_schema(database: Database) -> None:
    """Create the same persistent tables MiniCMS uses, directly in a database."""
    tables = [
        TableSchema(
            "course",
            [Column("cid", DataType.INT), Column("cname", DataType.STRING)],
            ["cid"],
        ),
        TableSchema(
            "staff",
            [
                Column("stid", DataType.INT),
                Column("cid", DataType.INT),
                Column("sname", DataType.STRING),
                Column("role", DataType.STRING),
            ],
            ["stid"],
        ),
        TableSchema(
            "student",
            [
                Column("sid", DataType.INT),
                Column("cid", DataType.INT),
                Column("sname", DataType.STRING),
            ],
            ["sid"],
        ),
        TableSchema(
            "assign",
            [
                Column("aid", DataType.INT),
                Column("cid", DataType.INT),
                Column("name", DataType.STRING),
                Column("release", DataType.DATE),
                Column("due", DataType.DATE),
            ],
            ["aid"],
        ),
        TableSchema(
            "problem",
            [
                Column("pid", DataType.INT),
                Column("aid", DataType.INT),
                Column("name", DataType.STRING),
                Column("weight", DataType.FLOAT),
            ],
            ["pid"],
        ),
        TableSchema(
            "group",
            [Column("gid", DataType.INT), Column("aid", DataType.INT)],
            ["gid"],
        ),
        TableSchema(
            "groupmember",
            [
                Column("gmid", DataType.INT),
                Column("gid", DataType.INT),
                Column("sid", DataType.INT),
                Column("grade", DataType.FLOAT),
            ],
            ["gmid"],
        ),
        TableSchema(
            "invitation",
            [
                Column("iid", DataType.INT),
                Column("gid", DataType.INT),
                Column("invitersid", DataType.INT),
                Column("inviteesid", DataType.INT),
            ],
            ["iid"],
        ),
    ]
    for schema in tables:
        database.create_table(schema)


class HandCodedCMS:
    """The baseline application: a database plus page methods."""

    def __init__(self, database: Optional[Database] = None) -> None:
        self.database = database or Database("baseline")
        if not self.database.has_table("course"):
            create_baseline_schema(self.database)
        self.executor = SQLExecutor(self.database)
        self.mapper = BeanMapper(self.database)
        self._next_ids: Dict[str, int] = {}

    # -- helpers ---------------------------------------------------------------

    def _allocate_id(self, table: str) -> int:
        current = self._next_ids.get(table)
        if current is None:
            rows = self.database.rows(table)
            current = (max((row[0] for row in rows), default=0)) + 1
        self._next_ids[table] = current + 1
        return current

    def load_fixture(self, rows_by_table: Dict[str, List[Sequence[Any]]]) -> None:
        for table, rows in rows_by_table.items():
            self.database.insert_many(table, rows)

    # ------------------------------------------------------------------
    # Section 2.2 — viewing student grades
    # ------------------------------------------------------------------

    def grades_for_student_nested_loops(self, student_name: str) -> List[Tuple[str, str, float]]:
        """Grade list computed the 'bean' way: nested for loops in the app layer."""
        beans = self.mapper.load_everything()
        results: List[Tuple[str, str, float]] = []
        for student in beans["students"]:
            if student.sname != student_name:
                continue
            for course in beans["courses"]:
                if course.cid != student.cid:
                    continue
                for assignment in beans["assignments"]:
                    if assignment.cid != course.cid:
                        continue
                    for group in beans["groups"]:
                        if group.aid != assignment.aid:
                            continue
                        for member in beans["members"]:
                            if member.gid != group.gid or member.sid != student.sid:
                                continue
                            results.append((course.cname, assignment.name, member.grade))
        return results

    def grades_for_student_sql(self, student_name: str) -> List[Tuple[str, str, float]]:
        """The same grade list computed with a single declarative SQL join."""
        query = """
            SELECT C.cname, A.name, GM.grade
            FROM student S, course C, assign A, group G, groupmember GM
            WHERE S.sname = '{name}'
              AND C.cid = S.cid
              AND A.cid = C.cid
              AND G.aid = A.aid
              AND GM.gid = G.gid
              AND GM.sid = S.sid
        """.format(name=student_name.replace("'", "''"))
        return [tuple(row) for row in self.executor.query_rows(query)]

    # ------------------------------------------------------------------
    # Section 2.1 — assignment creation with presentation-mixed validation
    # ------------------------------------------------------------------

    def create_assignment_page(
        self,
        cid: int,
        name: str,
        release: datetime.date,
        due: datetime.date,
        problems: Sequence[Tuple[str, float]] = (),
    ) -> str:
        """Create an assignment and return the HTML of the resulting page.

        Validation is performed inline and its outcome is expressed only as
        presentation (an error paragraph) — the anti-pattern Section 2.1
        describes.
        """
        if release > due:
            return (
                "<html><body><p class='error'>The due date must not precede the "
                "release date.</p></body></html>"
            )
        aid = self._allocate_id("assign")
        self.database.insert("assign", (aid, cid, name, release, due))
        for problem_name, weight in problems:
            pid = self._allocate_id("problem")
            self.database.insert("problem", (pid, aid, problem_name, weight))
        return f"<html><body><p>Assignment {name!r} created with id {aid}.</p></body></html>"

    # ------------------------------------------------------------------
    # Section 2.3 — group management without conflict detection
    # ------------------------------------------------------------------

    def place_invitation(self, aid: int, inviter_sid: int, invitee_sid: int) -> int:
        gid = self._allocate_id("group")
        self.database.insert("group", (gid, aid))
        gmid = self._allocate_id("groupmember")
        self.database.insert("groupmember", (gmid, gid, inviter_sid, None))
        iid = self._allocate_id("invitation")
        self.database.insert("invitation", (iid, gid, inviter_sid, invitee_sid))
        return iid

    def withdraw_invitation(self, iid: int) -> bool:
        """Delete the invitation row; no check of what anyone else is doing."""
        removed = self.database.table("invitation").delete_where(lambda row: row[0] == iid)
        return removed > 0

    def accept_invitation(self, iid: int, invitee_sid: int) -> bool:
        """Accept an invitation the way a naive servlet does.

        The method only looks at the invitation row itself.  If the
        invitation was withdrawn concurrently the method silently "succeeds"
        at doing nothing, and — worse — if the caller cached the gid from an
        earlier page view it may add the invitee to a group whose invitation
        no longer exists.  The integration tests exercise exactly that
        inconsistency.
        """
        invitation = self.database.table("invitation").find_by_key((iid,))
        if invitation is None:
            return False
        gid = invitation[1]
        gmid = self._allocate_id("groupmember")
        self.database.insert("groupmember", (gmid, gid, invitee_sid, None))
        self.database.table("invitation").delete_where(lambda row: row[0] == iid)
        return True

    def accept_invitation_with_cached_gid(self, gid: int, invitee_sid: int) -> bool:
        """The 'stale page' variant: the browser remembered the gid and posts it.

        Nothing checks whether the invitation still exists, so the invitee
        joins a group they were never (any longer) invited to — the
        inconsistent application state Section 2.3 warns about.
        """
        gmid = self._allocate_id("groupmember")
        self.database.insert("groupmember", (gmid, gid, invitee_sid, None))
        return True

    # ------------------------------------------------------------------
    # Introspection used by tests and benchmarks
    # ------------------------------------------------------------------

    def group_members(self, gid: int) -> List[Tuple[Any, ...]]:
        return self.database.table("groupmember").select(lambda row: row[1] == gid)

    def invitation_count(self) -> int:
        return len(self.database.table("invitation"))
