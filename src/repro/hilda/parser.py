"""Parser for the Hilda language.

The parser follows the grammar of Figure 1 (User-Defined AUnits), Figure 12
(inheritance) and the PUnit syntax of Section 3.4, with the small liberties
the paper's own example programs take:

* ``action { ... }`` may be omitted inside a handler, in which case the
  handler body is the list of assignments directly (Figures 4 and 8);
* handlers may be anonymous (``return handler { ... }`` in Figure 8);
* activator extension may be written either ``extend activator Name``
  (Figure 12) or ``activator extending Name`` (Figure 13);
* an AUnit may be marked as the program's root with a leading ``root``
  keyword (the paper designates the root out of band).

Keywords are case-insensitive and are not reserved: ``input``, ``schema``
etc. may still be used as table or column names inside SQL blocks because
SQL blocks are sliced out of the source text verbatim and handed to the SQL
parser.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import HildaSyntaxError
from repro.hilda.ast import (
    Assignment,
    ActivatorDecl,
    ActivatorExtension,
    AUnitDecl,
    ChildRef,
    HandlerDecl,
    ProgramDecl,
    PUnitDecl,
    PUnitInclude,
    QueryBlock,
)
from repro.hilda.lexer import HToken, HTokenType, tokenize_hilda
from repro.hilda.punit_parser import parse_punit_template
from repro.relational.schema import Column, Schema, TableSchema
from repro.relational.types import parse_type_name
from repro.sql.parser import parse_query

__all__ = ["parse_program", "parse_aunit", "HildaParser", "parse_assignments_text"]


def parse_program(source: str) -> ProgramDecl:
    """Parse a complete Hilda program (AUnits and PUnits)."""
    return HildaParser(source).parse_program()


def parse_aunit(source: str) -> AUnitDecl:
    """Parse a single AUnit declaration (convenience for tests)."""
    program = parse_program(source)
    if len(program.aunits) != 1:
        raise HildaSyntaxError(
            f"expected exactly one AUnit, found {len(program.aunits)}"
        )
    return program.aunits[0]


class HildaParser:
    """Recursive-descent parser over the Hilda token stream."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = tokenize_hilda(source)
        self.position = 0

    # -- token helpers ---------------------------------------------------------

    @property
    def current(self) -> HToken:
        return self.tokens[self.position]

    def peek(self, offset: int = 1) -> HToken:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> HToken:
        token = self.current
        if token.type != HTokenType.EOF:
            self.position += 1
        return token

    def error(self, message: str) -> HildaSyntaxError:
        token = self.current
        return HildaSyntaxError(message, token.line, token.column)

    def at_word(self, *words: str) -> bool:
        return self.current.is_word(*words)

    def match_word(self, *words: str) -> bool:
        if self.at_word(*words):
            self.advance()
            return True
        return False

    def expect_word(self, word: str) -> HToken:
        if not self.at_word(word):
            raise self.error(f"expected {word!r}, found {self.current.value!r}")
        return self.advance()

    def expect_punct(self, symbol: str) -> HToken:
        if not self.current.is_punct(symbol):
            raise self.error(f"expected {symbol!r}, found {self.current.value!r}")
        return self.advance()

    def match_punct(self, symbol: str) -> bool:
        if self.current.is_punct(symbol):
            self.advance()
            return True
        return False

    def expect_ident(self) -> str:
        token = self.current
        if token.type != HTokenType.IDENT:
            raise self.error(f"expected an identifier, found {token.value!r}")
        self.advance()
        return str(token.value)

    def parse_dotted_name(self) -> str:
        parts = [self.expect_ident()]
        while self.current.is_punct(".") and self.peek().type == HTokenType.IDENT:
            self.advance()
            parts.append(self.expect_ident())
        return ".".join(parts)

    # -- raw block slicing -------------------------------------------------------

    def read_raw_block(self) -> str:
        """Consume a balanced ``{ ... }`` block and return the inner source text."""
        open_brace = self.expect_punct("{")
        depth = 1
        start_offset = open_brace.end
        while depth > 0:
            token = self.advance()
            if token.type == HTokenType.EOF:
                raise self.error("unterminated '{' block")
            if token.is_punct("{"):
                depth += 1
            elif token.is_punct("}"):
                depth -= 1
                if depth == 0:
                    return self.source[start_offset : token.start]
        raise self.error("unterminated '{' block")  # pragma: no cover

    def read_query_block(self) -> QueryBlock:
        text = self.read_raw_block()
        try:
            query = parse_query(text)
        except Exception as exc:
            raise HildaSyntaxError(
                f"invalid SQL in query block: {exc}", self.current.line, self.current.column
            ) from exc
        return QueryBlock(text=text, query=query)

    def read_assignment_block(self) -> List[Assignment]:
        text = self.read_raw_block()
        return parse_assignments_text(text)

    # -- program -------------------------------------------------------------------

    def parse_program(self) -> ProgramDecl:
        program = ProgramDecl()
        while self.current.type != HTokenType.EOF:
            if self.at_word("punit"):
                program.punits.append(self.parse_punit())
                continue
            is_root = False
            if self.at_word("root") and self.peek().is_word("aunit"):
                self.advance()
                is_root = True
            if self.at_word("aunit"):
                aunit = self.parse_aunit_decl()
                aunit.is_root = aunit.is_root or is_root
                if aunit.is_root:
                    if program.root_name is not None and program.root_name != aunit.name:
                        raise self.error(
                            f"multiple root AUnits: {program.root_name!r} and {aunit.name!r}"
                        )
                    program.root_name = aunit.name
                program.aunits.append(aunit)
                continue
            raise self.error(
                f"expected an AUnit or PUnit declaration, found {self.current.value!r}"
            )
        return program

    # -- AUnit -----------------------------------------------------------------------

    def parse_aunit_decl(self) -> AUnitDecl:
        self.expect_word("aunit")
        name = self.expect_ident()
        extends = None
        if self.match_word("extends"):
            extends = self.expect_ident()
        aunit = AUnitDecl(name=name, extends=extends)
        self.expect_punct("{")
        while not self.current.is_punct("}"):
            self.parse_aunit_member(aunit)
        self.expect_punct("}")
        return aunit

    def parse_aunit_member(self, aunit: AUnitDecl) -> None:
        if self.at_word("synchronized"):
            self.advance()
            aunit.synchronized = True
            return
        if self.at_word("input") and self.peek().is_word("schema"):
            self.advance()
            self.advance()
            aunit.input_schema = aunit.input_schema.merge(self.parse_schema_block())
            return
        if self.at_word("output") and self.peek().is_word("schema"):
            self.advance()
            self.advance()
            aunit.output_schema = aunit.output_schema.merge(self.parse_schema_block())
            return
        if self.at_word("inout") and self.peek().is_word("schema"):
            self.advance()
            self.advance()
            schema = self.parse_schema_block()
            aunit.input_schema = aunit.input_schema.merge(schema)
            aunit.output_schema = aunit.output_schema.merge(schema)
            aunit.inout_tables = tuple(aunit.inout_tables) + tuple(schema.table_names)
            return
        if self.at_word("persist") and self.peek().is_word("schema"):
            self.advance()
            self.advance()
            aunit.persist_schema = aunit.persist_schema.merge(self.parse_schema_block())
            return
        if self.at_word("persist") and self.peek().is_word("query"):
            self.advance()
            self.advance()
            aunit.persist_query.extend(self.read_assignment_block())
            return
        if self.at_word("local") and self.peek().is_word("schema"):
            self.advance()
            self.advance()
            aunit.local_schema = aunit.local_schema.merge(self.parse_schema_block())
            return
        if self.at_word("local") and self.peek().is_word("query"):
            self.advance()
            self.advance()
            aunit.local_query.extend(self.read_assignment_block())
            return
        if self.at_word("activator") and self.peek().is_word("extending"):
            self.advance()
            self.advance()
            aunit.activator_extensions.append(self.parse_activator_extension())
            return
        if self.at_word("extend") and self.peek().is_word("activator"):
            self.advance()
            self.advance()
            aunit.activator_extensions.append(self.parse_activator_extension())
            return
        if self.at_word("activator"):
            self.advance()
            aunit.activators.append(self.parse_activator())
            return
        raise self.error(
            f"unexpected token {self.current.value!r} inside AUnit {aunit.name!r}"
        )

    # -- schemas ---------------------------------------------------------------------

    def parse_schema_block(self) -> Schema:
        """Parse ``{ table(col:type, ...) table2(...) ... }``."""
        self.expect_punct("{")
        schema = Schema()
        while not self.current.is_punct("}"):
            schema.add(self.parse_table_schema())
            self.match_punct(",")
            self.match_punct(";")
        self.expect_punct("}")
        return schema

    def parse_table_schema(self) -> TableSchema:
        name = self.expect_ident()
        self.expect_punct("(")
        columns: List[Column] = []
        key_columns: List[str] = []
        while not self.current.is_punct(")"):
            column_name = self.expect_ident()
            self.expect_punct(":")
            type_name = self.expect_ident()
            column = Column(name=column_name, dtype=parse_type_name(type_name))
            # Optional 'key' marker after the type, e.g. aid:int key.
            if self.at_word("key"):
                self.advance()
                key_columns.append(column_name)
            columns.append(column)
            self.match_punct(",")
        self.expect_punct(")")
        return TableSchema(name, columns, primary_key=key_columns or None)

    # -- activators -------------------------------------------------------------------

    def parse_activator(self) -> ActivatorDecl:
        name = self.expect_ident()
        self.expect_punct(":")
        child = self.parse_child_ref()
        activator = ActivatorDecl(name=name, child=child)
        self.expect_punct("{")
        while not self.current.is_punct("}"):
            self.parse_activator_member(activator)
        self.expect_punct("}")
        return activator

    def parse_child_ref(self) -> ChildRef:
        name = self.expect_ident()
        type_args: List = []
        if self.match_punct("("):
            while not self.current.is_punct(")"):
                type_args.append(parse_type_name(self.expect_ident()))
                self.match_punct(",")
            self.expect_punct(")")
        return ChildRef(name=name, type_args=tuple(type_args))

    def parse_activator_member(self, activator: ActivatorDecl) -> None:
        if self.at_word("activation") and self.peek().is_word("schema"):
            self.advance()
            self.advance()
            schema = self.parse_schema_block()
            tables = list(schema)
            if len(tables) != 1:
                raise self.error("an activation schema must declare exactly one table")
            activator.activation_schema = tables[0]
            return
        if self.at_word("activation") and self.peek().is_word("query"):
            self.advance()
            self.advance()
            activator.activation_query = self.read_query_block()
            return
        if self.at_word("filter") and self.peek().is_word("activation"):
            self.advance()
            self.advance()
            activator.activation_filters.append(self.read_query_block())
            return
        if self.at_word("input") and self.peek().is_word("query"):
            self.advance()
            self.advance()
            activator.input_query.extend(self.read_assignment_block())
            return
        if self.at_word("return") and self.peek().is_word("handler"):
            self.advance()
            self.advance()
            activator.handlers.append(self.parse_handler(is_return=True, activator=activator))
            return
        if self.at_word("handler"):
            self.advance()
            activator.handlers.append(self.parse_handler(is_return=False, activator=activator))
            return
        raise self.error(
            f"unexpected token {self.current.value!r} inside activator {activator.name!r}"
        )

    def parse_activator_extension(self) -> ActivatorExtension:
        base_name = self.expect_ident()
        extension = ActivatorExtension(base_name=base_name)
        self.expect_punct("{")
        while not self.current.is_punct("}"):
            if self.at_word("filter") and self.peek().is_word("activation"):
                self.advance()
                self.advance()
                extension.activation_filter = self.read_query_block()
                continue
            if self.at_word("return") and self.peek().is_word("handler"):
                self.advance()
                self.advance()
                extension.handlers.append(self.parse_handler(is_return=True))
                continue
            if self.at_word("handler"):
                self.advance()
                extension.handlers.append(self.parse_handler(is_return=False))
                continue
            raise self.error(
                f"unexpected token {self.current.value!r} inside activator extension"
            )
        self.expect_punct("}")
        return extension

    # -- handlers ----------------------------------------------------------------------

    def parse_handler(
        self, is_return: bool, activator: Optional[ActivatorDecl] = None
    ) -> HandlerDecl:
        if self.current.type == HTokenType.IDENT and not self.current.is_punct("{"):
            name = self.expect_ident()
        else:
            count = len(activator.handlers) if activator is not None else 0
            name = f"handler_{count + 1}"
        handler = HandlerDecl(name=name, is_return=is_return)
        self.expect_punct("{")
        while not self.current.is_punct("}"):
            if self.at_word("condition"):
                self.advance()
                handler.condition = self.read_query_block()
                continue
            if self.at_word("action"):
                self.advance()
                handler.actions.extend(self.read_assignment_block())
                continue
            # Bare assignments directly inside the handler body (Figure 8 style).
            handler.actions.extend(self.parse_inline_assignments())
            break
        self.expect_punct("}")
        return handler

    def parse_inline_assignments(self) -> List[Assignment]:
        """Parse assignments written directly in a handler body (until '}')."""
        start_offset = self.current.start
        depth = 0
        while True:
            token = self.current
            if token.type == HTokenType.EOF:
                raise self.error("unterminated handler body")
            if token.is_punct("{"):
                depth += 1
            elif token.is_punct("}"):
                if depth == 0:
                    break
                depth -= 1
            self.advance()
        text = self.source[start_offset : self.current.start]
        return parse_assignments_text(text)

    # -- PUnits -------------------------------------------------------------------------

    def parse_punit(self) -> PUnitDecl:
        self.expect_word("punit")
        name = self.expect_ident()
        self.expect_word("for")
        aunit_name = self.expect_ident()
        template = self.read_raw_block()
        includes = parse_punit_template(template)
        return PUnitDecl(
            name=name, aunit_name=aunit_name, template=template, includes=includes
        )


# ---------------------------------------------------------------------------
# Assignment block parsing
# ---------------------------------------------------------------------------


def parse_assignments_text(text: str) -> List[Assignment]:
    """Parse ``target :- SELECT ...`` sequences from a raw block.

    Each assignment's query text extends to the start of the next
    assignment's target (a dotted identifier immediately preceding a ``:-``
    token) or to the end of the block.
    """
    tokens = tokenize_hilda(text)
    assignment_positions: List[int] = [
        index for index, token in enumerate(tokens) if token.type == HTokenType.ASSIGN
    ]
    if not assignment_positions:
        if text.strip():
            raise HildaSyntaxError("expected one or more ':-' assignments in block")
        return []

    assignments: List[Assignment] = []
    for order, assign_index in enumerate(assignment_positions):
        target_parts: List[str] = []
        cursor = assign_index - 1
        # Walk backwards over a dotted identifier chain to build the target.
        while cursor >= 0:
            token = tokens[cursor]
            if token.type == HTokenType.IDENT:
                target_parts.insert(0, str(token.value))
                if cursor - 1 >= 0 and tokens[cursor - 1].is_punct("."):
                    cursor -= 2
                    continue
            break
        if not target_parts:
            raise HildaSyntaxError("assignment ':-' is missing a target table name")
        target_start_index = cursor + 1 if cursor >= 0 else 0

        query_start = tokens[assign_index].end
        if order + 1 < len(assignment_positions):
            next_assign_index = assignment_positions[order + 1]
            # Find the start of the next assignment's target.
            next_cursor = next_assign_index - 1
            while next_cursor >= 0:
                token = tokens[next_cursor]
                if token.type == HTokenType.IDENT:
                    if next_cursor - 1 >= 0 and tokens[next_cursor - 1].is_punct("."):
                        next_cursor -= 2
                        continue
                    break
                break
            query_end = tokens[max(next_cursor, 0)].start
        else:
            query_end = len(text)
        query_text = text[query_start:query_end]
        try:
            query = parse_query(query_text)
        except Exception as exc:
            raise HildaSyntaxError(
                f"invalid SQL in assignment to {'.'.join(target_parts)!r}: {exc}"
            ) from exc
        assignments.append(
            Assignment(
                target=".".join(target_parts), query=QueryBlock(text=query_text, query=query)
            )
        )
    return assignments
