"""Loading and resolving complete Hilda programs.

A :class:`HildaProgram` is the resolved form the runtime and compiler work
with: inheritance has been flattened, the root AUnit identified, Basic AUnit
parameterizations materialised, and (optionally) the whole program passed
through the static validator.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import HildaValidationError, UnknownAUnitError
from repro.hilda.ast import AUnitDecl, ChildRef, ProgramDecl, PUnitDecl
from repro.hilda.basic_aunits import (
    basic_signature,
    is_basic_aunit,
    make_basic_aunit,
)
from repro.hilda.inheritance import resolve_inheritance
from repro.hilda.parser import parse_program

__all__ = ["HildaProgram", "load_program", "resolve_declaration"]


class HildaProgram:
    """A resolved Hilda program: flattened AUnits, PUnits and a root AUnit."""

    def __init__(
        self,
        aunits: Dict[str, AUnitDecl],
        punits: List[PUnitDecl],
        root_name: str,
        source: Optional[str] = None,
        declaration: Optional[ProgramDecl] = None,
    ) -> None:
        self.aunits = aunits
        self.punits = list(punits)
        self.root_name = root_name
        self.source = source
        self.declaration = declaration
        self._basic_cache: Dict[str, AUnitDecl] = {}
        if root_name not in aunits:
            raise UnknownAUnitError(root_name)

    # -- lookup ----------------------------------------------------------------

    @property
    def root(self) -> AUnitDecl:
        return self.aunits[self.root_name]

    def aunit(self, name: str) -> AUnitDecl:
        try:
            return self.aunits[name]
        except KeyError:
            raise UnknownAUnitError(name) from None

    def has_aunit(self, name: str) -> bool:
        return name in self.aunits

    def aunit_names(self) -> List[str]:
        return list(self.aunits)

    def resolve_child(self, ref: ChildRef) -> AUnitDecl:
        """Resolve an activator's child reference to an AUnit declaration.

        User-defined children are looked up by name; Basic AUnit references
        are materialised (and cached) per parameterization.
        """
        if ref.name in self.aunits:
            return self.aunits[ref.name]
        if is_basic_aunit(ref.name):
            signature = basic_signature(ref.name, ref.type_args)
            cached = self._basic_cache.get(signature)
            if cached is None:
                cached = make_basic_aunit(ref.name, ref.type_args)
                self._basic_cache[signature] = cached
            return cached
        raise UnknownAUnitError(ref.name)

    # -- PUnits --------------------------------------------------------------------

    def punit(self, name: str) -> Optional[PUnitDecl]:
        for punit in self.punits:
            if punit.name == name:
                return punit
        return None

    def punits_for(self, aunit_name: str) -> List[PUnitDecl]:
        return [punit for punit in self.punits if punit.aunit_name == aunit_name]

    def default_punit_for(self, aunit_name: str) -> Optional[PUnitDecl]:
        """The first PUnit declared for an AUnit, if any."""
        punits = self.punits_for(aunit_name)
        return punits[0] if punits else None

    # -- reachability -----------------------------------------------------------------

    def reachable_aunits(self) -> List[AUnitDecl]:
        """User-defined AUnits reachable from the root via activators."""
        visited: Dict[str, AUnitDecl] = {}
        stack = [self.root_name]
        while stack:
            name = stack.pop()
            if name in visited:
                continue
            aunit = self.aunits.get(name)
            if aunit is None:
                continue
            visited[name] = aunit
            for activator in aunit.activators:
                child_name = activator.child.name
                if child_name in self.aunits and child_name not in visited:
                    stack.append(child_name)
        return list(visited.values())

    def __repr__(self) -> str:
        return (
            f"HildaProgram(root={self.root_name!r}, "
            f"aunits={sorted(self.aunits)}, punits={len(self.punits)})"
        )


def load_program(
    source: str,
    root: Optional[str] = None,
    validate: bool = True,
) -> HildaProgram:
    """Parse, resolve and (optionally) validate a Hilda program.

    Parameters
    ----------
    source:
        The Hilda program text.
    root:
        Name of the root AUnit.  When omitted, the AUnit marked with the
        ``root`` keyword is used; when exactly one AUnit is declared it is
        taken as the root.
    validate:
        Run the static validator (recommended).  Disable only for tests that
        deliberately construct partial programs.
    """
    declaration = parse_program(source)
    return resolve_declaration(declaration, root=root, validate=validate, source=source)


def resolve_declaration(
    declaration: ProgramDecl,
    root: Optional[str] = None,
    validate: bool = True,
    source: Optional[str] = None,
) -> HildaProgram:
    """Resolve a :class:`ProgramDecl` into a runnable :class:`HildaProgram`.

    This is the single resolution path behind every program front end:
    :func:`load_program` parses Hilda text into a declaration and the
    authoring DSL (:mod:`repro.api`) constructs one in Python, but both go
    through this function — inheritance flattening, root designation and
    static validation are identical, so builder-authored and source-parsed
    applications are interchangeable everywhere downstream.
    """
    if not declaration.aunits:
        raise HildaValidationError("program declares no AUnits")
    resolved = resolve_inheritance(declaration)

    root_name = root or declaration.root_name
    if root_name is None:
        if len(declaration.aunits) == 1:
            root_name = declaration.aunits[0].name
        else:
            raise HildaValidationError(
                "program has no designated root AUnit; mark one with 'root aunit ...' "
                "or pass root= to load_program()"
            )
    if root_name not in resolved:
        raise UnknownAUnitError(root_name)
    resolved[root_name].is_root = True

    program = HildaProgram(
        aunits=resolved,
        punits=declaration.punits,
        root_name=root_name,
        source=source,
        declaration=declaration,
    )
    if validate:
        from repro.hilda.validator import validate_program

        validate_program(program)
    return program
