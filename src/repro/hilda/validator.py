"""Static validation of resolved Hilda programs.

The validator enforces the structural rules of Section 3 of the paper and
binds every embedded SQL query against the schemas visible in its context:

* the root AUnit cannot have an output schema;
* every activator's child AUnit exists (user-defined or Basic);
* an activation query requires an activation schema (and vice versa);
* table names are unambiguous within an AUnit (input/local/persist must not
  collide; output may only coincide with input for ``inout`` tables);
* local/persist initialization queries only write local/persist tables;
* activator input queries only write the child's input tables;
* return-handler actions only write output and persistent tables,
  non-return-handler actions only write local and persistent tables
  (Section 3.2.4);
* every query's table references resolve in its context (activation queries
  see input/local/persist; input queries additionally see
  ``activationTuple``; handlers additionally see the returning child's
  output tables), and assignment arities match their target tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import HildaValidationError, UnknownAUnitError
from repro.hilda.ast import (
    ActivatorDecl,
    Assignment,
    AUnitDecl,
    HandlerDecl,
    QueryBlock,
)
from repro.hilda.program import HildaProgram
from repro.relational.schema import TableSchema
from repro.sql.binder import Binder

__all__ = ["validate_program", "HildaValidator", "ValidationIssue"]


class ValidationIssue:
    """One problem found by the validator."""

    def __init__(self, location: str, message: str) -> None:
        self.location = location
        self.message = message

    def __str__(self) -> str:
        return f"{self.location}: {self.message}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ValidationIssue({self!s})"


def validate_program(program: HildaProgram, strict: bool = True) -> List[ValidationIssue]:
    """Validate a program; raise on issues when ``strict``, else return them."""
    validator = HildaValidator(program)
    issues = validator.validate()
    if issues and strict:
        details = "\n".join(f"  - {issue}" for issue in issues)
        raise HildaValidationError(
            f"Hilda program failed validation with {len(issues)} issue(s):\n{details}"
        )
    return issues


class HildaValidator:
    """Collects validation issues for a resolved program."""

    def __init__(self, program: HildaProgram) -> None:
        self.program = program
        self.issues: List[ValidationIssue] = []

    # -- entry point -------------------------------------------------------------

    def validate(self) -> List[ValidationIssue]:
        self._check_root()
        for aunit in self.program.aunits.values():
            self._check_aunit(aunit)
        return self.issues

    def _issue(self, location: str, message: str) -> None:
        self.issues.append(ValidationIssue(location, message))

    # -- program-level checks ---------------------------------------------------------

    def _check_root(self) -> None:
        root = self.program.root
        if not root.output_schema.is_empty():
            self._issue(root.name, "the root AUnit cannot have an output schema")

    # -- AUnit-level checks ---------------------------------------------------------------

    def _check_aunit(self, aunit: AUnitDecl) -> None:
        location = aunit.name
        self._check_schema_collisions(aunit)

        # Initialization queries.
        local_and_input = self._base_tables(aunit, include_local=False)
        for assignment in aunit.persist_query:
            self._check_assignment_target(
                location + ".persist_query",
                assignment,
                allowed={name: schema for name, schema in _schema_map(aunit.persist_schema).items()},
            )
            self._bind_assignment(
                location + ".persist_query",
                assignment,
                tables=_schema_map(aunit.persist_schema),
            )
        for assignment in aunit.local_query:
            self._check_assignment_target(
                location + ".local_query",
                assignment,
                allowed=_schema_map(aunit.local_schema),
            )
            self._bind_assignment(location + ".local_query", assignment, tables=local_and_input)

        # Activators.
        seen_activators = set()
        for activator in aunit.activators:
            if activator.name in seen_activators:
                self._issue(location, f"duplicate activator name {activator.name!r}")
            seen_activators.add(activator.name)
            self._check_activator(aunit, activator)

        if aunit.activator_extensions:
            self._issue(
                location,
                "unresolved activator extensions remain after inheritance flattening",
            )

    def _check_schema_collisions(self, aunit: AUnitDecl) -> None:
        location = aunit.name
        seen: Dict[str, str] = {}
        for kind, schema in (
            ("input", aunit.input_schema),
            ("local", aunit.local_schema),
            ("persist", aunit.persist_schema),
        ):
            for table in schema:
                if table.name in seen:
                    self._issue(
                        location,
                        f"table {table.name!r} declared in both "
                        f"{seen[table.name]} and {kind} schemas",
                    )
                else:
                    seen[table.name] = kind
        for table in aunit.output_schema:
            if table.name in seen:
                owner = seen[table.name]
                if owner == "input" and table.name in aunit.inout_tables:
                    continue
                self._issue(
                    location,
                    f"output table {table.name!r} collides with the {owner} schema",
                )

    # -- activator checks ---------------------------------------------------------------------

    def _check_activator(self, aunit: AUnitDecl, activator: ActivatorDecl) -> None:
        location = f"{aunit.name}.{activator.name}"

        # Child resolution.
        child: Optional[AUnitDecl]
        try:
            child = self.program.resolve_child(activator.child)
        except UnknownAUnitError:
            self._issue(location, f"unknown child AUnit {activator.child.name!r}")
            child = None
        if child is not None and child.name == aunit.name:
            self._issue(location, "an AUnit cannot activate itself")
        if child is not None and child.is_root:
            self._issue(location, "the root AUnit cannot be activated as a child")

        # Activation schema/query pairing.
        if (activator.activation_schema is None) != (activator.activation_query is None):
            self._issue(
                location,
                "activation schema and activation query must be specified together",
            )

        base_tables = self._base_tables(aunit)

        if activator.activation_query is not None:
            bound = self._bind_query(
                location + ".activation_query", activator.activation_query, base_tables
            )
            if bound is not None and activator.activation_schema is not None:
                if bound.arity != activator.activation_schema.arity:
                    self._issue(
                        location,
                        "activation query produces "
                        f"{bound.arity} column(s) but the activation schema has "
                        f"{activator.activation_schema.arity}",
                    )

        activation_tables = dict(base_tables)
        if activator.activation_schema is not None:
            activation_tables["activationTuple"] = activator.activation_schema.renamed(
                "activationTuple"
            )

        for filter_query in activator.activation_filters:
            self._bind_query(location + ".filter", filter_query, activation_tables)

        # Input query: targets must be input tables of the child.
        if child is not None:
            child_input = {
                f"{activator.child.name}.{table.name}": table for table in child.input_schema
            }
            child_input.update({table.name: table for table in child.input_schema})
            for assignment in activator.input_query:
                self._check_assignment_target(
                    location + ".input_query", assignment, allowed=child_input
                )
                self._bind_assignment(
                    location + ".input_query",
                    assignment,
                    tables=activation_tables,
                    target_schema=_lookup_target(child_input, assignment),
                )

        # Handlers.
        seen_handlers = set()
        for handler in activator.handlers:
            if handler.name in seen_handlers:
                self._issue(location, f"duplicate handler name {handler.name!r}")
            seen_handlers.add(handler.name)
            self._check_handler(aunit, activator, child, handler, activation_tables)

    def _check_handler(
        self,
        aunit: AUnitDecl,
        activator: ActivatorDecl,
        child: Optional[AUnitDecl],
        handler: HandlerDecl,
        activation_tables: Dict[str, TableSchema],
    ) -> None:
        location = f"{aunit.name}.{activator.name}.{handler.name}"

        handler_tables = dict(activation_tables)
        if child is not None:
            handler_tables.update(_child_visible_tables(activator.child.name, child))

        if handler.condition is not None:
            self._bind_query(location + ".condition", handler.condition, handler_tables)

        # Allowed write targets (Section 3.2.4).
        if handler.is_return:
            allowed = _schema_map(aunit.output_schema)
            allowed.update({f"out.{name}": aunit.output_schema.table(name) for name in aunit.inout_tables})
            allowed.update(_schema_map(aunit.persist_schema))
            if not aunit.has_output and not aunit.is_root:
                # A return handler on an AUnit without output is legal; it
                # simply returns no data.
                pass
        else:
            allowed = _schema_map(aunit.local_schema)
            allowed.update(_schema_map(aunit.persist_schema))

        # As assignments execute sequentially, later assignments may read the
        # tables written earlier in the same action.
        readable = dict(handler_tables)
        for assignment in handler.actions:
            self._check_assignment_target(location, assignment, allowed=allowed)
            target_schema = _lookup_target(allowed, assignment)
            self._bind_assignment(location, assignment, tables=readable, target_schema=target_schema)
            if target_schema is not None:
                readable.setdefault(assignment.simple_target, target_schema)

    # -- query binding helpers ---------------------------------------------------------------------

    def _base_tables(self, aunit: AUnitDecl, include_local: bool = True) -> Dict[str, TableSchema]:
        """Tables readable from any query of ``aunit`` (input, local, persist, output)."""
        tables: Dict[str, TableSchema] = {}
        tables.update(_schema_map(aunit.input_schema))
        if include_local:
            tables.update(_schema_map(aunit.local_schema))
        tables.update(_schema_map(aunit.persist_schema))
        # Output tables are readable (actions may read what they just wrote).
        for table in aunit.output_schema:
            tables.setdefault(table.name, table)
        # in.X / out.X views of inout tables.
        for name in aunit.inout_tables:
            if aunit.input_schema.has_table(name):
                tables[f"in.{name}"] = aunit.input_schema.table(name).renamed(f"in.{name}")
            if aunit.output_schema.has_table(name):
                tables[f"out.{name}"] = aunit.output_schema.table(name).renamed(f"out.{name}")
        return tables

    def _bind_query(
        self,
        location: str,
        block: QueryBlock,
        tables: Dict[str, TableSchema],
    ):
        binder = Binder(lambda name: tables.get(name), strict_columns=False)
        try:
            return binder.bind(block.query)
        except Exception as exc:
            self._issue(location, f"query does not bind: {exc}")
            return None

    def _bind_assignment(
        self,
        location: str,
        assignment: Assignment,
        tables: Dict[str, TableSchema],
        target_schema: Optional[TableSchema] = None,
    ) -> None:
        bound = self._bind_query(
            f"{location}[{assignment.target}]", assignment.query, tables
        )
        if bound is not None and target_schema is not None:
            if bound.arity != target_schema.arity:
                self._issue(
                    location,
                    f"assignment to {assignment.target!r} produces {bound.arity} "
                    f"column(s) but the target table has {target_schema.arity}",
                )

    def _check_assignment_target(
        self,
        location: str,
        assignment: Assignment,
        allowed: Dict[str, TableSchema],
    ) -> None:
        if assignment.target in allowed or assignment.simple_target in allowed:
            return
        self._issue(
            location,
            f"assignment target {assignment.target!r} is not writable here "
            f"(allowed: {sorted(allowed) or '<none>'})",
        )


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _schema_map(schema) -> Dict[str, TableSchema]:
    return {table.name: table for table in schema}


def _lookup_target(
    allowed: Dict[str, TableSchema], assignment: Assignment
) -> Optional[TableSchema]:
    return allowed.get(assignment.target) or allowed.get(assignment.simple_target)


def _child_visible_tables(child_ref_name: str, child: AUnitDecl) -> Dict[str, TableSchema]:
    """Tables of a returning child visible to its parent's handlers.

    The parent can read the child's output tables as ``Child.T`` (and the
    ``Child.in.T`` / ``Child.out.T`` views of inout tables, as CMSRoot does
    with ``CourseAdmin.in.assign`` / ``CourseAdmin.out.assign``).
    """
    tables: Dict[str, TableSchema] = {}
    for table in child.output_schema:
        qualified = f"{child_ref_name}.{table.name}"
        tables[qualified] = table.renamed(qualified)
    for name in child.inout_tables:
        if child.input_schema.has_table(name):
            qualified = f"{child_ref_name}.in.{name}"
            tables[qualified] = child.input_schema.table(name).renamed(qualified)
        if child.output_schema.has_table(name):
            qualified = f"{child_ref_name}.out.{name}"
            tables[qualified] = child.output_schema.table(name).renamed(qualified)
    return tables
