"""Parsing of ``<punit ...>`` placeholders inside PUnit templates.

A User-Defined PUnit is an HTML template that recursively invokes the
PUnits of child AUnits via tags of the form::

    <punit activator="ActSelectRow" name="ShowSelectRow">

(Section 3.4 of the paper).  ``activator`` names an activator of the PUnit's
AUnit; ``name`` optionally selects a specific PUnit for the child AUnit.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.errors import HildaSyntaxError
from repro.hilda.ast import PUnitInclude

__all__ = ["parse_punit_template", "PUNIT_TAG_PATTERN", "split_template"]

#: Matches a <punit ...> tag; attributes are parsed separately.
PUNIT_TAG_PATTERN = re.compile(r"<punit\b([^>]*)>", re.IGNORECASE)

#: Matches key=value attributes; values may be quoted with ', '', or ".
_ATTRIBUTE_PATTERN = re.compile(
    r"(?P<key>[A-Za-z_][A-Za-z0-9_]*)\s*=\s*"
    r"(?P<value>''[^']*''|'[^']*'|\"[^\"]*\"|[^\s>]+)"
)


def _strip_quotes(value: str) -> str:
    if value.startswith("''") and value.endswith("''"):
        return value[2:-2]
    if (value.startswith("'") and value.endswith("'")) or (
        value.startswith('"') and value.endswith('"')
    ):
        return value[1:-1]
    return value


def parse_punit_template(template: str) -> List[PUnitInclude]:
    """Extract the ordered list of ``<punit>`` placeholders from a template."""
    includes: List[PUnitInclude] = []
    for match in PUNIT_TAG_PATTERN.finditer(template):
        attributes = {}
        for attr in _ATTRIBUTE_PATTERN.finditer(match.group(1)):
            attributes[attr.group("key").lower()] = _strip_quotes(attr.group("value"))
        activator = attributes.get("activator")
        if not activator:
            raise HildaSyntaxError("<punit> tag is missing the 'activator' attribute")
        includes.append(
            PUnitInclude(activator=activator, punit_name=attributes.get("name"))
        )
    return includes


def split_template(template: str) -> List[object]:
    """Split a template into literal HTML chunks and :class:`PUnitInclude` markers.

    The renderer walks this list, emitting literal chunks verbatim and
    recursively rendering child AUnit instances at include positions.
    """
    parts: List[object] = []
    last_end = 0
    for match in PUNIT_TAG_PATTERN.finditer(template):
        if match.start() > last_end:
            parts.append(template[last_end : match.start()])
        attributes = {}
        for attr in _ATTRIBUTE_PATTERN.finditer(match.group(1)):
            attributes[attr.group("key").lower()] = _strip_quotes(attr.group("value"))
        parts.append(
            PUnitInclude(
                activator=attributes.get("activator", ""),
                punit_name=attributes.get("name"),
            )
        )
        last_end = match.end()
    if last_end < len(template):
        parts.append(template[last_end:])
    return parts
