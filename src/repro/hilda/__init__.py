"""The Hilda language front end (``docs/architecture.md`` § "repro.hilda").

* :func:`parse_program` — Hilda text to a :class:`~repro.hilda.ast.ProgramDecl`.
* :func:`load_program` — parse + flatten inheritance + validate, producing a
  :class:`~repro.hilda.program.HildaProgram` the runtime and compiler use.
* :mod:`repro.hilda.basic_aunits` — the catalog of Basic AUnits.
"""

from repro.hilda.ast import (
    ActivatorDecl,
    ActivatorExtension,
    Assignment,
    AUnitDecl,
    ChildRef,
    HandlerDecl,
    ProgramDecl,
    PUnitDecl,
    PUnitInclude,
    QueryBlock,
)
from repro.hilda.basic_aunits import (
    BASIC_AUNIT_SPECS,
    BasicAUnitSpec,
    is_basic_aunit,
    make_basic_aunit,
)
from repro.hilda.inheritance import flatten_aunit, resolve_inheritance
from repro.hilda.parser import parse_aunit, parse_program
from repro.hilda.program import HildaProgram, load_program
from repro.hilda.validator import HildaValidator, ValidationIssue, validate_program

__all__ = [
    "ActivatorDecl",
    "ActivatorExtension",
    "Assignment",
    "AUnitDecl",
    "BASIC_AUNIT_SPECS",
    "BasicAUnitSpec",
    "ChildRef",
    "HandlerDecl",
    "HildaProgram",
    "HildaValidator",
    "ProgramDecl",
    "PUnitDecl",
    "PUnitInclude",
    "QueryBlock",
    "ValidationIssue",
    "flatten_aunit",
    "is_basic_aunit",
    "load_program",
    "make_basic_aunit",
    "parse_aunit",
    "parse_program",
    "resolve_inheritance",
    "validate_program",
]
