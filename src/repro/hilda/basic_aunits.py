"""Basic AUnits: the primitive Input/Output building blocks of Hilda.

Section 3.1 of the paper introduces Basic AUnits as the AUnits that provide
"simple Input/Output functionality"; user actions (the paper's *operations*)
are always returns of Basic AUnit instances.  The catalog implemented here
covers every Basic AUnit the paper's MiniCMS program uses plus the obvious
companions:

============  =====================  ======================  =================
Name          Input table            Output table            User interaction
============  =====================  ======================  =================
ShowRow       ``input`` (one row)    —                       none (display)
ShowTable     ``input`` (many rows)  —                       none (display)
GetRow        —                      ``output`` (one row)    enter a new row
UpdateRow     ``input`` (one row)    ``output`` (one row)    edit the row
SelectRow     ``input`` (many rows)  ``output`` (one row)    pick one row
SubmitBasic   —                      —                       press a button
============  =====================  ======================  =================

Basic AUnits are *parameterized by column types*: ``ShowRow(string, float)``
is a ShowRow whose single input row has a string and a float column.  The
factory below materialises a concrete :class:`~repro.hilda.ast.AUnitDecl`
for a given parameterization; generated column names are ``c1 .. cn``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import UnknownAUnitError
from repro.hilda.ast import AUnitDecl, ChildRef
from repro.relational.schema import Column, Schema, TableSchema
from repro.relational.types import DataType

__all__ = [
    "BasicAUnitSpec",
    "BASIC_AUNIT_SPECS",
    "is_basic_aunit",
    "make_basic_aunit",
    "basic_aunit_for_ref",
]


@dataclass(frozen=True)
class BasicAUnitSpec:
    """Static description of one kind of Basic AUnit."""

    name: str
    has_input: bool
    has_output: bool
    #: True when the input table may contain any number of rows (ShowTable,
    #: SelectRow); False when it is expected to hold exactly one row.
    multi_row_input: bool = False
    #: True when a user action (a return) is possible for this Basic AUnit.
    returnable: bool = True
    description: str = ""


BASIC_AUNIT_SPECS: Dict[str, BasicAUnitSpec] = {
    spec.name: spec
    for spec in (
        BasicAUnitSpec(
            name="ShowRow",
            has_input=True,
            has_output=False,
            returnable=False,
            description="Shows a single row of values to the user.",
        ),
        BasicAUnitSpec(
            name="ShowTable",
            has_input=True,
            has_output=False,
            multi_row_input=True,
            returnable=False,
            description="Shows a table of values to the user.",
        ),
        BasicAUnitSpec(
            name="GetRow",
            has_input=False,
            has_output=True,
            description="Returns a row of values entered by the user.",
        ),
        BasicAUnitSpec(
            name="UpdateRow",
            has_input=True,
            has_output=True,
            description="Shows a row and returns the user's edited version.",
        ),
        BasicAUnitSpec(
            name="SelectRow",
            has_input=True,
            has_output=True,
            multi_row_input=True,
            description="Shows a set of rows and returns the one the user selects.",
        ),
        BasicAUnitSpec(
            name="SubmitBasic",
            has_input=False,
            has_output=False,
            description="A submit button; returning it carries no data.",
        ),
    )
}

#: Aliases accepted in programs (the paper refers to "the basic AUnit, Submit").
_ALIASES = {"Submit": "SubmitBasic", "Button": "SubmitBasic"}


def _canonical_name(name: str) -> Optional[str]:
    if name in BASIC_AUNIT_SPECS:
        return name
    return _ALIASES.get(name)


def is_basic_aunit(name: str) -> bool:
    """True when ``name`` refers to a Basic AUnit (directly or via alias)."""
    return _canonical_name(name) is not None


def basic_signature(name: str, type_args: Sequence[DataType]) -> str:
    """The unique name of a Basic AUnit parameterization, e.g. ``ShowRow(string)``."""
    canonical = _canonical_name(name) or name
    if type_args:
        return f"{canonical}({','.join(dtype.value for dtype in type_args)})"
    return canonical


def make_basic_aunit(name: str, type_args: Sequence[DataType] = ()) -> AUnitDecl:
    """Materialise the AUnit declaration of a Basic AUnit parameterization."""
    canonical = _canonical_name(name)
    if canonical is None:
        raise UnknownAUnitError(name)
    spec = BASIC_AUNIT_SPECS[canonical]
    columns = tuple(
        Column(name=f"c{index + 1}", dtype=dtype) for index, dtype in enumerate(type_args)
    )
    input_schema = Schema()
    output_schema = Schema()
    if spec.has_input:
        input_schema.add(TableSchema("input", columns or (Column("c1", DataType.STRING),)))
    if spec.has_output:
        output_schema.add(TableSchema("output", columns or (Column("c1", DataType.STRING),)))
    return AUnitDecl(
        name=basic_signature(canonical, type_args),
        input_schema=input_schema,
        output_schema=output_schema,
        is_basic=True,
        basic_kind=canonical,
    )


def basic_aunit_for_ref(ref: ChildRef) -> AUnitDecl:
    """Materialise the Basic AUnit declaration for an activator's child reference."""
    return make_basic_aunit(ref.name, ref.type_args)
