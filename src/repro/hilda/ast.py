"""Abstract syntax tree of the Hilda language.

The node classes follow the grammar of Figure 1 (User-Defined AUnits) and
Figure 12 (AUnit inheritance) of the paper, plus the PUnit syntax sketched
in Section 3.4.  SQL embedded in a Hilda program is stored both as the raw
source text (for error messages and code generation) and as a parsed
:mod:`repro.sql.ast` tree (for validation and execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import HildaError, UnknownAUnitError
from repro.relational.schema import Schema, TableSchema
from repro.relational.types import DataType
from repro.sql.ast import Query

__all__ = [
    "QueryBlock",
    "Assignment",
    "ChildRef",
    "HandlerDecl",
    "ActivatorDecl",
    "ActivatorExtension",
    "AUnitDecl",
    "PUnitDecl",
    "PUnitInclude",
    "ProgramDecl",
    "SCHEMA_KINDS",
]

#: The schema block kinds an AUnit may declare.
SCHEMA_KINDS = ("input", "output", "inout", "persist", "local")


@dataclass
class QueryBlock:
    """A SQL query embedded in a Hilda program."""

    text: str
    query: Query

    def __str__(self) -> str:
        return self.text.strip()


@dataclass
class Assignment:
    """``target :- SELECT ...`` — assign a query result to a table.

    ``target`` is the name exactly as written, possibly dotted
    (``CourseAdmin.assign``, ``ShowRow.input``, ``newassign``).
    """

    target: str
    query: QueryBlock

    @property
    def target_parts(self) -> Tuple[str, ...]:
        return tuple(self.target.split("."))

    @property
    def simple_target(self) -> str:
        """The unqualified table name being assigned."""
        return self.target_parts[-1]

    @property
    def target_prefix(self) -> Optional[str]:
        """The qualifier before the table name (child AUnit name), if any."""
        parts = self.target_parts
        return ".".join(parts[:-1]) if len(parts) > 1 else None

    def __str__(self) -> str:
        return f"{self.target} :- {self.query}"


@dataclass
class ChildRef:
    """Reference to the child AUnit an activator activates.

    Basic AUnits are parameterized by column types, e.g. ``ShowRow(string)``
    or ``UpdateRow(string, date, date)``; ``type_args`` holds those types.
    User-defined children have no type arguments.
    """

    name: str
    type_args: Tuple[DataType, ...] = ()

    def __str__(self) -> str:
        if self.type_args:
            args = ", ".join(dtype.value for dtype in self.type_args)
            return f"{self.name}({args})"
        return self.name


@dataclass
class HandlerDecl:
    """A handler of an activator: optional condition, an action, return flag.

    The action is a list of assignments.  A *return* handler may write the
    containing AUnit's output and persistent tables and causes the AUnit to
    return; a non-return handler may write local and persistent tables.
    """

    name: str
    is_return: bool = False
    condition: Optional[QueryBlock] = None
    actions: List[Assignment] = field(default_factory=list)


@dataclass
class ActivatorDecl:
    """An activator (Figure 1, lines 16-22)."""

    name: str
    child: ChildRef
    activation_schema: Optional[TableSchema] = None
    activation_query: Optional[QueryBlock] = None
    input_query: List[Assignment] = field(default_factory=list)
    handlers: List[HandlerDecl] = field(default_factory=list)
    #: Activation filter added by inheritance (Figure 12, line 17); kept here
    #: so resolved (flattened) AUnits carry their filters along.
    activation_filters: List[QueryBlock] = field(default_factory=list)

    @property
    def activates_per_tuple(self) -> bool:
        """True when one child instance is activated per activation-query tuple."""
        return self.activation_query is not None

    def return_handlers(self) -> List[HandlerDecl]:
        return [handler for handler in self.handlers if handler.is_return]

    def non_return_handlers(self) -> List[HandlerDecl]:
        return [handler for handler in self.handlers if not handler.is_return]


@dataclass
class ActivatorExtension:
    """``extend activator Base { filter activation {...} Handler* }`` (Figure 12)."""

    base_name: str
    activation_filter: Optional[QueryBlock] = None
    handlers: List[HandlerDecl] = field(default_factory=list)


@dataclass
class AUnitDecl:
    """A User-Defined AUnit declaration.

    ``inout`` schemas are stored expanded: the tables appear in both
    ``input_schema`` and ``output_schema`` and their names are recorded in
    ``inout_tables`` so the runtime knows which input tables are readable
    via the ``in.X`` notation and writable via ``out.X``.
    """

    name: str
    input_schema: Schema = field(default_factory=Schema)
    output_schema: Schema = field(default_factory=Schema)
    inout_tables: Tuple[str, ...] = ()
    persist_schema: Schema = field(default_factory=Schema)
    persist_query: List[Assignment] = field(default_factory=list)
    local_schema: Schema = field(default_factory=Schema)
    local_query: List[Assignment] = field(default_factory=list)
    activators: List[ActivatorDecl] = field(default_factory=list)
    #: Name of the base AUnit when this is an extended AUnit (Figure 12).
    extends: Optional[str] = None
    #: Extensions of base activators; resolved away by inheritance flattening.
    activator_extensions: List[ActivatorExtension] = field(default_factory=list)
    #: True when this AUnit was marked as the program's root.
    is_root: bool = False
    #: Synchronised AUnits re-initialise their local schema on every
    #: reactivation (Definition 8 of the paper); default is asynchronous,
    #: i.e. local state is preserved.
    synchronized: bool = False
    #: True for generated Basic AUnit declarations.
    is_basic: bool = False
    #: For Basic AUnits: the kind (ShowRow, GetRow, ...).
    basic_kind: Optional[str] = None

    def activator(self, name: str) -> ActivatorDecl:
        for activator in self.activators:
            if activator.name == name:
                return activator
        raise HildaError(f"AUnit {self.name!r} has no activator {name!r}")

    def has_activator(self, name: str) -> bool:
        return any(activator.name == name for activator in self.activators)

    @property
    def has_output(self) -> bool:
        return not self.output_schema.is_empty()


@dataclass
class PUnitInclude:
    """A ``<punit activator="..." name="...">`` tag inside a PUnit template."""

    activator: str
    punit_name: Optional[str] = None


@dataclass
class PUnitDecl:
    """A Presentation Unit: HTML template associated with an AUnit.

    ``template`` is the raw HTML with ``<punit ...>`` placeholders;
    ``includes`` lists the placeholders in order of appearance.
    """

    name: str
    aunit_name: str
    template: str
    includes: List[PUnitInclude] = field(default_factory=list)


@dataclass
class ProgramDecl:
    """A parsed (but not yet resolved) Hilda program."""

    aunits: List[AUnitDecl] = field(default_factory=list)
    punits: List[PUnitDecl] = field(default_factory=list)
    root_name: Optional[str] = None

    def aunit(self, name: str) -> AUnitDecl:
        for aunit in self.aunits:
            if aunit.name == name:
                return aunit
        raise UnknownAUnitError(name)

    def has_aunit(self, name: str) -> bool:
        return any(aunit.name == name for aunit in self.aunits)

    def aunit_names(self) -> List[str]:
        return [aunit.name for aunit in self.aunits]

    def punits_for(self, aunit_name: str) -> List[PUnitDecl]:
        return [punit for punit in self.punits if punit.aunit_name == aunit_name]
