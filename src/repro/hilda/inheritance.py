"""AUnit inheritance resolution (Section 3.3, Figure 12 of the paper).

An *extended* AUnit names a *base* AUnit and may

* add tables to any of its schemas (and initialization queries),
* add new activators,
* extend existing activators with additional handlers and with an
  *activation filter* that restricts which child instances are activated.

This module flattens inheritance: it produces, for every AUnit in a parsed
program, a self-contained :class:`~repro.hilda.ast.AUnitDecl` with all
inherited members folded in.  The runtime and compiler only ever see
flattened AUnits.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import HildaValidationError, UnknownAUnitError
from repro.hilda.ast import ActivatorDecl, AUnitDecl, ProgramDecl

__all__ = ["resolve_inheritance", "flatten_aunit"]


def resolve_inheritance(program: ProgramDecl) -> Dict[str, AUnitDecl]:
    """Flatten every AUnit of a parsed program.

    Returns a mapping from AUnit name to its flattened declaration.  Raises
    :class:`HildaValidationError` on unknown bases or inheritance cycles.
    """
    declared = {aunit.name: aunit for aunit in program.aunits}
    resolved: Dict[str, AUnitDecl] = {}
    in_progress: Set[str] = set()

    def resolve(name: str) -> AUnitDecl:
        if name in resolved:
            return resolved[name]
        if name in in_progress:
            raise HildaValidationError(f"inheritance cycle involving AUnit {name!r}")
        try:
            declaration = declared[name]
        except KeyError:
            raise UnknownAUnitError(name) from None
        in_progress.add(name)
        if declaration.extends is None:
            flattened = declaration
        else:
            base = resolve(declaration.extends)
            flattened = flatten_aunit(declaration, base)
        in_progress.discard(name)
        resolved[name] = flattened
        return flattened

    for aunit_name in declared:
        resolve(aunit_name)
    return resolved


def flatten_aunit(extended: AUnitDecl, base: AUnitDecl) -> AUnitDecl:
    """Fold a base AUnit into an extended AUnit, producing a flattened AUnit."""
    try:
        input_schema = base.input_schema.merge(extended.input_schema)
        output_schema = base.output_schema.merge(extended.output_schema)
        persist_schema = base.persist_schema.merge(extended.persist_schema)
        local_schema = base.local_schema.merge(extended.local_schema)
    except Exception as exc:
        raise HildaValidationError(
            f"AUnit {extended.name!r} redeclares a table of its base {base.name!r}: {exc}"
        ) from exc

    # Start from copies of the base activators so extensions do not mutate
    # the base declaration (several AUnits may extend the same base).
    activators: List[ActivatorDecl] = [_copy_activator(activator) for activator in base.activators]
    activators_by_name = {activator.name: activator for activator in activators}

    for extension in extended.activator_extensions:
        target = activators_by_name.get(extension.base_name)
        if target is None:
            raise HildaValidationError(
                f"AUnit {extended.name!r} extends unknown activator "
                f"{extension.base_name!r} of base {base.name!r}"
            )
        if extension.activation_filter is not None:
            target.activation_filters = list(target.activation_filters) + [
                extension.activation_filter
            ]
        if extension.handlers:
            target.handlers = list(target.handlers) + list(extension.handlers)

    for activator in extended.activators:
        if activator.name in activators_by_name:
            raise HildaValidationError(
                f"AUnit {extended.name!r} redeclares activator {activator.name!r} "
                f"of base {base.name!r}; use 'extend activator' instead"
            )
        activators.append(activator)

    return AUnitDecl(
        name=extended.name,
        input_schema=input_schema,
        output_schema=output_schema,
        inout_tables=tuple(base.inout_tables) + tuple(extended.inout_tables),
        persist_schema=persist_schema,
        persist_query=list(base.persist_query) + list(extended.persist_query),
        local_schema=local_schema,
        local_query=list(base.local_query) + list(extended.local_query),
        activators=activators,
        extends=extended.extends,
        activator_extensions=[],
        is_root=extended.is_root,
        synchronized=extended.synchronized or base.synchronized,
        is_basic=False,
    )


def _copy_activator(activator: ActivatorDecl) -> ActivatorDecl:
    """A shallow-but-safe copy: lists are copied, parsed queries are shared."""
    return ActivatorDecl(
        name=activator.name,
        child=activator.child,
        activation_schema=activator.activation_schema,
        activation_query=activator.activation_query,
        input_query=list(activator.input_query),
        handlers=list(activator.handlers),
        activation_filters=list(activator.activation_filters),
    )
