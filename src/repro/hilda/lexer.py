"""Lexer for the Hilda language (Figure 1 and Figure 12 of the paper).

The Hilda grammar embeds SQL inside brace-delimited blocks (activation
queries, handler conditions, assignments).  The Hilda lexer therefore keeps
the *character offset* of every token so the parser can slice the original
source text for those blocks and hand the text to the SQL parser unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.errors import HildaSyntaxError

__all__ = ["HToken", "HTokenType", "tokenize_hilda"]


class HTokenType:
    """Token categories of the Hilda lexer."""

    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    PUNCT = "PUNCT"  # { } ( ) , : ;
    ASSIGN = "ASSIGN"  # :-
    EOF = "EOF"


@dataclass(frozen=True)
class HToken:
    """A Hilda token with position information.

    ``start``/``end`` are character offsets into the original source; the
    parser uses them to recover raw SQL block text.
    """

    type: str
    value: Any
    line: int
    column: int
    start: int
    end: int

    def is_word(self, *words: str) -> bool:
        """Case-insensitive keyword test (Hilda keywords are not reserved)."""
        return self.type == HTokenType.IDENT and str(self.value).lower() in {
            word.lower() for word in words
        }

    def is_punct(self, symbol: str) -> bool:
        return self.type == HTokenType.PUNCT and self.value == symbol


_PUNCTUATION = "{}(),:;<>=."


def tokenize_hilda(text: str) -> List[HToken]:
    """Tokenize Hilda source text.

    Comments (``//`` to end of line and ``/* ... */``) are skipped.  String
    literals may use single or double quotes.  The two-character token
    ``:-`` (assignment) is recognised specially; every other punctuation
    character becomes its own token.
    """
    tokens: List[HToken] = []
    position = 0
    line = 1
    column = 1
    length = len(text)

    def error(message: str) -> HildaSyntaxError:
        return HildaSyntaxError(message, line, column)

    while position < length:
        char = text[position]

        if char in " \t\r":
            position += 1
            column += 1
            continue
        if char == "\n":
            position += 1
            line += 1
            column = 1
            continue

        # Comments.
        if char == "/" and text.startswith("//", position):
            end = text.find("\n", position)
            position = length if end == -1 else end
            continue
        if char == "/" and text.startswith("/*", position):
            end = text.find("*/", position + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = text[position : end + 2]
            line += skipped.count("\n")
            position = end + 2
            column = 1
            continue

        start = position
        start_line, start_column = line, column

        # Strings.
        if char in ("'", '"'):
            end = position + 1
            parts: List[str] = []
            closed = False
            while end < length:
                if text[end] == char:
                    closed = True
                    break
                parts.append(text[end])
                end += 1
            if not closed:
                raise error("unterminated string literal")
            value = "".join(parts)
            consumed = end - position + 1
            tokens.append(
                HToken(HTokenType.STRING, value, start_line, start_column, start, end + 1)
            )
            position += consumed
            column += consumed
            continue

        # Numbers.
        if char.isdigit():
            end = position
            while end < length and (text[end].isdigit() or text[end] == "."):
                end += 1
            literal = text[position:end]
            value = float(literal) if "." in literal else int(literal)
            tokens.append(
                HToken(HTokenType.NUMBER, value, start_line, start_column, start, end)
            )
            column += end - position
            position = end
            continue

        # Identifiers.
        if char.isalpha() or char == "_":
            end = position
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[position:end]
            tokens.append(
                HToken(HTokenType.IDENT, word, start_line, start_column, start, end)
            )
            column += end - position
            position = end
            continue

        # Assignment ':-'.
        if char == ":" and text.startswith(":-", position):
            tokens.append(
                HToken(HTokenType.ASSIGN, ":-", start_line, start_column, start, start + 2)
            )
            position += 2
            column += 2
            continue

        # Any other character (SQL operators such as * < = inside query blocks)
        # becomes a single-character punctuation token; the Hilda parser only
        # needs to track braces inside those blocks and slices the raw text.
        tokens.append(
            HToken(HTokenType.PUNCT, char, start_line, start_column, start, start + 1)
        )
        position += 1
        column += 1

    tokens.append(HToken(HTokenType.EOF, None, line, column, length, length))
    return tokens
