"""Unparse Hilda ASTs back to Hilda source text.

The authoring DSL (:mod:`repro.api`) constructs programs without any
source text; this module is its dual: it prints a
:class:`~repro.hilda.ast.ProgramDecl` (or a resolved
:class:`~repro.hilda.program.HildaProgram`) as Hilda source the parser
accepts, reproducing an equivalent program.  The compiler uses it so a
Python-authored application compiles into the same self-contained artifact
as a text-authored one (the generated module re-parses its embedded
source; see :mod:`repro.compiler.codegen`).

Embedded SQL is emitted verbatim from the stored :class:`QueryBlock.text`,
so the round trip never re-words a query.  The one liberty taken is
whitespace: blocks are re-indented, which parses identically.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Union

from repro.hilda.ast import (
    ActivatorDecl,
    ActivatorExtension,
    Assignment,
    AUnitDecl,
    HandlerDecl,
    ProgramDecl,
    PUnitDecl,
)
from repro.hilda.program import HildaProgram
from repro.relational.schema import Schema, TableSchema

__all__ = ["unparse_program", "unparse_aunit"]

_INDENT = "    "


def unparse_program(program: Union[ProgramDecl, HildaProgram]) -> str:
    """Hilda source text for a program declaration (or resolved program).

    For a :class:`HildaProgram` the *unresolved* declaration is preferred
    when it is available (keeping inheritance intact); otherwise the
    resolved (flattened) AUnits are printed, which parse to the same
    runtime behaviour.
    """
    if isinstance(program, HildaProgram):
        if program.declaration is not None:
            declaration = program.declaration
        else:
            # Resolved AUnits are already inheritance-flattened: their base
            # members are merged in, but ``extends`` is still recorded.
            # Printing it would make the re-parse flatten a second time (and
            # reject the merged schemas as redeclarations), so strip it.
            declaration = ProgramDecl(
                aunits=[
                    replace(aunit, extends=None, activator_extensions=[])
                    for aunit in program.aunits.values()
                ],
                punits=list(program.punits),
                root_name=program.root_name,
            )
    else:
        declaration = program
    chunks: List[str] = []
    for aunit in declaration.aunits:
        is_root = aunit.is_root or aunit.name == declaration.root_name
        chunks.append(unparse_aunit(aunit, mark_root=is_root))
    for punit in declaration.punits:
        chunks.append(_unparse_punit(punit))
    return "\n\n".join(chunks) + "\n"


def unparse_aunit(aunit: AUnitDecl, mark_root: bool = False) -> str:
    """Hilda source text for one AUnit declaration."""
    head = "root aunit" if mark_root else "aunit"
    extends = f" extends {aunit.extends}" if aunit.extends else ""
    lines: List[str] = [f"{head} {aunit.name}{extends} {{"]
    if aunit.synchronized:
        lines.append(_INDENT + "synchronized")

    inout = set(aunit.inout_tables)
    input_tables = [t for t in aunit.input_schema if t.name not in inout]
    output_tables = [t for t in aunit.output_schema if t.name not in inout]
    inout_tables = [t for t in aunit.input_schema if t.name in inout]
    lines.extend(_schema_block("input", input_tables))
    lines.extend(_schema_block("output", output_tables))
    lines.extend(_schema_block("inout", inout_tables))
    lines.extend(_schema_block("persist", list(aunit.persist_schema)))
    lines.extend(_assignment_block("persist query", aunit.persist_query, 1))
    lines.extend(_schema_block("local", list(aunit.local_schema)))
    lines.extend(_assignment_block("local query", aunit.local_query, 1))

    for activator in aunit.activators:
        lines.extend(_unparse_activator(activator))
    for extension in aunit.activator_extensions:
        lines.extend(_unparse_extension(extension))
    lines.append("}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Blocks
# ---------------------------------------------------------------------------


def _schema_block(kind: str, tables: List[TableSchema], depth: int = 1) -> List[str]:
    if not tables:
        return []
    pad = _INDENT * depth
    lines = [f"{pad}{kind} schema {{"]
    for table in tables:
        lines.append(pad + _INDENT + _table_schema(table))
    lines.append(pad + "}")
    return lines


def _table_schema(table: TableSchema) -> str:
    keys = set(table.primary_key)
    columns = ", ".join(
        f"{column.name}:{column.dtype.value}" + (" key" if column.name in keys else "")
        for column in table.columns
    )
    return f"{table.name}({columns})"


def _sql_block(header: str, text: str, depth: int) -> List[str]:
    pad = _INDENT * depth
    lines = [f"{pad}{header} {{"]
    lines.extend(_reindent(text, depth + 1))
    lines.append(pad + "}")
    return lines


def _assignment_block(header: str, assignments: List[Assignment], depth: int) -> List[str]:
    if not assignments:
        return []
    pad = _INDENT * depth
    lines = [f"{pad}{header} {{"]
    for assignment in assignments:
        lines.append(pad + _INDENT + f"{assignment.target} :-")
        lines.extend(_reindent(assignment.query.text, depth + 2))
    lines.append(pad + "}")
    return lines


def _reindent(sql: str, depth: int) -> List[str]:
    pad = _INDENT * depth
    stripped = [line.strip() for line in sql.strip().splitlines()]
    return [pad + line for line in stripped if line]


# ---------------------------------------------------------------------------
# Activators, handlers, extensions, PUnits
# ---------------------------------------------------------------------------


def _unparse_activator(activator: ActivatorDecl, depth: int = 1) -> List[str]:
    pad = _INDENT * depth
    lines = [f"{pad}activator {activator.name} : {activator.child} {{"]
    if activator.activation_schema is not None:
        lines.append(pad + _INDENT + "activation schema {")
        lines.append(pad + _INDENT * 2 + _table_schema(activator.activation_schema))
        lines.append(pad + _INDENT + "}")
    if activator.activation_query is not None:
        lines.extend(
            _sql_block("activation query", activator.activation_query.text, depth + 1)
        )
    for filter_query in activator.activation_filters:
        lines.extend(_sql_block("filter activation", filter_query.text, depth + 1))
    lines.extend(_assignment_block("input query", activator.input_query, depth + 1))
    for handler in activator.handlers:
        lines.extend(_unparse_handler(handler, depth + 1))
    lines.append(pad + "}")
    return lines


def _unparse_handler(handler: HandlerDecl, depth: int) -> List[str]:
    pad = _INDENT * depth
    keyword = "return handler" if handler.is_return else "handler"
    lines = [f"{pad}{keyword} {handler.name} {{"]
    if handler.condition is not None:
        lines.extend(_sql_block("condition", handler.condition.text, depth + 1))
    lines.extend(_assignment_block("action", handler.actions, depth + 1))
    lines.append(pad + "}")
    return lines


def _unparse_extension(extension: ActivatorExtension, depth: int = 1) -> List[str]:
    pad = _INDENT * depth
    lines = [f"{pad}extend activator {extension.base_name} {{"]
    if extension.activation_filter is not None:
        lines.extend(
            _sql_block("filter activation", extension.activation_filter.text, depth + 1)
        )
    for handler in extension.handlers:
        lines.extend(_unparse_handler(handler, depth + 1))
    lines.append(pad + "}")
    return lines


def _unparse_punit(punit: PUnitDecl) -> str:
    # The template is raw text up to the balancing brace; emit it verbatim
    # so rendered pages stay byte-identical across the round trip.
    return f"punit {punit.name} for {punit.aunit_name} {{{punit.template}}}"
