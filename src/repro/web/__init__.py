"""The web substrate: request/response objects, cookie sessions, form
decoding, the in-process application container, and the threaded HTTP
front end that serves many simultaneous browsers (``docs/architecture.md``
§ "repro.web"; locking model in ``docs/concurrency.md``)."""

from repro.web.container import BrowserClient, HildaApplication
from repro.web.forms import decode_action, encode_action
from repro.web.http import Request, Response, encode_form, parse_query_string
from repro.web.server import HttpBrowser, ThreadedHildaServer, serve
from repro.web.sessions import SESSION_COOKIE, SessionManager, WebSession

__all__ = [
    "BrowserClient",
    "HildaApplication",
    "HttpBrowser",
    "Request",
    "Response",
    "SESSION_COOKIE",
    "SessionManager",
    "ThreadedHildaServer",
    "WebSession",
    "decode_action",
    "encode_action",
    "encode_form",
    "parse_query_string",
    "serve",
]
