"""The web substrate: request/response objects, cookie sessions, form
decoding and the in-process application container."""

from repro.web.container import BrowserClient, HildaApplication
from repro.web.forms import decode_action, encode_action
from repro.web.http import Request, Response, encode_form, parse_query_string
from repro.web.sessions import SESSION_COOKIE, SessionManager, WebSession

__all__ = [
    "BrowserClient",
    "HildaApplication",
    "Request",
    "Response",
    "SESSION_COOKIE",
    "SessionManager",
    "WebSession",
    "decode_action",
    "encode_action",
    "encode_form",
    "parse_query_string",
]
