"""Decoding of posted forms into Basic AUnit operations.

The default Basic PUnits render forms whose fields follow a simple
convention: a hidden ``instance_id`` plus one field per output column of the
Basic AUnit, named after the column (``c1 .. cn``).  The decoder looks up
the target instance, reads its output schema and coerces each posted string
to the declared column type — this is exactly the impedance-mapping code the
paper complains application developers write by hand; here it is written
once, against the unified relational model.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import FormDecodingError
from repro.relational.types import coerce_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import HildaEngine
    from repro.runtime.instance import AUnitInstance

__all__ = ["decode_action", "encode_action"]


def decode_action(
    engine: "HildaEngine", params: Dict[str, str]
) -> Tuple[int, Optional[List[Any]]]:
    """Decode posted form fields into (instance_id, output row values).

    Raises :class:`FormDecodingError` when the instance id is missing or
    malformed, or a field cannot be coerced to its column type.  A stale
    instance id is *not* an error here — conflict detection is the engine's
    job, so the id is passed through untouched.
    """
    raw_id = params.get("instance_id")
    if raw_id is None:
        raise FormDecodingError("posted form is missing the instance_id field")
    try:
        instance_id = int(raw_id)
    except ValueError:
        raise FormDecodingError(f"instance_id {raw_id!r} is not an integer") from None

    instance = engine.instance(instance_id)
    if instance is None:
        # Let the engine report the conflict; no values can be decoded.
        return instance_id, _raw_values(params)

    output_schema = instance.decl.output_schema.get("output")
    if output_schema is None:
        return instance_id, None

    values: List[Any] = []
    any_field = False
    for column in output_schema.columns:
        raw = params.get(column.name)
        if raw is None:
            values.append(None)
            continue
        any_field = True
        if raw == "":
            values.append("" if column.dtype.value == "string" else None)
            continue
        try:
            values.append(coerce_value(raw, column.dtype))
        except Exception as exc:
            raise FormDecodingError(
                f"field {column.name!r}: cannot interpret {raw!r} as {column.dtype.value}: {exc}"
            ) from exc
    if not any_field:
        return instance_id, None
    return instance_id, values


def _raw_values(params: Dict[str, str]) -> Optional[List[Any]]:
    """Best-effort extraction of c1..cn fields when the instance is unknown."""
    values: List[Any] = []
    index = 1
    while f"c{index}" in params:
        values.append(params[f"c{index}"])
        index += 1
    return values or None


def encode_action(instance: "AUnitInstance", values: Optional[List[Any]] = None) -> Dict[str, Any]:
    """Build the form parameters a browser would post for an action.

    Used by tests and examples to drive the container the way the rendered
    forms would.
    """
    params: Dict[str, Any] = {"instance_id": instance.instance_id}
    if values is None:
        return params
    output_schema = instance.decl.output_schema.get("output")
    names = (
        list(output_schema.column_names)
        if output_schema is not None
        else [f"c{index + 1}" for index in range(len(values))]
    )
    for name, value in zip(names, values):
        params[name] = value
    return params
