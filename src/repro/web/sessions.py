"""Cookie-based web-session management.

The web container maps an opaque cookie token to an engine session (a root
AUnit instance) and the logged-in user.  Logging in starts a new engine
session whose root input ``user`` table holds the user's name — exactly how
CMSRoot receives its input in the paper (authentication itself is external).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SessionError

__all__ = ["WebSession", "SessionManager", "SESSION_COOKIE"]

#: Name of the cookie carrying the web-session token.
SESSION_COOKIE = "hilda_session"


@dataclass
class WebSession:
    """One logged-in browser session."""

    token: str
    user: str
    engine_session_id: str


class SessionManager:
    """Maps cookie tokens to engine sessions."""

    def __init__(self) -> None:
        self._sessions: Dict[str, WebSession] = {}
        self._counter = itertools.count(1)

    def create(self, user: str, engine_session_id: str) -> WebSession:
        token = f"tok{next(self._counter):06d}"
        session = WebSession(token=token, user=user, engine_session_id=engine_session_id)
        self._sessions[token] = session
        return session

    def lookup(self, token: Optional[str]) -> Optional[WebSession]:
        if token is None:
            return None
        return self._sessions.get(token)

    def require(self, token: Optional[str]) -> WebSession:
        session = self.lookup(token)
        if session is None:
            raise SessionError("no active web session; log in first")
        return session

    def destroy(self, token: str) -> Optional[WebSession]:
        return self._sessions.pop(token, None)

    def active_count(self) -> int:
        return len(self._sessions)

    def all_sessions(self) -> Dict[str, WebSession]:
        return dict(self._sessions)
