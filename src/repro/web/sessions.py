"""Cookie-based web-session management.

The web container maps an opaque cookie token to an engine session (a root
AUnit instance) and the logged-in user.  Logging in starts a new engine
session whose root input ``user`` table holds the user's name — exactly how
CMSRoot receives its input in the paper (authentication itself is external).

:class:`SessionManager` is thread-safe (one lock guards the token table) and
bounds its memory on long-running servers two ways, both documented in
``docs/concurrency.md``:

* **expiry** — sessions idle for longer than ``ttl`` seconds are dropped on
  their next lookup and opportunistically whenever a session is created;
* **eviction** — when ``max_sessions`` is set, creating a session beyond the
  limit evicts the least-recently-used one.

Whenever a session is expired or evicted the optional ``on_evict`` callback
receives it, which is how :class:`~repro.web.container.HildaApplication`
closes the underlying engine session and frees its activation tree.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import SessionError

__all__ = ["WebSession", "SessionManager", "SESSION_COOKIE"]

#: Name of the cookie carrying the web-session token.
SESSION_COOKIE = "hilda_session"


@dataclass
class WebSession:
    """One logged-in browser session."""

    token: str
    user: str
    engine_session_id: str
    created_at: float = 0.0
    last_used: float = 0.0


class SessionManager:
    """Maps cookie tokens to engine sessions.

    Parameters
    ----------
    ttl:
        Idle lifetime in seconds; ``None`` (default) disables expiry.
    max_sessions:
        Upper bound on simultaneously-active sessions; creating one past the
        bound evicts the least recently used.  ``None`` disables the bound.
    on_evict:
        Called outside the manager's lock (keep it idempotent) with each
        :class:`WebSession` that is expired or evicted, so the owner can
        release per-session resources such as the engine session.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        ttl: Optional[float] = None,
        max_sessions: Optional[int] = None,
        on_evict: Optional[Callable[[WebSession], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.ttl = ttl
        self.max_sessions = max_sessions
        self.on_evict = on_evict
        self._clock = clock
        self._lock = threading.RLock()
        self._sessions: "OrderedDict[str, WebSession]" = OrderedDict()
        self._counter = itertools.count(1)

    def create(self, user: str, engine_session_id: str) -> WebSession:
        now = self._clock()
        evicted: List[WebSession] = []
        with self._lock:
            evicted.extend(self._expire_locked(now))
            token = f"tok{next(self._counter):06d}"
            session = WebSession(
                token=token,
                user=user,
                engine_session_id=engine_session_id,
                created_at=now,
                last_used=now,
            )
            self._sessions[token] = session
            if self.max_sessions is not None:
                while len(self._sessions) > self.max_sessions:
                    _, oldest = self._sessions.popitem(last=False)
                    evicted.append(oldest)
        self._notify_evicted(evicted)
        return session

    def lookup(self, token: Optional[str]) -> Optional[WebSession]:
        if token is None:
            return None
        now = self._clock()
        with self._lock:
            session = self._sessions.get(token)
            if session is None:
                return None
            if self.ttl is not None and now - session.last_used > self.ttl:
                del self._sessions[token]
                expired = session
            else:
                session.last_used = now
                self._sessions.move_to_end(token)
                return session
        self._notify_evicted([expired])
        return None

    def touch(self, token: Optional[str]) -> bool:
        """Refresh a session's last-seen time without the expiry side effects.

        Used by the cluster router to propagate request receipt times to the
        worker owning the session, so TTL expiry and LRU eviction behave as
        if the worker had served the request directly (docs/cluster.md).
        Returns True when the token was found (and refreshed).
        """
        if token is None:
            return False
        with self._lock:
            session = self._sessions.get(token)
            if session is None:
                return False
            session.last_used = self._clock()
            self._sessions.move_to_end(token)
            return True

    def require(self, token: Optional[str]) -> WebSession:
        session = self.lookup(token)
        if session is None:
            raise SessionError("no active web session; log in first")
        return session

    def destroy(self, token: str) -> Optional[WebSession]:
        with self._lock:
            return self._sessions.pop(token, None)

    def expire_idle(self) -> List[WebSession]:
        """Drop (and report) every session idle past the TTL right now."""
        with self._lock:
            expired = self._expire_locked(self._clock())
        self._notify_evicted(expired)
        return expired

    def active_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def all_sessions(self) -> Dict[str, WebSession]:
        with self._lock:
            return dict(self._sessions)

    # -- internals -------------------------------------------------------------

    def _expire_locked(self, now: float) -> List[WebSession]:
        if self.ttl is None:
            return []
        expired = [
            session
            for session in self._sessions.values()
            if now - session.last_used > self.ttl
        ]
        for session in expired:
            del self._sessions[session.token]
        return expired

    def _notify_evicted(self, sessions: List[WebSession]) -> None:
        if self.on_evict is None:
            return
        for session in sessions:
            try:
                self.on_evict(session)
            except Exception:  # noqa: BLE001 - eviction must never break serving
                pass
