"""A threaded HTTP front end for :class:`~repro.web.container.HildaApplication`.

The paper's generated applications run as Java Servlets inside a web
application server that handles many simultaneous browsers.  This module is
the equivalent front end for the reproduction: a thread-per-connection HTTP
server (stdlib :class:`http.server.ThreadingHTTPServer`, no third-party
dependencies) that translates raw requests into the container's
:class:`~repro.web.http.Request` objects and writes its
:class:`~repro.web.http.Response` objects back to the socket.

Thread safety is the container's and engine's job (reader/writer lock +
per-session lock tables — see ``docs/concurrency.md``); the server simply
lets the OS hand each connection to its own thread.

Two entry points:

* :class:`ThreadedHildaServer` — embed a server in a program or test: binds
  an ephemeral port by default, serves on a background thread, supports
  ``with`` for deterministic shutdown.
* :func:`serve` — run an application in the foreground (examples use it via
  ``ThreadedHildaServer`` so they can shut down cleanly).

:class:`HttpBrowser` is the socket-level twin of
:class:`~repro.web.container.BrowserClient`: a cookie-carrying client built
on :mod:`urllib.request` used by the load benchmark, the server tests and
the examples to emulate real browsers against a live server.
"""

from __future__ import annotations

import os
import socket
import threading
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from repro.config import ClusterConfig, ServerConfig, coalesce_legacy_kwargs
from repro.errors import ConfigError
from repro.web.container import HildaApplication
from repro.web.http import (
    Request,
    Response,
    encode_form,
    format_set_cookie,
    parse_cookie_header,
    parse_query_string,
)

__all__ = ["ThreadedHildaServer", "HttpBrowser", "serve", "SERVER_MODE_ENV_VAR"]

#: Environment override for the serving topology.  ``REPRO_SERVER_MODE=cluster``
#: makes every :class:`ThreadedHildaServer` without an explicit
#: ``ServerConfig.cluster`` mount its application behind an in-process
#: two-worker cluster router (thread model, real sockets) — the lever the
#: ``tier1-cluster`` CI leg uses to run the ordinary web suites through the
#: cluster path, mirroring ``REPRO_STORAGE_BACKEND`` for storage.
SERVER_MODE_ENV_VAR = "REPRO_SERVER_MODE"


class _HildaRequestHandler(BaseHTTPRequestHandler):
    """Translates one HTTP exchange to a container ``handle`` call."""

    #: Set by the server factory.
    application: HildaApplication = None  # type: ignore[assignment]
    server_version = "HildaServer/0.1"
    protocol_version = "HTTP/1.1"

    # -- verbs -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming convention
        parsed = urllib.parse.urlsplit(self.path)
        request = Request(
            method="GET",
            path=parsed.path or "/",
            params=parse_query_string(parsed.query),
            cookies=self._cookies(),
        )
        self._reply(self.application.handle(request))

    def do_POST(self) -> None:  # noqa: N802 - http.server naming convention
        parsed = urllib.parse.urlsplit(self.path)
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        body = self.rfile.read(length).decode("utf-8") if length else ""
        params = parse_query_string(parsed.query)
        params.update(parse_query_string(body))
        request = Request(
            method="POST",
            path=parsed.path or "/",
            params=params,
            cookies=self._cookies(),
            body=body,
        )
        self._reply(self.application.handle(request))

    # -- plumbing ---------------------------------------------------------------

    def _cookies(self) -> Dict[str, str]:
        return parse_cookie_header(self.headers.get("Cookie", ""))

    def _reply(self, response: Response) -> None:
        payload = response.body.encode("utf-8")
        self.send_response(response.status)
        for name, value in response.headers.items():
            self.send_header(name, value)
        for name, value in response.set_cookies.items():
            self.send_header("Set-Cookie", format_set_cookie(name, value))
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class _ThreadingServer(ThreadingHTTPServer):
    daemon_threads = True
    #: http.server's default listen backlog of 5 drops SYNs under a burst of
    #: simultaneous browsers; the kernel's 1s retransmit then serialises the
    #: herd.  A deeper backlog lets all concurrent connects land at once.
    #: Overridden per instance from :class:`ServerConfig`.
    request_queue_size = 128

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        # With HTTP/1.1 keep-alive an idle browser parks a handler thread in
        # a blocking read that ``shutdown()`` never interrupts.  Track every
        # in-flight connection so close_all_connections() can wake those
        # readers deterministically at shutdown.
        self._open_lock = threading.Lock()
        self._open_requests: Dict[int, socket.socket] = {}
        self._closing = False

    def process_request(self, request: socket.socket, client_address: Any) -> None:
        with self._open_lock:
            self._open_requests[id(request)] = request
        super().process_request(request, client_address)

    def shutdown_request(self, request: socket.socket) -> None:  # type: ignore[override]
        with self._open_lock:
            self._open_requests.pop(id(request), None)
        super().shutdown_request(request)

    def close_all_connections(self) -> None:
        """Wake every parked keep-alive reader so its thread can exit.

        ``socket.shutdown`` makes the blocked read return EOF; the handler
        thread then runs its normal ``shutdown_request`` path and closes the
        socket itself, so no fd is closed under a reader.
        """
        with self._open_lock:
            self._closing = True
            connections = list(self._open_requests.values())
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def handle_error(self, request: Any, client_address: Any) -> None:
        if self._closing:
            return  # expected: writes racing the deliberate connection close
        super().handle_error(request, client_address)


def _coalesce_server_config(
    owner: str,
    config: Optional[ServerConfig],
    legacy_options: Dict[str, Any],
    default: Optional[ServerConfig] = None,
) -> ServerConfig:
    """Resolve a :class:`ServerConfig` plus any deprecated host/port/verbose
    kwargs (each warning once per process)."""
    if isinstance(config, str):
        # Old positional signature: (application, host, port, verbose) —
        # the host string landed in the config slot and any further
        # positional values slid one slot right.  Recover them by type
        # (port is a non-bool int, verbose a bool; keyword-passed values
        # are already in the right slot), then let the legacy shim warn.
        host = legacy_options.get("host")
        port = legacy_options.get("port")
        legacy_options = {
            "host": config,
            "port": host if isinstance(host, int) and not isinstance(host, bool) else port,
            "verbose": port if isinstance(port, bool) else legacy_options.get("verbose"),
        }
        config = None
    if config is not None and not isinstance(config, ServerConfig):
        raise ConfigError(f"{owner}(config=...) must be a ServerConfig, got {config!r}")
    resolved = config if config is not None else (default or ServerConfig())
    legacy = {key: value for key, value in legacy_options.items() if value is not None}
    if legacy:
        translated = coalesce_legacy_kwargs(
            owner,
            legacy,
            {"host": "config.host", "port": "config.port", "verbose": "config.verbose"},
        )
        resolved = replace(
            resolved,
            **{dotted.partition(".")[2]: value for dotted, value in translated.items()},
        )
    return resolved


class ThreadedHildaServer:
    """Serve a :class:`HildaApplication` over real sockets, one thread per
    connection.

    >>> server = ThreadedHildaServer(application)   # binds 127.0.0.1:<ephemeral>
    >>> with server:                                # starts the acceptor thread
    ...     browser = HttpBrowser(server.url)
    ...     browser.login("alice")

    ``config`` is a typed :class:`~repro.config.ServerConfig` (binding,
    backlog, logging); the pre-config ``host=``/``port=``/``verbose=``
    kwargs are still accepted with a one-time ``DeprecationWarning`` each.
    """

    def __init__(
        self,
        application: HildaApplication,
        config: Optional[ServerConfig] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        verbose: Optional[bool] = None,
    ) -> None:
        config = _coalesce_server_config(
            "ThreadedHildaServer",
            config,
            {"host": host, "port": port, "verbose": verbose},
        )
        self.application = application
        self.config = config
        #: What the HTTP handlers actually call: the application itself, or a
        #: cluster router mounted in front of it (``ServerConfig.cluster``
        #: with the thread process model, or ``REPRO_SERVER_MODE=cluster``).
        self.mounted, self._close_cluster = self._mount_cluster(application, config)
        handler = type(
            "BoundHildaRequestHandler",
            (_HildaRequestHandler,),
            {"application": self.mounted},
        )
        # The backlog is consulted inside __init__ (at listen()), so it must
        # be a class attribute before construction.
        server_cls = type(
            "BoundThreadingServer",
            (_ThreadingServer,),
            {"request_queue_size": config.request_queue_size},
        )
        self._httpd = server_cls((config.host, config.port), handler)
        self._httpd.verbose = config.verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle --------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) the server is bound to (port resolved if 0)."""
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ThreadedHildaServer":
        """Start accepting connections on a daemon thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"hilda-server-{self.address[1]}",
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting connections and join the acceptor thread.

        Deterministic even with idle keep-alive browsers attached: after the
        accept loop stops, every in-flight connection is woken (see
        ``_ThreadingServer.close_all_connections``) so no parked reader
        thread outlives the server or holds its socket open.
        """
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._httpd.close_all_connections()
        self._thread.join(timeout=5)
        self._httpd.server_close()
        self._thread = None
        if self._close_cluster is not None:
            self._close_cluster()
            self._close_cluster = None

    @staticmethod
    def _mount_cluster(
        application: HildaApplication, config: ServerConfig
    ) -> Tuple[Any, Optional[Callable[[], None]]]:
        """Resolve what to serve: the app, or a cluster router over it."""
        cluster = config.cluster
        if not isinstance(application, HildaApplication):
            # Already a router (ClusterServer mounts one) or a test double.
            return application, None
        if cluster is None:
            mode = os.environ.get(SERVER_MODE_ENV_VAR, "").strip().lower()
            if mode == "cluster":
                cluster = ClusterConfig(workers=2, process_model="thread")
            else:
                return application, None
        if cluster.process_model != "thread":
            raise ConfigError(
                "ThreadedHildaServer can only mount thread-model clusters over "
                "a built application; fork-model workers build their own "
                "engines — use repro.cluster.ClusterServer (or serve(...) "
                "with ServerConfig(cluster=ClusterConfig(process_model='fork')))"
            )
        from repro.cluster.server import build_thread_cluster

        return build_thread_cluster(application, cluster)

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (foreground mode)."""
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.close_all_connections()
            self._httpd.server_close()
            if self._close_cluster is not None:
                self._close_cluster()
                self._close_cluster = None

    def __enter__(self) -> "ThreadedHildaServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


def serve(
    application: HildaApplication,
    config: Optional[ServerConfig] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    verbose: Optional[bool] = None,
) -> None:
    """Run ``application`` in the foreground (Ctrl-C to stop).

    ``config`` defaults to :meth:`ServerConfig.foreground` (port 8080,
    request logging on); the legacy ``host=``/``port=``/``verbose=`` kwargs
    keep working with a one-time ``DeprecationWarning`` each.
    """
    config = _coalesce_server_config(
        "serve",
        config,
        {"host": host, "port": port, "verbose": verbose},
        default=ServerConfig.foreground(),
    )
    server = ThreadedHildaServer(application, config=config)
    print(f"Serving {application.program.root_name} on {server.url}")
    server.serve_forever()


class _NoRedirectHandler(urllib.request.HTTPRedirectHandler):
    """Stop urllib from chasing redirects itself.

    The browser must see every 3xx response: the login redirect carries the
    session Set-Cookie, which urllib's automatic redirect would silently
    drop before following.
    """

    def redirect_request(self, *args: Any, **kwargs: Any) -> None:
        return None


class HttpBrowser:
    """A cookie-carrying HTTP client for driving a live Hilda server.

    The socket-level twin of :class:`~repro.web.container.BrowserClient`:
    keeps cookies between requests, follows redirects (after absorbing
    their cookies), and returns the container's
    :class:`~repro.web.http.Response` shape (status, body, headers) so
    tests can assert the same way against both.
    """

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.cookies: Dict[str, str] = {}
        self._opener = urllib.request.build_opener(_NoRedirectHandler)

    # -- public API -------------------------------------------------------------

    def get(self, path: str, follow_redirects: bool = True) -> Response:
        return self._request("GET", path, None, follow_redirects)

    def post(
        self, path: str, params: Dict[str, Any], follow_redirects: bool = True
    ) -> Response:
        body = encode_form(params).encode("utf-8")
        return self._request("POST", path, body, follow_redirects)

    def login(self, user: str) -> Response:
        return self.get(f"/login?user={urllib.parse.quote(user)}")

    def logout(self) -> Response:
        return self.get("/logout", follow_redirects=False)

    # -- internals --------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[bytes], follow_redirects: bool
    ) -> Response:
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method
        )
        if self.cookies:
            request.add_header(
                "Cookie", "; ".join(f"{k}={v}" for k, v in self.cookies.items())
            )
        if body is not None:
            request.add_header("Content-Type", "application/x-www-form-urlencoded")
        try:
            raw = self._opener.open(request, timeout=self.timeout)
            status = raw.status
        except urllib.error.HTTPError as error:  # 3xx/4xx/5xx still carry a body
            raw = error
            status = error.code
        with raw:
            headers = dict(raw.headers.items())
            for value in raw.headers.get_all("Set-Cookie") or []:
                first = value.split(";", 1)[0]
                if "=" in first:
                    name, _, cookie_value = first.partition("=")
                    self.cookies[name.strip()] = cookie_value.strip()
            payload = raw.read().decode("utf-8")
        response = Response(status=status, body=payload, headers=headers)
        if follow_redirects and response.is_redirect and response.location:
            return self.get(response.location, follow_redirects=True)
        return response
