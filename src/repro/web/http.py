"""Minimal HTTP request/response objects for the application container.

The paper's generated applications run as Java Servlets inside a web
application server.  This module provides the equivalent substrate in
process: :class:`Request` and :class:`Response` objects that the container
handles directly (examples and tests drive it programmatically), plus
query-string helpers.  No sockets are involved, which keeps everything
deterministic and offline.
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Request",
    "Response",
    "encode_form",
    "format_set_cookie",
    "parse_cookie_header",
    "parse_query_string",
]


def parse_query_string(query: str) -> Dict[str, str]:
    """Parse ``a=1&b=2`` into a dict (last value wins for duplicates)."""
    parsed = urllib.parse.parse_qs(query, keep_blank_values=True)
    return {key: values[-1] for key, values in parsed.items()}


def parse_cookie_header(header: str) -> Dict[str, str]:
    """Parse a ``Cookie:`` header (``a=1; b=2``) into a dict."""
    cookies: Dict[str, str] = {}
    for part in header.split(";"):
        if "=" in part:
            name, _, value = part.strip().partition("=")
            cookies[name] = value
    return cookies


def format_set_cookie(name: str, value: str) -> str:
    """Render one ``Set-Cookie:`` header value the way the app issues them."""
    return f"{name}={value}; Path=/"


def encode_form(params: Dict[str, Any]) -> str:
    """Encode a dict as an ``application/x-www-form-urlencoded`` body."""
    return urllib.parse.urlencode({key: "" if value is None else value for key, value in params.items()})


@dataclass
class Request:
    """An incoming HTTP request."""

    method: str = "GET"
    path: str = "/"
    params: Dict[str, str] = field(default_factory=dict)
    cookies: Dict[str, str] = field(default_factory=dict)
    body: str = ""

    @classmethod
    def get(cls, path: str, cookies: Optional[Dict[str, str]] = None) -> "Request":
        """Build a GET request from a path that may include a query string."""
        parsed = urllib.parse.urlsplit(path)
        return cls(
            method="GET",
            path=parsed.path or "/",
            params=parse_query_string(parsed.query),
            cookies=dict(cookies or {}),
        )

    @classmethod
    def post(
        cls,
        path: str,
        params: Dict[str, Any],
        cookies: Optional[Dict[str, str]] = None,
    ) -> "Request":
        """Build a form POST request."""
        return cls(
            method="POST",
            path=path,
            params={key: "" if value is None else str(value) for key, value in params.items()},
            cookies=dict(cookies or {}),
            body=encode_form(params),
        )

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.params.get(name, default)


@dataclass
class Response:
    """An outgoing HTTP response."""

    status: int = 200
    body: str = ""
    headers: Dict[str, str] = field(default_factory=lambda: {"Content-Type": "text/html; charset=utf-8"})
    set_cookies: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307)

    @property
    def location(self) -> Optional[str]:
        return self.headers.get("Location")

    @classmethod
    def redirect(cls, location: str, set_cookies: Optional[Dict[str, str]] = None) -> "Response":
        return cls(
            status=302,
            body="",
            headers={"Location": location, "Content-Type": "text/html; charset=utf-8"},
            set_cookies=dict(set_cookies or {}),
        )

    @classmethod
    def not_found(cls, message: str = "not found") -> "Response":
        return cls(status=404, body=f"<h1>404</h1><p>{message}</p>")

    @classmethod
    def error(cls, message: str, status: int = 500) -> "Response":
        return cls(status=status, body=f"<h1>Error</h1><p>{message}</p>")
