"""The application container ("application server").

:class:`HildaApplication` serves a Hilda program over the in-process HTTP
substrate: it owns a :class:`~repro.runtime.engine.HildaEngine`, a
:class:`~repro.presentation.renderer.PageRenderer` and a
:class:`~repro.web.sessions.SessionManager`, and handles the three routes a
generated three-tier application needs:

* ``GET /login?user=<name>`` — start an engine session for the user, set the
  session cookie and redirect to ``/``;
* ``GET /`` — render the user's page (the root AUnit instance's HTML);
* ``POST /action`` — decode the posted Basic AUnit form, apply the operation
  (conflict detection included) and re-render the page, reporting conflicts;
* ``GET /logout`` — close the session.

The container is **thread-safe** and is what the threaded HTTP front end
(:mod:`repro.web.server`) mounts: the engine's reader/writer lock makes page
renders shared and actions exclusive, and a per-cookie lock table serialises
requests belonging to one browser session (double-submits cannot
interleave).  See ``docs/concurrency.md`` for the full locking model and
``docs/architecture.md`` for the request lifecycle.

A tiny WSGI adapter is provided so the application can also be mounted in
any standard Python web server; tests and examples either call
:meth:`handle` directly or go over real sockets via
:class:`~repro.web.server.ThreadedHildaServer`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import FormDecodingError, SessionError
from repro.hilda.program import HildaProgram
from repro.presentation.renderer import PageRenderer
from repro.presentation.html import escape, tag
from repro.runtime.concurrency import SessionLockTable
from repro.runtime.engine import HildaEngine
from repro.runtime.operations import ApplyResult, OperationStatus
from repro.web.forms import decode_action
from repro.web.http import (
    Request,
    Response,
    format_set_cookie,
    parse_cookie_header,
    parse_query_string,
)
from repro.web.sessions import SESSION_COOKIE, SessionManager, WebSession

__all__ = ["HildaApplication", "BrowserClient"]


class HildaApplication:
    """Serves one Hilda program to many users.

    Parameters
    ----------
    cache_fragments:
        Cache rendered HTML fragments between requests.  **On by default**
        for the server path: with dependency-tracked invalidation (see
        ``docs/caching.md``) a cached fragment is reused exactly while the
        tables its subtree reads are unchanged, so serving read-mostly
        traffic from the cache is safe.
    session_ttl:
        Idle web-session lifetime in seconds (``None`` = sessions never
        expire); expired sessions release their engine session.
    max_sessions:
        Bound on simultaneous web sessions; the least-recently-used session
        is evicted (and its engine session closed) past the bound.
    fragment_cache_size:
        Bound on the renderer's fragment cache in entries (None = the
        renderer default; LRU eviction past the bound).
    activation_cache_size:
        Bound on the engine's activation-query cache in entries (None = the
        engine default); only applied when the container builds the engine.
    engine_options:
        Passed through to :class:`~repro.runtime.engine.HildaEngine` when no
        ``engine`` is supplied.  The server path turns
        ``cache_activation_queries`` on unless explicitly overridden.
    """

    def __init__(
        self,
        program: HildaProgram,
        engine: Optional[HildaEngine] = None,
        cache_fragments: bool = True,
        session_ttl: Optional[float] = None,
        max_sessions: Optional[int] = None,
        fragment_cache_size: Optional[int] = None,
        activation_cache_size: Optional[int] = None,
        **engine_options: Any,
    ) -> None:
        self.program = program
        if engine is None:
            engine_options.setdefault("cache_activation_queries", True)
            if activation_cache_size is not None:
                engine_options.setdefault("activation_cache_size", activation_cache_size)
            engine = HildaEngine(program, **engine_options)
        self.engine = engine
        renderer_options: Dict[str, Any] = {}
        if fragment_cache_size is not None:
            renderer_options["fragment_cache_size"] = fragment_cache_size
        self.renderer = PageRenderer(
            self.engine, cache_fragments=cache_fragments, **renderer_options
        )
        self.sessions = SessionManager(
            ttl=session_ttl, max_sessions=max_sessions, on_evict=self._release_session
        )
        #: One lock per cookie token: requests of the same browser session
        #: are handled one at a time; different sessions run concurrently.
        self._request_locks = SessionLockTable()

    # -- request handling -------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Route and handle one request (safe to call from many threads)."""
        token = request.cookies.get(SESSION_COOKIE)
        if token is None:
            return self._route(request)
        with self._request_locks.holding(token):
            return self._route(request)

    def _route(self, request: Request) -> Response:
        if request.path == "/login":
            return self._handle_login(request)
        if request.path == "/logout":
            return self._handle_logout(request)
        if request.path == "/action" and request.method == "POST":
            return self._handle_action(request)
        if request.path == "/":
            return self._handle_page(request)
        return Response.not_found(f"no route for {request.method} {request.path}")

    def _release_session(self, session: WebSession) -> None:
        """Close the engine session behind an expired/evicted web session."""
        self._request_locks.discard(session.token)
        try:
            self.engine.close_session(session.engine_session_id)
        except SessionError:
            pass

    # -- routes ---------------------------------------------------------------------

    def _handle_login(self, request: Request) -> Response:
        user = request.param("user")
        if not user:
            return Response.error("login requires a ?user=<name> parameter", status=400)
        engine_session = self.engine.start_session({"user": [(user,)]})
        session = self.sessions.create(user, engine_session)
        return Response.redirect("/", set_cookies={SESSION_COOKIE: session.token})

    def _handle_logout(self, request: Request) -> Response:
        token = request.cookies.get(SESSION_COOKIE)
        session = self.sessions.lookup(token)
        if session is not None:
            self.sessions.destroy(session.token)
            self._release_session(session)
        return Response.redirect("/login")

    def _handle_page(self, request: Request, banner: str = "") -> Response:
        try:
            session = self.sessions.require(request.cookies.get(SESSION_COOKIE))
            page = self.renderer.render_session(session.engine_session_id)
        except SessionError:
            # Either no web session, or the engine session vanished between
            # the cookie check and the render (TTL expiry / LRU eviction can
            # close it out from under a request in flight) — re-login.
            return Response.redirect("/login")
        if banner:
            page = page.replace("<body>", "<body>" + banner, 1)
        return Response(status=200, body=page)

    def _handle_action(self, request: Request) -> Response:
        try:
            session = self.sessions.require(request.cookies.get(SESSION_COOKIE))
        except SessionError:
            return Response.redirect("/login")
        try:
            instance_id, values = decode_action(self.engine, request.params)
        except FormDecodingError as exc:
            return self._handle_page(request, banner=_banner(str(exc), kind="error"))
        result = self.engine.perform(instance_id, values)
        return self._handle_page(request, banner=_result_banner(result))

    # -- WSGI adapter ------------------------------------------------------------------

    def wsgi_app(self, environ: Dict[str, Any], start_response: Callable) -> Iterable[bytes]:
        """A minimal WSGI adapter (mount the application in any WSGI server)."""
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        params = parse_query_string(environ.get("QUERY_STRING", ""))
        if method == "POST":
            try:
                length = int(environ.get("CONTENT_LENGTH") or 0)
            except ValueError:
                length = 0
            body = environ["wsgi.input"].read(length).decode("utf-8") if length else ""
            params.update(parse_query_string(body))
        cookies = parse_cookie_header(environ.get("HTTP_COOKIE", ""))
        response = self.handle(
            Request(method=method, path=path, params=params, cookies=cookies)
        )
        headers = list(response.headers.items())
        for name, value in response.set_cookies.items():
            headers.append(("Set-Cookie", format_set_cookie(name, value)))
        start_response(f"{response.status} {'OK' if response.ok else 'ERR'}", headers)
        return [response.body.encode("utf-8")]


def _banner(message: str, kind: str = "info") -> str:
    return tag("div", escape(message), **{"class": f"hilda-banner hilda-{kind}"})


def _result_banner(result: ApplyResult) -> str:
    if result.status == OperationStatus.APPLIED:
        fired = ", ".join(str(handler) for handler in result.handlers)
        return _banner(f"Action applied ({fired})", kind="success")
    if result.status == OperationStatus.CONFLICT:
        return _banner(
            "Your action could not be performed because the application state changed: "
            + result.message,
            kind="conflict",
        )
    if result.status == OperationStatus.NO_HANDLER:
        return _banner("Nothing to do for this action.", kind="info")
    return _banner(result.message or "The action was rejected.", kind="error")


class BrowserClient:
    """A tiny cookie-carrying client for driving a :class:`HildaApplication`.

    Used by the examples and integration tests to emulate a browser: it keeps
    the session cookie between requests and follows redirects.
    """

    def __init__(self, application: HildaApplication) -> None:
        self.application = application
        self.cookies: Dict[str, str] = {}

    def get(self, path: str, follow_redirects: bool = True) -> Response:
        response = self.application.handle(Request.get(path, cookies=self.cookies))
        self._absorb_cookies(response)
        if follow_redirects and response.is_redirect and response.location:
            return self.get(response.location, follow_redirects=follow_redirects)
        return response

    def post(self, path: str, params: Dict[str, Any], follow_redirects: bool = True) -> Response:
        response = self.application.handle(Request.post(path, params, cookies=self.cookies))
        self._absorb_cookies(response)
        if follow_redirects and response.is_redirect and response.location:
            return self.get(response.location, follow_redirects=follow_redirects)
        return response

    def login(self, user: str) -> Response:
        return self.get(f"/login?user={user}")

    def _absorb_cookies(self, response: Response) -> None:
        self.cookies.update(response.set_cookies)
