"""The application container ("application server").

:class:`HildaApplication` serves a Hilda program over the in-process HTTP
substrate: it owns a :class:`~repro.runtime.engine.HildaEngine`, a
:class:`~repro.presentation.renderer.PageRenderer` and a
:class:`~repro.web.sessions.SessionManager`, and handles the three routes a
generated three-tier application needs:

* ``GET /login?user=<name>`` — start an engine session for the user, set the
  session cookie and redirect to ``/``;
* ``GET /`` — render the user's page (the root AUnit instance's HTML);
* ``POST /action`` — decode the posted Basic AUnit form, apply the operation
  (conflict detection included) and re-render the page, reporting conflicts;
* ``GET /logout`` — close the session.

The container is **thread-safe** and is what the threaded HTTP front end
(:mod:`repro.web.server`) mounts: the engine's reader/writer lock makes page
renders shared and actions exclusive, and a per-cookie lock table serialises
requests belonging to one browser session (double-submits cannot
interleave).  See ``docs/concurrency.md`` for the full locking model and
``docs/architecture.md`` for the request lifecycle.

A tiny WSGI adapter is provided so the application can also be mounted in
any standard Python web server; tests and examples either call
:meth:`handle` directly or go over real sockets via
:class:`~repro.web.server.ThreadedHildaServer`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.config import (
    CacheConfig,
    EngineConfig,
    SessionConfig,
    coalesce_legacy_kwargs,
)
from repro.errors import ConfigError, FormDecodingError, SessionError
from repro.hilda.program import HildaProgram
from repro.presentation.renderer import PageRenderer
from repro.presentation.html import escape, tag
from repro.runtime.concurrency import SessionLockTable
from repro.runtime.engine import HildaEngine
from repro.runtime.operations import ApplyResult, OperationStatus
from repro.web.forms import decode_action
from repro.web.http import (
    Request,
    Response,
    format_set_cookie,
    parse_cookie_header,
    parse_query_string,
)
from repro.web.sessions import SESSION_COOKIE, SessionManager, WebSession

__all__ = ["HildaApplication", "BrowserClient"]


class HildaApplication:
    """Serves one Hilda program to many users.

    Parameters
    ----------
    engine:
        An already-built :class:`~repro.runtime.engine.HildaEngine` to
        mount; by default the container builds one from ``config``.
    config:
        A typed :class:`~repro.config.EngineConfig` used when the container
        builds the engine.  Its ``cache`` is superseded by the ``cache``
        parameter below.
    cache:
        The caching policy (:class:`~repro.config.CacheConfig`) for both
        the engine it builds and the page renderer.  Defaults to
        :meth:`CacheConfig.server_defaults` — activation-query *and*
        fragment caching on: with dependency-tracked invalidation (see
        ``docs/caching.md``) a cached fragment is reused exactly while the
        tables its subtree reads are unchanged, so serving read-mostly
        traffic from the caches is safe.
    sessions:
        Web-session policy (:class:`~repro.config.SessionConfig`): idle
        TTL (expired sessions release their engine session) and a bound on
        simultaneous sessions (LRU eviction past it).
    functions:
        Scalar function registry forwarded to the engine the container
        builds.
    **legacy_options:
        The pre-config keyword arguments (``cache_fragments=...``,
        ``session_ttl=...``, ``max_sessions=...``,
        ``fragment_cache_size=...``, ``activation_cache_size=...`` and
        every legacy :class:`HildaEngine` kwarg) are still accepted and
        merged onto the configs, each emitting a ``DeprecationWarning``
        once per process.  See ``docs/api.md`` for the migration table.
    """

    #: Legacy container kwargs -> the config fields replacing them.
    LEGACY_KWARGS = {
        "cache_fragments": "cache.fragments",
        "fragment_cache_size": "cache.fragment_cache_size",
        "activation_cache_size": "cache.activation_cache_size",
        "session_ttl": "sessions.ttl",
        "max_sessions": "sessions.max_sessions",
        "cache_activation_queries": "cache.activation_queries",
        "dependency_tracking": "cache.dependency_tracking",
        "delta_reactivation": "cache.delta_reactivation",
        "optimize": "config.optimize",
        "auto_index": "config.auto_index",
        "compile_expressions": "config.compile_expressions",
        "reactivation": "config.reactivation",
        "record_history": "config.record_history",
    }

    def __init__(
        self,
        program: HildaProgram,
        engine: Optional[HildaEngine] = None,
        config: Optional[EngineConfig] = None,
        cache: Optional[CacheConfig] = None,
        sessions: Optional[SessionConfig] = None,
        functions: Optional[Any] = None,
        **legacy_options: Any,
    ) -> None:
        self.program = program
        config, cache, sessions = self._coalesce_configs(
            config, cache, sessions, legacy_options
        )
        self.config = config
        self.cache_config = cache
        self.session_config = sessions
        if engine is None:
            engine = HildaEngine(program, functions=functions, config=config)
        self.engine = engine
        self.renderer = PageRenderer(
            self.engine,
            cache_fragments=cache.fragments,
            fragment_cache_size=cache.fragment_cache_size,
        )
        self.sessions = SessionManager(
            ttl=sessions.ttl,
            max_sessions=sessions.max_sessions,
            on_evict=self._release_session,
        )
        #: One lock per cookie token: requests of the same browser session
        #: are handled one at a time; different sessions run concurrently.
        self._request_locks = SessionLockTable()

    # -- configuration plumbing -------------------------------------------------

    @staticmethod
    def _coalesce_configs(
        config: Optional[EngineConfig],
        cache: Optional[CacheConfig],
        sessions: Optional[SessionConfig],
        legacy_options: Dict[str, Any],
    ) -> Tuple[EngineConfig, CacheConfig, SessionConfig]:
        """Resolve the typed configs plus any deprecated keyword arguments.

        Precedence for the caching policy: the ``cache`` parameter wins;
        otherwise a ``config.cache`` explicitly different from the plain
        :class:`CacheConfig` defaults is honoured; otherwise the container
        applies :meth:`CacheConfig.server_defaults` (both caches on) — so
        passing ``config=EngineConfig(auto_index=True)`` does *not*
        silently disable the server caches.  Legacy kwargs are then
        layered on top, warning once each.
        """
        for name, value, expected in (
            ("config", config, EngineConfig),
            ("cache", cache, CacheConfig),
            ("sessions", sessions, SessionConfig),
        ):
            if value is not None and not isinstance(value, expected):
                raise ConfigError(
                    f"HildaApplication({name}=...) must be a {expected.__name__}, "
                    f"got {value!r}"
                )
        if cache is not None:
            effective_cache = cache
        elif config is not None and config.cache != CacheConfig():
            effective_cache = config.cache
        else:
            effective_cache = CacheConfig.server_defaults()
        engine_config = config if config is not None else EngineConfig()
        session_config = sessions if sessions is not None else SessionConfig()
        if legacy_options:
            translated = coalesce_legacy_kwargs(
                "HildaApplication", legacy_options, HildaApplication.LEGACY_KWARGS
            )
            updates: Dict[str, Dict[str, Any]] = {"cache": {}, "config": {}, "sessions": {}}
            for dotted, value in translated.items():
                scope, _, field_name = dotted.partition(".")
                if value is None and field_name in (
                    "fragment_cache_size",
                    "activation_cache_size",
                ):
                    # The legacy kwargs used None for "keep the default
                    # bound"; in CacheConfig None means unbounded.
                    continue
                updates[scope][field_name] = value
            if updates["cache"]:
                effective_cache = replace(effective_cache, **updates["cache"])
            if updates["config"]:
                engine_config = replace(engine_config, **updates["config"])
            if updates["sessions"]:
                session_config = replace(session_config, **updates["sessions"])
        engine_config = replace(engine_config, cache=effective_cache)
        return engine_config, effective_cache, session_config

    # -- request handling -------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Route and handle one request (safe to call from many threads)."""
        token = request.cookies.get(SESSION_COOKIE)
        if token is None:
            return self._route(request)
        with self._request_locks.holding(token):
            return self._route(request)

    def _route(self, request: Request) -> Response:
        if request.path == "/login":
            return self._handle_login(request)
        if request.path == "/logout":
            return self._handle_logout(request)
        if request.path == "/action" and request.method == "POST":
            return self._handle_action(request)
        if request.path == "/":
            return self._handle_page(request)
        return Response.not_found(f"no route for {request.method} {request.path}")

    def close(self) -> None:
        """Shut the application down: flush the engine's storage backend.

        With a WAL backend (``EngineConfig.storage``) this makes every
        committed transaction durable; a new container built over the same
        data directory resumes serving the same application state (web
        sessions are volatile and expire — see ``docs/storage.md``).
        """
        self.engine.close()

    def _release_session(self, session: WebSession) -> None:
        """Close the engine session behind an expired/evicted web session."""
        self._request_locks.discard(session.token)
        try:
            self.engine.close_session(session.engine_session_id)
        except SessionError:
            pass

    # -- routes ---------------------------------------------------------------------

    def _handle_login(self, request: Request) -> Response:
        user = request.param("user")
        if not user:
            return Response.error("login requires a ?user=<name> parameter", status=400)
        # The cluster router pins each login to a globally-ordered engine
        # session id (``_cluster_session=S<n>``) so that, combined with
        # ``EngineConfig.session_scoped_ids``, a sharded deployment allocates
        # the exact ids a single-process server would (docs/cluster.md).
        hinted = request.param("_cluster_session")
        engine_session = self.engine.start_session(
            {"user": [(user,)]}, session_id=hinted or None
        )
        session = self.sessions.create(user, engine_session)
        return Response.redirect("/", set_cookies={SESSION_COOKIE: session.token})

    def _handle_logout(self, request: Request) -> Response:
        token = request.cookies.get(SESSION_COOKIE)
        session = self.sessions.lookup(token)
        if session is not None:
            self.sessions.destroy(session.token)
            self._release_session(session)
        return Response.redirect("/login")

    def _handle_page(self, request: Request, banner: str = "") -> Response:
        try:
            session = self.sessions.require(request.cookies.get(SESSION_COOKIE))
            page = self.renderer.render_session(session.engine_session_id)
        except SessionError:
            # Either no web session, or the engine session vanished between
            # the cookie check and the render (TTL expiry / LRU eviction can
            # close it out from under a request in flight) — re-login.
            return Response.redirect("/login")
        if banner:
            page = page.replace("<body>", "<body>" + banner, 1)
        return Response(status=200, body=page)

    def _handle_action(self, request: Request) -> Response:
        try:
            session = self.sessions.require(request.cookies.get(SESSION_COOKIE))
        except SessionError:
            return Response.redirect("/login")
        try:
            instance_id, values = decode_action(self.engine, request.params)
        except FormDecodingError as exc:
            return self._handle_page(request, banner=_banner(str(exc), kind="error"))
        result = self.engine.perform(instance_id, values)
        return self._handle_page(request, banner=_result_banner(result))

    # -- WSGI adapter ------------------------------------------------------------------

    def wsgi_app(self, environ: Dict[str, Any], start_response: Callable) -> Iterable[bytes]:
        """A minimal WSGI adapter (mount the application in any WSGI server)."""
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        params = parse_query_string(environ.get("QUERY_STRING", ""))
        if method == "POST":
            try:
                length = int(environ.get("CONTENT_LENGTH") or 0)
            except ValueError:
                length = 0
            body = environ["wsgi.input"].read(length).decode("utf-8") if length else ""
            params.update(parse_query_string(body))
        cookies = parse_cookie_header(environ.get("HTTP_COOKIE", ""))
        response = self.handle(
            Request(method=method, path=path, params=params, cookies=cookies)
        )
        headers = list(response.headers.items())
        for name, value in response.set_cookies.items():
            headers.append(("Set-Cookie", format_set_cookie(name, value)))
        start_response(f"{response.status} {'OK' if response.ok else 'ERR'}", headers)
        return [response.body.encode("utf-8")]


def _banner(message: str, kind: str = "info") -> str:
    return tag("div", escape(message), **{"class": f"hilda-banner hilda-{kind}"})


def _result_banner(result: ApplyResult) -> str:
    if result.status == OperationStatus.APPLIED:
        fired = ", ".join(str(handler) for handler in result.handlers)
        return _banner(f"Action applied ({fired})", kind="success")
    if result.status == OperationStatus.CONFLICT:
        return _banner(
            "Your action could not be performed because the application state changed: "
            + result.message,
            kind="conflict",
        )
    if result.status == OperationStatus.NO_HANDLER:
        return _banner("Nothing to do for this action.", kind="info")
    return _banner(result.message or "The action was rejected.", kind="error")


class BrowserClient:
    """A tiny cookie-carrying client for driving a :class:`HildaApplication`.

    Used by the examples and integration tests to emulate a browser: it keeps
    the session cookie between requests and follows redirects.
    """

    def __init__(self, application: HildaApplication) -> None:
        self.application = application
        self.cookies: Dict[str, str] = {}

    def get(self, path: str, follow_redirects: bool = True) -> Response:
        response = self.application.handle(Request.get(path, cookies=self.cookies))
        self._absorb_cookies(response)
        if follow_redirects and response.is_redirect and response.location:
            return self.get(response.location, follow_redirects=follow_redirects)
        return response

    def post(self, path: str, params: Dict[str, Any], follow_redirects: bool = True) -> Response:
        response = self.application.handle(Request.post(path, params, cookies=self.cookies))
        self._absorb_cookies(response)
        if follow_redirects and response.is_redirect and response.location:
            return self.get(response.location, follow_redirects=follow_redirects)
        return response

    def login(self, user: str) -> Response:
        return self.get(f"/login?user={user}")

    def _absorb_cookies(self, response: Response) -> None:
        self.cookies.update(response.set_cookies)
