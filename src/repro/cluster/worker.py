"""The per-process engine runtime of a cluster worker.

A :class:`ClusterWorker` wraps one :class:`~repro.web.container.HildaApplication`
(engine + web sessions + renderer) behind the RPC methods the router and the
peer workers call:

============ ==============================================================
``ping``     liveness probe
``handle``   serve one web request (applies piggybacked replica-refresh
             directives and staleness epochs first, reports writes after)
``scan``     a peer reads this worker's partition of one table
``touch``    batch last-seen refresh for web sessions (router flushes)
``configure_peers``  learn the other workers' RPC addresses
``export_tables``    full persistent state, for equivalence testing
``stats``    placement summary and counters
``shutdown`` graceful drain: flush storage and stop serving
============ ==============================================================

:func:`worker_main` is the fork-model child entry point: it builds the
application *after* the fork (so WAL recovery and lock state are the
child's own), seeds and localises a fresh store, then serves RPC until told
to shut down.  The parent learns the ephemeral RPC port over a pipe.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.rpc import RpcServer, WorkerClient
from repro.cluster.sharding import ScatterGather, ShardPlan
from repro.config import ClusterConfig, EngineConfig, StorageConfig
from repro.errors import ClusterError, WorkerUnavailableError
from repro.hilda.program import HildaProgram
from repro.relational.table import Table
from repro.web.container import HildaApplication
from repro.web.http import Request, Response

__all__ = ["ClusterWorker", "WorkerSpec", "worker_main"]


@dataclass
class WorkerSpec:
    """Everything a worker process needs to build its application.

    Shipped to fork-model children by inheritance (the cluster uses the
    ``fork`` start method precisely so programs, configs and seed callables
    need no pickling).
    """

    program: HildaProgram
    cluster: ClusterConfig
    engine_config: Optional[EngineConfig] = None
    cache: Any = None
    sessions: Any = None
    functions_factory: Optional[Callable[[], Any]] = None
    #: Called as ``seed(engine, worker_index)`` on a *fresh* store only —
    #: after persist initialisation, before localisation.
    seed: Optional[Callable[[Any, int], None]] = None
    #: Disable sharding/scatter (thread model serves one shared engine).
    sharded: bool = True
    extra_app_kwargs: Dict[str, Any] = field(default_factory=dict)


class ClusterWorker:
    """One worker's RPC face over a (possibly shared) application."""

    def __init__(
        self,
        index: int,
        app: HildaApplication,
        cluster: ClusterConfig,
        plan: Optional[ShardPlan] = None,
        sharded: bool = True,
        host: str = "127.0.0.1",
    ) -> None:
        self.index = index
        self.app = app
        self.cluster = cluster
        self.plan = plan
        self.sharded = bool(sharded and plan is not None and plan.partitioned)
        self._peers: Dict[int, WorkerClient] = {}
        self._peer_lock = threading.Lock()
        self._seen_epoch = 0
        self._replica_seen: Dict[str, int] = {}
        self._has_global_queries = bool(
            plan is not None and plan.summary()["global_queries"]
        )
        self._shutdown = threading.Event()
        self.rpc = RpcServer(
            {
                "ping": self._rpc_ping,
                "handle": self._rpc_handle,
                "scan": self._rpc_scan,
                "touch": self._rpc_touch,
                "configure_peers": self._rpc_configure_peers,
                "export_tables": self._rpc_export_tables,
                "stats": self._rpc_stats,
                "shutdown": self._rpc_shutdown,
            },
            host=host,
        )
        if self.sharded:
            engine = self.app.engine
            engine.scatter = ScatterGather(
                self.plan, index, self._local_table, self._peer_rows
            )

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.rpc.address

    def start(self) -> "ClusterWorker":
        self.rpc.start()
        return self

    def stop(self) -> None:
        """Graceful drain: stop accepting RPC, then flush storage."""
        self.rpc.stop()
        with self._peer_lock:
            peers, self._peers = dict(self._peers), {}
        for client in peers.values():
            client.close()
        self._shutdown.set()

    def wait_shutdown(self, timeout: Optional[float] = None) -> bool:
        return self._shutdown.wait(timeout)

    # -- RPC methods -----------------------------------------------------------

    def _rpc_ping(self) -> bool:
        return True

    def _rpc_handle(
        self,
        request: Dict[str, Any],
        epoch: int = 0,
        refresh: Optional[List[Dict[str, Any]]] = None,
        session_hint: Optional[str] = None,
    ) -> Dict[str, Any]:
        try:
            for directive in refresh or ():
                self._apply_refresh(directive)
        except (WorkerUnavailableError, ClusterError) as exc:
            # The refresh source is down: nothing was applied; the router
            # must re-send the directives (refresh_applied=False) and the
            # browser can simply retry.
            return self._peer_down_reply(exc, refresh_applied=False)
        if epoch > self._seen_epoch:
            self._seen_epoch = epoch
            if self._has_global_queries:
                # A peer shard committed a write since we last looked; local
                # dependency tracking cannot see it, so force rebuilds.
                self.app.engine.mark_all_stale()
        req = Request(
            method=request.get("method", "GET"),
            path=request.get("path", "/"),
            params=dict(request.get("params") or {}),
            cookies=dict(request.get("cookies") or {}),
            body=request.get("body", ""),
        )
        if session_hint and req.path == "/login":
            req.params.setdefault("_cluster_session", session_hint)
        replicated_before = self._replicated_versions()
        version_before = self.app.engine.state_version
        try:
            response = self.app.handle(req)
        except (WorkerUnavailableError, ClusterError) as exc:
            # A peer needed for scatter-gather died mid-request.  The local
            # write (if any) is committed, so report it; the page itself is
            # retryable once the peer is back.
            return self._peer_down_reply(
                exc,
                refresh_applied=True,
                wrote=self.app.engine.state_version != version_before,
                replicated=self._replicated_delta(replicated_before),
            )
        return {
            "status": response.status,
            "body": response.body,
            "headers": dict(response.headers),
            "set_cookies": dict(response.set_cookies),
            "meta": {
                "wrote": self.app.engine.state_version != version_before,
                "replicated": self._replicated_delta(replicated_before),
                "refresh_applied": True,
            },
        }

    def _replicated_delta(self, before: Dict[str, int]) -> Dict[str, int]:
        return {
            name: version
            for name, version in self._replicated_versions().items()
            if before.get(name) != version
        }

    def _peer_down_reply(
        self,
        exc: Exception,
        refresh_applied: bool,
        wrote: bool = False,
        replicated: Optional[Dict[str, int]] = None,
    ) -> Dict[str, Any]:
        """A clean, retryable 503: a peer shard this request needs is down."""
        response = Response.error(
            f"peer shard unavailable, retry shortly: {exc}", status=503
        )
        response.headers["Retry-After"] = "1"
        return {
            "status": response.status,
            "body": response.body,
            "headers": dict(response.headers),
            "set_cookies": {},
            "meta": {
                "wrote": wrote,
                "replicated": replicated or {},
                "refresh_applied": refresh_applied,
            },
        }

    def _rpc_scan(self, table: str) -> List[List[Any]]:
        """A peer reads our rows of ``table`` (partition or replica source)."""
        found = self._local_table(table)
        if found is None:
            return []
        with self.app.engine.read_locked():
            return [list(row) for row in found.rows]

    def _rpc_touch(self, tokens: List[str]) -> int:
        touched = 0
        for token in tokens:
            if self.app.sessions.touch(token):
                touched += 1
        return touched

    def _rpc_configure_peers(self, addresses: Dict[Any, Any]) -> bool:
        """Learn (or re-learn, after a restart) the peer RPC addresses."""
        with self._peer_lock:
            stale, self._peers = dict(self._peers), {}
            for worker, address in addresses.items():
                index = int(worker)
                if index == self.index:
                    continue
                self._peers[index] = WorkerClient(
                    index,
                    (address[0], int(address[1])),
                    timeout=self.cluster.request_timeout,
                    connect_retries=self.cluster.connect_retries,
                    retry_backoff=self.cluster.retry_backoff,
                    pool_size=self.cluster.pool_size,
                )
        for client in stale.values():
            client.close()
        return True

    def _rpc_export_tables(self) -> Dict[str, Dict[str, List[List[Any]]]]:
        engine = self.app.engine
        out: Dict[str, Dict[str, List[List[Any]]]] = {}
        with engine.read_locked():
            for aunit in self.app.program.reachable_aunits():
                tables = engine.persist_tables(aunit.name)
                if tables:
                    out[aunit.name] = {
                        name: [list(row) for row in table.rows]
                        for name, table in tables.items()
                    }
        return out

    def _rpc_stats(self) -> Dict[str, Any]:
        scatter = getattr(self.app.engine, "scatter", None)
        return {
            "worker": self.index,
            "sharded": self.sharded,
            "epoch": self._seen_epoch,
            "sessions": self.app.sessions.active_count(),
            "state_version": self.app.engine.state_version,
            "gathers": getattr(scatter, "gather_count", 0),
            "plan": self.plan.summary() if self.plan is not None else None,
        }

    def _rpc_shutdown(self) -> bool:
        # Flush in a side thread so the response frame still goes out.
        threading.Thread(target=self._drain, name="worker-drain", daemon=True).start()
        return True

    def _drain(self) -> None:
        try:
            self.app.close()
        finally:
            self._shutdown.set()

    # -- internals -------------------------------------------------------------

    def _local_table(self, name: str) -> Optional[Table]:
        engine = self.app.engine
        for aunit in self.app.program.reachable_aunits():
            if name in aunit.persist_schema.table_names:
                engine.ensure_persistent(aunit)
                return engine.persist_tables(aunit.name).get(name)
        return None

    def _peer_rows(self, worker: int, table: str) -> List[Tuple[Any, ...]]:
        with self._peer_lock:
            client = self._peers.get(worker)
        if client is None:
            raise ClusterError(
                f"worker {self.index} has no peer client for worker {worker}"
            )
        rows = client.call("scan", retry=True, table=table)
        return [tuple(row) for row in rows]

    def _replicated_versions(self) -> Dict[str, int]:
        """Version stamps of the replicated tables that exist right now."""
        if self.plan is None or not self.sharded:
            return {}
        engine = self.app.engine
        versions: Dict[str, int] = {}
        replicated = set(self.plan.replicated)
        for aunit in self.app.program.reachable_aunits():
            for name, table in engine.persist_tables(aunit.name).items():
                if name in replicated:
                    versions[name] = table.version
        return versions

    def _apply_refresh(self, directive: Dict[str, Any]) -> None:
        """Pull a replicated table from the worker that last wrote it."""
        name = directive["table"]
        seq = int(directive.get("seq", 0))
        if seq <= self._replica_seen.get(name, 0):
            return
        source = int(directive["source"])
        rows = self._peer_rows(source, name)
        table = self._local_table(name)
        if table is not None:
            with self.app.engine.transaction():
                table.replace(rows)
            # transaction() bumps the state version but does not dirty
            # sessions; cached trees must rebuild against the new replica.
            self.app.engine.mark_all_stale()
        self._replica_seen[name] = seq


def worker_main(spec: WorkerSpec, index: int, conn: Any) -> None:
    """Fork-model child entry point: build, recover/seed, then serve RPC.

    ``conn`` is the parent's pipe end-point; the child sends either
    ``("ready", (host, port))`` or ``("error", message)`` and then serves
    until a ``shutdown`` RPC arrives.
    """
    try:
        worker = build_worker(spec, index)
        worker.start()
        conn.send(("ready", worker.address))
    except Exception as exc:  # noqa: BLE001 - parent needs the reason
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.close()
    worker.wait_shutdown()
    worker.stop()


def build_worker(spec: WorkerSpec, index: int) -> ClusterWorker:
    """Build one fork-model worker's application and RPC face (unstarted)."""
    config = _worker_engine_config(spec, index)
    functions = spec.functions_factory() if spec.functions_factory else None
    app = HildaApplication(
        spec.program,
        config=config,
        cache=spec.cache,
        sessions=spec.sessions,
        functions=functions,
        **dict(spec.extra_app_kwargs),
    )
    plan = ShardPlan(spec.program, spec.cluster.workers, spec.cluster.partition)
    engine = app.engine
    fresh = not engine.storage.recovered_counters()
    engine.ensure_persistent(spec.program.root)
    if fresh:
        if spec.seed is not None:
            spec.seed(engine, index)
        if spec.sharded and plan.partitioned:
            with engine.transaction():
                plan.localize(index, engine.persist_tables(spec.program.root.name))
    return ClusterWorker(
        index, app, spec.cluster, plan=plan, sharded=spec.sharded
    )


def _worker_engine_config(spec: WorkerSpec, index: int) -> EngineConfig:
    config = spec.engine_config or EngineConfig()
    changes: Dict[str, Any] = {"session_scoped_ids": True}
    if spec.cluster.data_dir:
        changes["storage"] = StorageConfig.wal(
            os.path.join(spec.cluster.data_dir, f"worker-{index}")
        )
    return config.updated(changes)
