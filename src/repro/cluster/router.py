"""The cluster front end: session-affinity routing over worker RPC.

The router is mountable wherever a :class:`~repro.web.container.HildaApplication`
is (it duck-types ``handle(request) -> response``), so the threaded HTTP
server serves a cluster unchanged.  Responsibilities:

* **Placement** — a login for user U goes to worker ``shard_of(U)``; the
  same hash places U's partitioned rows, so a session's affine reads are
  always shard-local.  Session cookies come back namespaced ``w<idx>-<token>``
  and later requests follow the prefix (worker token counters would
  otherwise collide across processes).  ``/login`` always re-establishes
  placement: a stale cookie held while logging in as a different user is
  dropped, never followed — following it would pin the new session onto a
  worker that does not own the user's partition.
* **Deterministic session ids** — in sharded mode each login carries a
  ``session_hint`` (S1, S2, ... in arrival order) so worker engines mint the
  same session-scoped instance ids a single-process server would
  (docs/cluster.md explains the byte-identical-pages contract).
* **Write propagation** — worker responses report committed writes; the
  router advances a data epoch plus per-replicated-table sequence numbers
  and piggybacks refresh directives / the epoch on the next request to each
  worker, which pulls fresh replicas and marks scatter-read sessions stale.
* **Failure handling** — an unreachable worker yields a clean 503 with
  ``Retry-After`` (affine sessions can simply retry); a *busy* worker
  (connection pool saturated) yields the same retryable 503 but is **not**
  marked dead — restarting a loaded worker would destroy its sessions.  A
  monitor thread probes workers out-of-pool, reports failures to the
  deployment layer (which restarts fork-model workers), and batches session
  last-seen ``touch`` flushes so TTL/LRU policies behave as in
  single-process serving.
"""

from __future__ import annotations

import itertools
import re
import threading
from typing import Any, Callable, Dict, List, Optional, Set

from repro.cluster.rpc import WorkerClient
from repro.cluster.sharding import shard_of
from repro.config import ClusterConfig
from repro.errors import RpcError, WorkerBusyError, WorkerUnavailableError
from repro.web.http import Request, Response
from repro.web.sessions import SESSION_COOKIE

__all__ = ["ClusterRouter"]

_TOKEN = re.compile(r"^w(\d+)-(.+)$")


class ClusterRouter:
    """Route web requests onto cluster workers (see module docstring)."""

    def __init__(
        self,
        clients: List[WorkerClient],
        cluster: ClusterConfig,
        session_hints: bool = True,
        on_worker_failure: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.clients = list(clients)
        self.cluster = cluster
        self.session_hints = session_hints
        self.on_worker_failure = on_worker_failure
        self._lock = threading.Lock()
        self._alive = [True] * len(self.clients)
        self._session_counter = itertools.count(1)
        self._epoch = 0
        #: replicated table -> {"seq": int, "source": worker index}
        self._table_state: Dict[str, Dict[str, int]] = {}
        #: per worker: table -> last seq it has applied
        self._worker_seen: List[Dict[str, int]] = [{} for _ in self.clients]
        self._pending_touch: List[Set[str]] = [set() for _ in self.clients]
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # -- request path ----------------------------------------------------------

    def handle(self, request: Request) -> Response:
        index, token = self._target(request)
        if not self._alive[index]:
            return self._unavailable(index)
        forward = {
            "method": request.method,
            "path": request.path,
            "params": dict(request.params),
            "cookies": self._inner_cookies(request, token),
            "body": request.body,
        }
        is_login = request.path == "/login"
        session_hint = None
        if self.session_hints and is_login and request.param("user"):
            # Mirror the worker's login validation (missing ``user`` is a
            # 400): a login that cannot succeed must not consume a session
            # number, or the cluster's S<n> ordering — and with it the
            # session-scoped instance ids — would diverge from the
            # single-process engine, which only advances its counter on a
            # successful start_session.
            session_hint = f"S{next(self._session_counter)}"
        with self._lock:
            epoch = self._epoch
            refresh = self._refresh_directives(index)
        try:
            reply = self.clients[index].call(
                "handle",
                # GET /login mutates state (creates the web and engine
                # sessions), so it is never replayed after a mid-call
                # failure; the browser retries against the 503 instead.
                retry=request.method == "GET" and not is_login,
                request=forward,
                epoch=epoch,
                refresh=refresh,
                session_hint=session_hint,
            )
        except WorkerBusyError:
            # Saturation is load, not death: 503 the request but leave the
            # worker alive so the monitor never restarts it (a restart
            # would destroy its in-memory web sessions).
            return self._unavailable(index, busy=True)
        except WorkerUnavailableError:
            self._alive[index] = False
            return self._unavailable(index)
        except RpcError as exc:
            return Response.error(f"cluster worker {index} failed: {exc}")
        meta = reply.get("meta") or {}
        with self._lock:
            if meta.get("refresh_applied", True):
                for directive in refresh:
                    self._worker_seen[index][directive["table"]] = directive["seq"]
            self._absorb_meta(index, meta)
            if token is not None:
                self._pending_touch[index].add(token)
        return self._outer_response(index, reply)

    def _target(self, request: Request):
        """(worker index, inner session token) for one request."""
        if request.path == "/login":
            # Login re-establishes placement *before* the cookie is looked
            # at: route by the user's shard and drop any held token.  An
            # old cookie must never pin the new session onto a worker that
            # does not own the user's partitioned rows (the previous
            # session, if any, ages out by TTL exactly as it would after a
            # single-process re-login).
            user = request.param("user") or ""
            return shard_of(user, len(self.clients)), None
        raw = request.cookies.get(SESSION_COOKIE)
        if raw:
            match = _TOKEN.match(raw)
            if match:
                index = int(match.group(1))
                if index < len(self.clients):
                    return index, match.group(2)
            # A token the router did not issue (or a worker count change):
            # send it to worker 0, whose session lookup will fail and
            # redirect to /login.
            return 0, None
        return 0, None

    def _inner_cookies(self, request: Request, token: Optional[str]) -> Dict[str, str]:
        cookies = dict(request.cookies)
        if token is not None:
            cookies[SESSION_COOKIE] = token
        else:
            cookies.pop(SESSION_COOKIE, None)
        return cookies

    def _outer_response(self, index: int, reply: Dict[str, Any]) -> Response:
        set_cookies = dict(reply.get("set_cookies") or {})
        inner = set_cookies.get(SESSION_COOKIE)
        if inner:
            set_cookies[SESSION_COOKIE] = f"w{index}-{inner}"
        return Response(
            status=int(reply.get("status", 500)),
            body=reply.get("body", ""),
            headers=dict(reply.get("headers") or {}),
            set_cookies=set_cookies,
        )

    def _unavailable(self, index: int, busy: bool = False) -> Response:
        state = "busy" if busy else "unavailable"
        response = Response.error(
            f"cluster worker {index} is {state}; retry shortly", status=503
        )
        response.headers["Retry-After"] = "1"
        return response

    # -- write propagation -----------------------------------------------------

    def _refresh_directives(self, index: int) -> List[Dict[str, int]]:
        """Replica refreshes worker ``index`` has not applied yet (locked)."""
        seen = self._worker_seen[index]
        return [
            {"table": table, "seq": state["seq"], "source": state["source"]}
            for table, state in self._table_state.items()
            if state["source"] != index and seen.get(table, 0) < state["seq"]
        ]

    def _absorb_meta(self, index: int, meta: Dict[str, Any]) -> None:
        """Record a worker's reported writes (locked)."""
        if meta.get("wrote"):
            self._epoch += 1
        for table in meta.get("replicated") or {}:
            state = self._table_state.setdefault(table, {"seq": 0, "source": index})
            state["seq"] += 1
            state["source"] = index
            self._worker_seen[index][table] = state["seq"]

    # -- monitoring / lifecycle ------------------------------------------------

    def start_monitor(self) -> "ClusterRouter":
        if self._monitor is None:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="cluster-monitor", daemon=True
            )
            self._monitor.start()
        return self

    def flush_touches(self) -> None:
        """Push batched session last-seen refreshes to their workers."""
        for index, client in enumerate(self.clients):
            with self._lock:
                tokens, self._pending_touch[index] = (
                    sorted(self._pending_touch[index]),
                    set(),
                )
            if not tokens or not self._alive[index]:
                continue
            try:
                client.call("touch", retry=True, tokens=tokens)
            except (RpcError, WorkerBusyError, WorkerUnavailableError):
                pass  # the probe below owns failure handling

    def check_workers(self) -> None:
        """One health-probe round; restores/downs the alive flags.

        The failure callback fires on *every* round a worker stays
        unreachable (not only on the alive->dead edge): a request may have
        marked the worker dead before the probe got there, and a failed
        restart attempt must be retried on the next round.  Callbacks are
        therefore expected to be idempotent (``ClusterServer``'s is).
        """
        for index, client in enumerate(self.clients):
            try:
                client.ping()
                self._alive[index] = True
            except (RpcError, WorkerUnavailableError):
                self._alive[index] = False
                if self.on_worker_failure is not None:
                    try:
                        self.on_worker_failure(index)
                    except Exception:  # noqa: BLE001 - monitoring must survive
                        pass

    def worker_restarted(self, index: int, address=None) -> None:
        """Reconnect to a restarted worker and forget its refresh progress."""
        if address is not None:
            self.clients[index].reconnect(tuple(address))
        with self._lock:
            self._worker_seen[index] = {}
            self._pending_touch[index] = set()
        self._alive[index] = True

    def alive_workers(self) -> List[int]:
        return [index for index, alive in enumerate(self._alive) if alive]

    def close(self) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
            self._monitor = None
        self.flush_touches()
        for client in self.clients:
            client.close()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.cluster.health_interval):
            self.flush_touches()
            self.check_workers()
