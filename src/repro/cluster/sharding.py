"""Shard placement and scatter-gather reads for cluster serving.

:class:`ShardPlan` compiles the placement of one application's persistent
tables over N workers.  It leans on the compiler's partitioning analysis
(:func:`repro.compiler.partitioning.analyse_table_placements`): a root-AUnit
table whose reads are session-affine and whose writes preserve the key is
*partitioned* — each worker holds only the rows whose key hashes to it — and
everything else is *replicated*.

The plan also registers, ahead of time, which program read queries are
**global**: they read a partitioned table without the affinity predicate, so
one shard's rows are not enough.  Registration is by identity of the
declaration's query AST — the runtime executes exactly those objects — which
makes the per-query check in the executor hot path a dict lookup.  Handler
*actions* are deliberately never registered: an assignment's read of its own
target must see the local partition only, because ``target.replace(...)``
rewrites the partition with the query result (scatter-gathering there would
copy every peer's rows into the local shard).

:class:`ScatterGather` is the executor-facing provider (the ``scatter``
hook of :class:`repro.sql.executor.SQLExecutor`): for a registered global
query it materialises overlay tables merging the local partition with every
peer's rows, fetched through injected callables so the policy is testable
without sockets.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.compiler.partitioning import (
    TablePlacementReport,
    analyse_table_placements,
    select_is_affine,
    _deep_references,
    _selects,
)
from repro.hilda.ast import QueryBlock
from repro.hilda.program import HildaProgram
from repro.relational.table import Table
from repro.sql.ast import Query

__all__ = ["ShardPlan", "ScatterGather", "shard_of"]


def shard_of(value: Any, workers: int) -> int:
    """The worker owning a session/row key.

    CRC32 of the key's string form — deterministic across processes and
    Python versions (unlike ``hash``), so the router and every worker agree
    on placement without coordination.
    """
    return zlib.crc32(str(value).encode("utf-8")) % workers


class ShardPlan:
    """The compiled placement of one program's tables over ``workers`` shards."""

    def __init__(
        self,
        program: HildaProgram,
        workers: int,
        overrides: Union[Dict[str, str], Sequence[Tuple[str, str]], None] = None,
    ) -> None:
        self.program = program
        self.workers = int(workers)
        self.report: TablePlacementReport = analyse_table_placements(
            program, dict(overrides or {})
        )
        #: table name -> partitioning key column
        self.partitioned: Dict[str, str] = self.report.partitioned
        self.replicated: List[str] = self.report.replicated
        self.input_tables: Tuple[str, ...] = self.report.input_tables
        self._global_by_id: Dict[int, Tuple[str, ...]] = {}
        self._global_by_text: Dict[str, Tuple[str, ...]] = {}
        if self.partitioned:
            self._register_queries(program)

    # -- placement -------------------------------------------------------------

    def shard_of(self, value: Any) -> int:
        return shard_of(value, self.workers)

    def owns_row(self, worker: int, table: Table, name: str, row: Sequence[Any]) -> bool:
        """Does ``worker`` own this row of a partitioned table?"""
        key_column = self.partitioned[name]
        position = list(table.schema.column_names).index(key_column)
        return self.shard_of(row[position]) == worker

    def localize(self, worker: int, tables: Dict[str, Table]) -> int:
        """Drop every row a worker does not own from its partitioned tables.

        Run once per worker right after seeding, so all workers can seed the
        full deterministic initial state and then keep only their shard.
        Returns the number of rows dropped.
        """
        dropped = 0
        for name, key_column in self.partitioned.items():
            table = tables.get(name)
            if table is None:
                continue
            position = list(table.schema.column_names).index(key_column)
            dropped += table.delete_where(
                lambda row, _pos=position: self.shard_of(row[_pos]) != worker
            )
        return dropped

    # -- global-query registry -------------------------------------------------

    def is_global(self, query: Union[str, Query]) -> bool:
        """Does this program read query need rows from every shard?"""
        return bool(self.global_tables(query))

    def global_tables(self, query: Union[str, Query]) -> Tuple[str, ...]:
        """The partitioned tables a registered global query must merge."""
        if isinstance(query, str):
            return self._global_by_text.get(query, ())
        return self._global_by_id.get(id(query), ())

    def classify_query(self, query: Query) -> Tuple[str, ...]:
        """The partitioned tables ``query`` reads without session affinity."""
        needs: List[str] = []
        for table in sorted(self.partitioned):
            key_column = self.partitioned[table]
            referenced = False
            affine = True
            for select in _selects(query):
                if _deep_references(select, table):
                    referenced = True
                if not select_is_affine(select, table, key_column, self.input_tables):
                    affine = False
            if referenced and not affine:
                needs.append(table)
        return tuple(needs)

    def summary(self) -> Dict[str, Any]:
        return {
            "workers": self.workers,
            "partitioned": dict(self.partitioned),
            "replicated": list(self.replicated),
            "global_queries": len(self._global_by_id),
        }

    def _register_queries(self, program: HildaProgram) -> None:
        for block in _read_query_blocks(program):
            tables = self.classify_query(block.query)
            if tables:
                self._global_by_id[id(block.query)] = tables
                self._global_by_text[block.text] = tables


def _read_query_blocks(program: HildaProgram) -> Iterable[QueryBlock]:
    """Every *read-context* query block of a program.

    Covers activation queries, activation filters, input queries, local
    queries and handler conditions.  Persist queries (deterministic seeding,
    runs before localization) and handler actions (must read the local
    partition; see module docstring) are excluded by design.
    """
    for aunit in program.reachable_aunits():
        for assignment in aunit.local_query:
            yield assignment.query
        for activator in aunit.activators:
            if activator.activation_query is not None:
                yield activator.activation_query
            for filter_block in activator.activation_filters:
                yield filter_block
            for assignment in activator.input_query:
                yield assignment.query
            for handler in activator.handlers:
                if handler.condition is not None:
                    yield handler.condition


class ScatterGather:
    """The executor ``scatter`` hook for one worker.

    Parameters
    ----------
    plan:
        The shard plan (shared shape across all workers).
    worker:
        This worker's index.
    local_tables:
        ``name -> Table`` resolver for the worker's own partitions.
    peer_rows:
        ``(worker, table) -> iterable of rows`` fetching a peer's partition
        (an RPC in production, a plain callable in tests).
    """

    def __init__(
        self,
        plan: ShardPlan,
        worker: int,
        local_tables: Callable[[str], Optional[Table]],
        peer_rows: Callable[[int, str], Iterable[Sequence[Any]]],
    ) -> None:
        self.plan = plan
        self.worker = worker
        self._local_tables = local_tables
        self._peer_rows = peer_rows
        self.gather_count = 0

    def is_global(self, query: Union[str, Query]) -> bool:
        return self.plan.is_global(query)

    def overlay_for(
        self, query: Query, read_names: Optional[Iterable[str]] = None
    ) -> Optional[Dict[str, Table]]:
        """Merged tables for a global query; None for everything else.

        Rows merge in worker-index order, which is deterministic but not the
        single-process insertion order — global queries therefore need an
        ORDER BY to render identically across deployments (docs/cluster.md).
        """
        tables = self.plan.global_tables(query)
        if not tables:
            return None
        wanted = set(read_names) if read_names is not None else None
        overlay: Dict[str, Table] = {}
        for name in tables:
            if wanted is not None and name not in wanted:
                continue
            local = self._local_tables(name)
            if local is None:
                continue
            rows: List[Sequence[Any]] = []
            for peer in range(self.plan.workers):
                if peer == self.worker:
                    rows.extend(local.rows)
                else:
                    rows.extend(tuple(row) for row in self._peer_rows(peer, name))
            overlay[name] = Table(local.schema, rows)
            self.gather_count += 1
        return overlay or None
