"""Multi-process cluster serving (docs/cluster.md).

A front-end **router** hashes each session's user key onto one of N engine
**worker processes** over a length-prefixed socket RPC transport.  The
compiler's partitioning analysis decides which persistent tables are
session-affine (partitioned across workers) and which are replicated, and
cross-shard reads are answered by scatter-gather inside the SQL executor.

Public surface:

* :class:`~repro.cluster.server.ClusterServer` — the fork-model deployment:
  spawn workers, mount the router behind the threaded HTTP front end.
* :class:`~repro.cluster.router.ClusterRouter` — session-affinity routing,
  failure handling, replica refresh and last-seen propagation.
* :class:`~repro.cluster.worker.ClusterWorker` /
  :func:`~repro.cluster.worker.worker_main` — the per-process engine runtime.
* :class:`~repro.cluster.sharding.ShardPlan` — the compiled placement of an
  application's tables over N shards.
* :mod:`repro.cluster.rpc` — the framed request/response transport.
"""

from repro.cluster.router import ClusterRouter
from repro.cluster.rpc import RpcServer, WorkerClient
from repro.cluster.server import ClusterServer, build_thread_cluster
from repro.cluster.sharding import ShardPlan, shard_of
from repro.cluster.worker import ClusterWorker

__all__ = [
    "ClusterRouter",
    "ClusterServer",
    "ClusterWorker",
    "RpcServer",
    "ShardPlan",
    "WorkerClient",
    "build_thread_cluster",
    "shard_of",
]
