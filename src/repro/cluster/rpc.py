"""Length-prefixed socket RPC between the cluster router and engine workers.

Wire format: each message is one *frame* — a 4-byte big-endian length prefix
followed by that many payload bytes.  The payload is a codec-encoded dict:

* request — ``{"id": int, "method": str, "args": dict}``
* response — ``{"id": int, "ok": bool, "value": ...}`` or
  ``{"id": int, "ok": False, "error": {"type": str, "message": str}}``

The codec is msgpack when the interpreter has it and pickle otherwise (the
container image does not bake msgpack in, so pickle is the common case).
Both sides of a connection always run the same code base, so the codec choice
never needs negotiating.  msgpack turns tuples into lists; callers that ship
table rows must therefore re-tuple them on receipt (``worker.py`` does).
The pickle path decodes through a **restricted unpickler**: rpc frames are
plain containers of primitives (the one exception being ``datetime.date``
row values), so ``find_class`` rejects every other global — a crafted frame
from some other local process that can reach the TCP port must not be able
to smuggle a ``__reduce__`` gadget into the worker (pickle is otherwise
arbitrary code execution).  Undecodable frames of either codec surface as
:class:`~repro.errors.RpcError` and close the connection.

:class:`RpcServer` is a thread-per-connection server dispatching to a handler
table; :class:`WorkerClient` is the router/worker-side caller with a bounded
connection pool, request timeouts, and bounded retry with backoff for
connection establishment (and, for calls flagged idempotent, mid-call
failures).  Failures surface as :class:`~repro.errors.RpcError` /
:class:`~repro.errors.WorkerUnavailableError`, and connection-pool
saturation as :class:`~repro.errors.WorkerBusyError` (load, not death —
see :class:`WorkerClient`).
"""

from __future__ import annotations

import itertools
import socket
import struct
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import RpcError, WorkerBusyError, WorkerUnavailableError

__all__ = ["RpcServer", "WorkerClient", "CODEC_NAME"]

try:  # pragma: no cover - exercised only when msgpack is installed
    import msgpack  # type: ignore

    CODEC_NAME = "msgpack"

    def _encode(message: Dict[str, Any]) -> bytes:
        return msgpack.packb(message, use_bin_type=True)

    def _decode(payload: bytes) -> Dict[str, Any]:
        try:
            return msgpack.unpackb(payload, raw=False)
        except Exception as exc:
            raise RpcError(f"undecodable rpc frame: {exc}") from exc

except ImportError:  # pickle is always available
    import io
    import pickle

    CODEC_NAME = "pickle"

    #: The only non-primitive globals a frame may reference: DATE columns
    #: ship ``datetime.date`` values in ``scan``/``export_tables`` rows.
    #: (``datetime.datetime`` covers the coercion layer's accepted superset.)
    _SAFE_GLOBALS = {("datetime", "date"), ("datetime", "datetime")}

    class _RestrictedUnpickler(pickle.Unpickler):
        """Reject every global reference outside ``_SAFE_GLOBALS``.

        Dicts, lists, tuples, strings, bytes, numbers, bools and None decode
        through dedicated pickle opcodes and never hit ``find_class``, so
        legitimate rpc traffic is unaffected while a crafted frame cannot
        name a callable to execute.
        """

        def find_class(self, module: str, name: str) -> Any:
            if (module, name) in _SAFE_GLOBALS:
                return super().find_class(module, name)
            raise pickle.UnpicklingError(
                f"rpc frames may not reference {module}.{name}"
            )

    def _encode(message: Dict[str, Any]) -> bytes:
        return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)

    def _decode(payload: bytes) -> Dict[str, Any]:
        try:
            return _RestrictedUnpickler(io.BytesIO(payload)).load()
        except Exception as exc:
            raise RpcError(f"undecodable rpc frame: {exc}") from exc


_LENGTH = struct.Struct(">I")
#: Upper bound on a single frame; a corrupt length prefix should fail fast
#: rather than attempt a multi-gigabyte read.
MAX_FRAME = 256 * 1024 * 1024


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    payload = _encode(message)
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME:
        raise RpcError(f"rpc frame of {length} bytes exceeds the {MAX_FRAME}-byte limit")
    return _decode(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise RpcError("rpc connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class RpcServer:
    """Serve a handler table over framed request/response connections.

    Each accepted connection gets a daemon thread that loops reading request
    frames and writing one response frame per request, so a single connection
    carries many sequential calls (the client pools connections for
    concurrency).  Handler exceptions are caught and returned as error
    responses; they never kill the connection.
    """

    def __init__(
        self,
        handlers: Dict[str, Callable[..., Any]],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._handlers = dict(handlers)
        self._listener = socket.create_server((host, port))
        self._address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._connections: Dict[int, socket.socket] = {}
        self._conn_ids = itertools.count(1)
        self._closing = False
        self._acceptor: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._address

    def start(self) -> "RpcServer":
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="rpc-accept", daemon=True
        )
        self._acceptor.start()
        return self

    def stop(self) -> None:
        with self._lock:
            if self._closing:
                return
            self._closing = True
            connections = list(self._connections.values())
            self._connections.clear()
        # shutdown() before close(): merely closing the fd does not wake a
        # thread parked in accept() on Linux, which would stall stop() until
        # the join timeout below.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in connections:
            _force_close(conn)
        if self._acceptor is not None:
            self._acceptor.join(timeout=2.0)

    # -- internals -------------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            conn_id = next(self._conn_ids)
            with self._lock:
                if self._closing:
                    _force_close(conn)
                    return
                self._connections[conn_id] = conn
            threading.Thread(
                target=self._serve_connection,
                args=(conn_id, conn),
                name=f"rpc-conn-{conn_id}",
                daemon=True,
            ).start()

    def _serve_connection(self, conn_id: int, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    request = recv_frame(conn)
                except (RpcError, OSError):
                    return
                send_frame(conn, self._dispatch(request))
        except OSError:
            return
        finally:
            with self._lock:
                self._connections.pop(conn_id, None)
            _force_close(conn)

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        request_id = request.get("id")
        method = request.get("method")
        handler = self._handlers.get(method)
        if handler is None:
            return _error_response(request_id, "RpcError", f"unknown rpc method {method!r}")
        try:
            value = handler(**(request.get("args") or {}))
        except Exception as exc:  # noqa: BLE001 - report, don't kill the connection
            return _error_response(request_id, type(exc).__name__, str(exc))
        return {"id": request_id, "ok": True, "value": value}


def _error_response(request_id: Any, error_type: str, message: str) -> Dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": error_type, "message": message},
    }


def _force_close(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class WorkerClient:
    """One router-side (or peer-worker-side) endpoint for a single worker.

    Pools up to ``pool_size`` connections; a call checks one out, runs a
    request/response round-trip under ``timeout``, and returns it.  Broken
    connections are discarded, not returned.  Connection establishment is
    retried ``connect_retries`` times with exponential backoff starting at
    ``retry_backoff`` seconds; mid-call failures are retried the same way only
    when the caller flags the call idempotent (``retry=True``) — a POST whose
    connection died after the request was sent may already have been applied,
    so it is never replayed.

    Failure vocabulary: a worker that cannot be *reached* raises
    :class:`WorkerUnavailableError`; a worker whose pool has no free slot
    within ``pool_timeout`` (default: ``timeout``) raises
    :class:`WorkerBusyError` — saturation is load, not death, and the two
    must stay distinguishable so the router never restarts a busy worker.
    :meth:`ping` therefore also runs on a dedicated out-of-pool connection.
    """

    def __init__(
        self,
        worker: int,
        address: Tuple[str, int],
        timeout: float = 10.0,
        connect_retries: int = 3,
        retry_backoff: float = 0.05,
        pool_size: int = 8,
        pool_timeout: Optional[float] = None,
    ) -> None:
        self.worker = worker
        self.timeout = timeout
        self.pool_timeout = timeout if pool_timeout is None else pool_timeout
        self.connect_retries = max(1, int(connect_retries))
        self.retry_backoff = retry_backoff
        self._address = tuple(address)
        self._lock = threading.Lock()
        self._slots = threading.BoundedSemaphore(max(1, int(pool_size)))
        self._idle: List[socket.socket] = []
        self._request_ids = itertools.count(1)
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        with self._lock:
            return self._address  # type: ignore[return-value]

    def reconnect(self, address: Tuple[str, int]) -> None:
        """Point the client at a restarted worker and drop stale connections."""
        with self._lock:
            self._address = tuple(address)
            idle, self._idle = self._idle, []
        for conn in idle:
            _force_close(conn)

    def call(self, method: str, retry: bool = False, **args: Any) -> Any:
        """Invoke ``method(**args)`` on the worker and return its value.

        Raises :class:`WorkerUnavailableError` when the worker cannot be
        reached (after retries), :class:`WorkerBusyError` when no pool slot
        frees up within ``pool_timeout``, and :class:`RpcError` when it
        reports a handler failure.
        """
        attempts = self.connect_retries
        delay = self.retry_backoff
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(delay)
                delay *= 2
            try:
                conn = self._checkout()
            except WorkerUnavailableError as exc:
                last_error = exc
                continue
            sent = False
            try:
                request_id = next(self._request_ids)
                send_frame(conn, {"id": request_id, "method": method, "args": args})
                sent = True
                response = recv_frame(conn)
            except (OSError, RpcError) as exc:
                self._discard(conn)
                last_error = exc
                if sent and not retry:
                    # The worker may have executed the call; surface the
                    # failure rather than replay a non-idempotent request.
                    break
                continue
            self._checkin(conn)
            return self._unwrap(response, request_id)
        raise WorkerUnavailableError(
            self.worker,
            f"cluster worker {self.worker} at {self._address} is unavailable: {last_error}",
        )

    def ping(self) -> bool:
        """Liveness probe on a dedicated out-of-pool connection.

        Probes must not compete for pool slots: under sustained load every
        slot is legitimately busy, and a probe that queued behind them would
        time out and make a healthy worker look dead — the monitor would
        then terminate it, destroying its in-memory web sessions.  Connect
        failures are retried like :meth:`call`; handler-level failures
        propagate as :class:`RpcError`.
        """
        attempts = self.connect_retries
        delay = self.retry_backoff
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(delay)
                delay *= 2
            with self._lock:
                if self._closed:
                    raise WorkerUnavailableError(self.worker, "worker client closed")
                address = self._address
            try:
                conn = socket.create_connection(address, timeout=self.timeout)
            except OSError as exc:
                last_error = exc
                continue
            try:
                conn.settimeout(self.timeout)
                request_id = next(self._request_ids)
                send_frame(conn, {"id": request_id, "method": "ping", "args": {}})
                return bool(self._unwrap(recv_frame(conn), request_id))
            except OSError as exc:
                last_error = exc
                continue
            finally:
                _force_close(conn)
        raise WorkerUnavailableError(
            self.worker,
            f"cluster worker {self.worker} at {self._address} is unavailable: "
            f"{last_error}",
        )

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            _force_close(conn)

    # -- internals -------------------------------------------------------------

    def _unwrap(self, response: Dict[str, Any], request_id: int) -> Any:
        if response.get("id") != request_id:
            raise RpcError(
                f"rpc response id {response.get('id')!r} does not match request {request_id}"
            )
        if response.get("ok"):
            return response.get("value")
        error = response.get("error") or {}
        raise RpcError(
            f"worker {self.worker} {error.get('type', 'error')}: {error.get('message', '')}"
        )

    def _checkout(self) -> socket.socket:
        # Pool exhaustion is WorkerBusyError, not WorkerUnavailableError:
        # every slot being in flight means the worker is loaded, not dead,
        # and the caller must not trigger failure handling (restart).
        if not self._slots.acquire(timeout=self.pool_timeout):
            raise WorkerBusyError(self.worker)
        with self._lock:
            if self._closed:
                self._slots.release()
                raise WorkerUnavailableError(self.worker, "worker client closed")
            if self._idle:
                return self._idle.pop()
            address = self._address
        try:
            conn = socket.create_connection(address, timeout=self.timeout)
        except OSError as exc:
            self._slots.release()
            raise WorkerUnavailableError(
                self.worker, f"cannot connect to cluster worker {self.worker}: {exc}"
            ) from exc
        conn.settimeout(self.timeout)
        return conn

    def _checkin(self, conn: socket.socket) -> None:
        try:
            peer: Optional[Tuple[str, int]] = tuple(conn.getpeername()[:2])
        except OSError:
            peer = None
        keep = False
        with self._lock:
            if not self._closed and peer == self._address:
                self._idle.append(conn)
                keep = True
        if not keep:
            _force_close(conn)
        self._slots.release()

    def _discard(self, conn: socket.socket) -> None:
        _force_close(conn)
        self._slots.release()
