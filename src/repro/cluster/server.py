"""Cluster deployment: fork-model worker processes behind one HTTP front end.

:class:`ClusterServer` owns the whole lifecycle (docs/cluster.md):

1. fork N worker processes (:func:`repro.cluster.worker.worker_main`), each
   building its own engine — and, when ``ClusterConfig.data_dir`` is set,
   recovering its own WAL at ``data_dir/worker-N`` — after the fork;
2. learn each worker's ephemeral RPC port over a pipe, hand every worker
   the full peer address map (scatter-gather and replica refresh need it);
3. mount a :class:`~repro.cluster.router.ClusterRouter` on the threaded
   HTTP server and start the router's monitor (health probes, touch
   flushes, restart-on-crash when ``ClusterConfig.restart_workers``);
4. on shutdown: stop the HTTP front end, ask each worker to drain (flushes
   its WAL), then reap the processes.

Restart semantics: a crashed worker is restarted on the same data
directory, so *committed* state comes back via WAL recovery — but web
sessions are process memory, so browsers bound to that shard get a
redirect to ``/login`` on their next request (the documented re-login
contract).  Other shards are unaffected throughout.

The ``fork`` start method is required (and asserted by ``ClusterConfig``):
program objects, configs and seed callables reach the child by address-space
inheritance, with no pickling.

:func:`build_thread_cluster` is the in-process variant behind the
``REPRO_SERVER_MODE=cluster`` test override: N worker RPC servers over one
*shared* application, exercising the router, the socket transport, token
namespacing and touch propagation without forking (sharding stays off —
one engine means there is nothing to shard).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.router import ClusterRouter
from repro.cluster.rpc import WorkerClient
from repro.cluster.worker import ClusterWorker, WorkerSpec, worker_main
from repro.config import ClusterConfig, ServerConfig
from repro.errors import (
    ClusterError,
    ConfigError,
    RpcError,
    WorkerBusyError,
    WorkerUnavailableError,
)
from repro.hilda.program import HildaProgram
from repro.web.container import HildaApplication
from repro.web.server import ThreadedHildaServer

__all__ = ["ClusterServer", "build_thread_cluster"]


class ClusterServer:
    """Serve one program from N fork-model shard workers (module docstring)."""

    def __init__(
        self,
        program: HildaProgram,
        cluster: Optional[ClusterConfig] = None,
        server_config: Optional[ServerConfig] = None,
        engine_config: Any = None,
        cache: Any = None,
        sessions: Any = None,
        functions_factory: Optional[Callable[[], Any]] = None,
        seed: Optional[Callable[[Any, int], None]] = None,
    ) -> None:
        if cluster is None:
            cluster = (server_config.cluster if server_config else None) or ClusterConfig()
        if cluster.process_model != "fork":
            raise ConfigError(
                "ClusterServer runs the fork process model; use "
                "build_thread_cluster for the in-process thread model"
            )
        self.program = program
        self.cluster = cluster
        self.server_config = server_config or ServerConfig()
        self.spec = WorkerSpec(
            program=program,
            cluster=cluster,
            engine_config=engine_config,
            cache=cache,
            sessions=sessions,
            functions_factory=functions_factory,
            seed=seed,
            sharded=True,
        )
        self._ctx = multiprocessing.get_context("fork")
        self._procs: List[Optional[Any]] = [None] * cluster.workers
        self._addresses: List[Optional[Tuple[str, int]]] = [None] * cluster.workers
        self.clients: List[WorkerClient] = []
        self.router: Optional[ClusterRouter] = None
        self.http: Optional[ThreadedHildaServer] = None
        self._restart_lock = threading.Lock()
        self._closing = False

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> "ClusterServer":
        for index in range(self.cluster.workers):
            self._spawn(index)
        self.clients = [
            self._make_client(index, self._addresses[index])
            for index in range(self.cluster.workers)
        ]
        self._configure_peers()
        self.router = ClusterRouter(
            self.clients,
            self.cluster,
            session_hints=True,
            on_worker_failure=self._on_worker_failure,
        )
        self.router.start_monitor()
        self.http = ThreadedHildaServer(self.router, config=self.server_config)
        self.http.start()
        return self

    def shutdown(self) -> None:
        self._closing = True
        if self.http is not None:
            self.http.shutdown()
            self.http = None
        if self.router is not None:
            self.router.close()
            self.router = None
        # Graceful drain (flushes each worker's WAL), then reap.
        for index, proc in enumerate(self._procs):
            if proc is None or not proc.is_alive():
                continue
            try:
                drain = self._make_client(index, self._addresses[index])
                try:
                    drain.call("shutdown")
                finally:
                    drain.close()
            except (RpcError, WorkerUnavailableError, ClusterError):
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        self._procs = [None] * self.cluster.workers

    def serve_forever(self) -> None:
        """Run in the foreground until interrupted (facade ``serve`` mode)."""
        self.start()
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()

    def __enter__(self) -> "ClusterServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    @property
    def url(self) -> str:
        if self.http is None:
            raise ClusterError("cluster server is not started")
        return self.http.url

    # -- fault injection / introspection ---------------------------------------

    def kill_worker(self, index: int) -> None:
        """Kill one worker abruptly (failover tests; no drain, no flush)."""
        proc = self._procs[index]
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)

    def worker_stats(self, index: int) -> Dict[str, Any]:
        return self.clients[index].call("stats", retry=True)

    def export_tables(self, index: int) -> Dict[str, Dict[str, List[List[Any]]]]:
        return self.clients[index].call("export_tables", retry=True)

    # -- internals --------------------------------------------------------------

    def _spawn(self, index: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(self.spec, index, child_conn),
            name=f"hilda-worker-{index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        deadline = time.monotonic() + max(10.0, self.cluster.request_timeout)
        try:
            while not parent_conn.poll(0.05):
                if time.monotonic() > deadline or not proc.is_alive():
                    raise ClusterError(f"cluster worker {index} died during startup")
            status, payload = parent_conn.recv()
        finally:
            parent_conn.close()
        if status != "ready":
            proc.join(timeout=2.0)
            raise ClusterError(f"cluster worker {index} failed to start: {payload}")
        self._procs[index] = proc
        self._addresses[index] = (payload[0], int(payload[1]))

    def _make_client(self, index: int, address: Optional[Tuple[str, int]]) -> WorkerClient:
        if address is None:
            raise ClusterError(f"cluster worker {index} has no address")
        return WorkerClient(
            index,
            address,
            timeout=self.cluster.request_timeout,
            connect_retries=self.cluster.connect_retries,
            retry_backoff=self.cluster.retry_backoff,
            pool_size=self.cluster.pool_size,
        )

    def _configure_peers(self, strict: bool = True) -> None:
        # String keys: the msgpack codec (when present) rejects int map keys.
        addresses = {
            str(index): list(address)
            for index, address in enumerate(self._addresses)
            if address is not None
        }
        for index, client in enumerate(self.clients):
            if self._addresses[index] is None:
                continue
            try:
                client.call("configure_peers", retry=True, addresses=addresses)
            except (RpcError, WorkerBusyError, WorkerUnavailableError) as exc:
                if strict:
                    raise ClusterError(
                        f"cluster worker {index} rejected peer configuration: {exc}"
                    ) from exc
                # Restart path: a peer that is itself down will learn the
                # fresh address map when its own restart reconfigures everyone.

    def _on_worker_failure(self, index: int) -> None:
        """Router monitor callback: restart a crashed worker in place.

        The restarted worker recovers committed state from its WAL (when
        ``data_dir`` is set); its web sessions are gone, so affected
        browsers are redirected to ``/login`` on their next request.
        """
        if self._closing or not self.cluster.restart_workers:
            return
        with self._restart_lock:
            if self._closing:
                return
            proc = self._procs[index]
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            try:
                self._spawn(index)
            except ClusterError:
                return  # stays dead; the next probe round tries again
            # Repoint the router's client at the new address *before*
            # reconfiguring peers — configure_peers goes through that very
            # client, and a failure here must not strand the fresh worker
            # (the next probe round would kill and respawn it forever).
            if self.router is not None:
                self.router.worker_restarted(index, self._addresses[index])
            self._configure_peers(strict=False)


def build_thread_cluster(
    application: HildaApplication, cluster: ClusterConfig
) -> Tuple[ClusterRouter, Callable[[], None]]:
    """An in-process cluster over one shared application (thread model).

    Returns ``(router, close)``: mount the router wherever the application
    was mounted; call ``close()`` to stop the router and the worker RPC
    servers.  The shared application itself is *not* closed — it belongs to
    the caller (the test fixture or the embedding server).
    """
    if cluster.process_model != "thread":
        raise ConfigError(
            "build_thread_cluster runs the thread process model; use "
            "ClusterServer for fork-model workers"
        )
    workers = [
        ClusterWorker(index, application, cluster, plan=None, sharded=False).start()
        for index in range(cluster.workers)
    ]
    clients = [
        WorkerClient(
            index,
            worker.address,
            timeout=cluster.request_timeout,
            connect_retries=cluster.connect_retries,
            retry_backoff=cluster.retry_backoff,
            pool_size=cluster.pool_size,
        )
        for index, worker in enumerate(workers)
    ]
    router = ClusterRouter(clients, cluster, session_hints=False)
    router.start_monitor()

    def close() -> None:
        router.close()
        for worker in workers:
            worker.rpc.stop()

    return router, close
