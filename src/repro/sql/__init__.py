"""A small SQL engine covering the dialect Hilda programs use
(``docs/sql_engine.md``; its place in the stack in
``docs/architecture.md`` § "repro.sql").

Public surface:

* :func:`parse_query` / :func:`parse_statement` — text to AST.
* :class:`SQLExecutor` — run queries and DML against a catalog of tables.
* :class:`Binder` — compile-time name resolution used by the Hilda validator.
* :class:`CostBasedPlanner` (``repro.sql.optimizer``) — the default staged,
  statistics-driven query optimizer (``docs/optimizer.md``); the legacy
  :class:`Planner` remains as the ``"heuristic"`` strategy.
"""

from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    DeleteStatement,
    Expression,
    FunctionCall,
    InsertStatement,
    Literal,
    Query,
    SelectQuery,
    Star,
    UnionQuery,
    UpdateStatement,
)
from repro.sql.binder import Binder, BoundQuery
from repro.sql.compile import compile_expression, compile_predicate
from repro.sql.executor import SQLCaches, SQLExecutor
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_expression, parse_query, parse_statement
from repro.sql.optimizer import CostBasedPlanner
from repro.sql.planner import Planner, plan_query
from repro.sql.relation import ColumnInfo, Relation
from repro.sql.stats import ExecutionStats

__all__ = [
    "BinaryOp",
    "Binder",
    "BoundQuery",
    "ColumnInfo",
    "ColumnRef",
    "CostBasedPlanner",
    "DeleteStatement",
    "ExecutionStats",
    "Expression",
    "FunctionCall",
    "InsertStatement",
    "Literal",
    "Planner",
    "Query",
    "Relation",
    "SQLCaches",
    "SQLExecutor",
    "compile_expression",
    "compile_predicate",
    "SelectQuery",
    "Star",
    "UnionQuery",
    "UpdateStatement",
    "parse_expression",
    "parse_query",
    "parse_statement",
    "plan_query",
    "tokenize",
]
