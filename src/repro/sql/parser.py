"""Recursive-descent parser for the SQL dialect.

Entry points:

* :func:`parse_query` — a SELECT (possibly with UNIONs); what Hilda queries,
  activation queries, conditions and assignments contain.
* :func:`parse_statement` — additionally accepts INSERT/DELETE/UPDATE, which
  the hand-coded baseline application and the web substrate use.

Two accommodations are made for names that appear in the paper's programs:

* table names may be dotted (``CourseAdmin.in.assign``, ``SelectRow.output``,
  ``in.problem``) and may contain the keywords ``IN`` and ``GROUP`` as path
  segments (MiniCMS has a table called ``group``);
* column references may be positional (``O.1`` is the first column of ``O``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import SQLSyntaxError
from repro.sql.ast import (
    BetweenExpression,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    DeleteStatement,
    ExistsExpression,
    Expression,
    FunctionCall,
    InExpression,
    InsertStatement,
    IsNullExpression,
    JoinRef,
    LikeExpression,
    Literal,
    OrderItem,
    Query,
    ScalarSubquery,
    SelectItem,
    SelectQuery,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
    UnionQuery,
    UpdateStatement,
)
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType

__all__ = ["parse_query", "parse_statement", "parse_expression", "Parser"]

#: Keywords allowed to appear as a path segment of a table name.
_NAME_KEYWORDS = {"IN", "GROUP", "ALL", "LEFT", "RIGHT", "SET", "VALUES"}


def parse_query(text: str) -> Query:
    """Parse a SELECT/UNION query and require that all input is consumed."""
    parser = Parser(text)
    query = parser.parse_query()
    parser.expect_eof()
    return query


def parse_statement(text: str) -> Statement:
    """Parse a single SQL statement (SELECT, INSERT, DELETE or UPDATE)."""
    parser = Parser(text)
    statement = parser.parse_statement()
    parser.expect_eof()
    return statement


def parse_expression(text: str) -> Expression:
    """Parse a standalone expression (used by tests and by the compiler)."""
    parser = Parser(text)
    expression = parser.parse_expr()
    parser.expect_eof()
    return expression


class Parser:
    """A hand-written recursive-descent SQL parser."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0

    # -- token helpers ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.type != TokenType.EOF:
            self.position += 1
        return token

    def error(self, message: str) -> SQLSyntaxError:
        token = self.current
        return SQLSyntaxError(message, token.line, token.column)

    def match_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> Token:
        if not self.current.is_keyword(name):
            raise self.error(f"expected {name}, found {self.current.value!r}")
        return self.advance()

    def match_punct(self, symbol: str) -> bool:
        if self.current.type == TokenType.PUNCT and self.current.value == symbol:
            self.advance()
            return True
        return False

    def expect_punct(self, symbol: str) -> Token:
        if self.current.type != TokenType.PUNCT or self.current.value != symbol:
            raise self.error(f"expected {symbol!r}, found {self.current.value!r}")
        return self.advance()

    def match_operator(self, *symbols: str) -> Optional[str]:
        if self.current.type == TokenType.OPERATOR and self.current.value in symbols:
            return self.advance().value
        return None

    def expect_eof(self) -> None:
        # A trailing semicolon is tolerated.
        self.match_punct(";")
        if self.current.type != TokenType.EOF:
            raise self.error(f"unexpected trailing input: {self.current.value!r}")

    # -- statements --------------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self.current.is_keyword("SELECT"):
            return self.parse_query()
        if self.current.is_keyword("INSERT"):
            return self.parse_insert()
        if self.current.is_keyword("DELETE"):
            return self.parse_delete()
        if self.current.is_keyword("UPDATE"):
            return self.parse_update()
        raise self.error(f"expected a SQL statement, found {self.current.value!r}")

    def parse_insert(self) -> InsertStatement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.parse_table_name()
        columns: Tuple[str, ...] = ()
        if self.match_punct("("):
            names = [self.parse_identifier()]
            while self.match_punct(","):
                names.append(self.parse_identifier())
            self.expect_punct(")")
            columns = tuple(names)
        if self.current.is_keyword("SELECT"):
            return InsertStatement(table=table, columns=columns, query=self.parse_query())
        self.expect_keyword("VALUES")
        rows: List[Tuple[Expression, ...]] = []
        while True:
            self.expect_punct("(")
            values = [self.parse_expr()]
            while self.match_punct(","):
                values.append(self.parse_expr())
            self.expect_punct(")")
            rows.append(tuple(values))
            if not self.match_punct(","):
                break
        return InsertStatement(table=table, columns=columns, rows=tuple(rows))

    def parse_delete(self) -> DeleteStatement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.parse_table_name()
        alias = self.parse_optional_alias()
        where = self.parse_expr() if self.match_keyword("WHERE") else None
        return DeleteStatement(table=table, alias=alias, where=where)

    def parse_update(self) -> UpdateStatement:
        self.expect_keyword("UPDATE")
        table = self.parse_table_name()
        alias = self.parse_optional_alias()
        self.expect_keyword("SET")
        assignments: List[Tuple[str, Expression]] = []
        while True:
            column = self.parse_identifier()
            operator = self.match_operator("=")
            if operator is None:
                raise self.error("expected '=' in UPDATE assignment")
            assignments.append((column, self.parse_expr()))
            if not self.match_punct(","):
                break
        where = self.parse_expr() if self.match_keyword("WHERE") else None
        return UpdateStatement(
            table=table, assignments=tuple(assignments), alias=alias, where=where
        )

    # -- queries --------------------------------------------------------------------

    def parse_query(self) -> Query:
        query: Query = self.parse_select()
        while self.current.is_keyword("UNION"):
            self.advance()
            all_rows = self.match_keyword("ALL")
            right = self.parse_select()
            query = UnionQuery(left=query, right=right, all=all_rows)
        return query

    def parse_select(self) -> SelectQuery:
        if self.match_punct("("):
            # Parenthesized SELECT used as a UNION branch.
            inner = self.parse_query()
            self.expect_punct(")")
            if isinstance(inner, SelectQuery):
                return inner
            raise self.error("nested UNION must not be parenthesized in this dialect")
        self.expect_keyword("SELECT")
        distinct = self.match_keyword("DISTINCT")
        self.match_keyword("ALL")
        items = self.parse_select_list()
        from_items: Tuple = ()
        if self.match_keyword("FROM"):
            from_items = self.parse_from_list()
        where = self.parse_expr() if self.match_keyword("WHERE") else None
        group_by: Tuple[Expression, ...] = ()
        if self.current.is_keyword("GROUP") and self.peek().is_keyword("BY"):
            self.advance()
            self.advance()
            expressions = [self.parse_expr()]
            while self.match_punct(","):
                expressions.append(self.parse_expr())
            group_by = tuple(expressions)
        having = self.parse_expr() if self.match_keyword("HAVING") else None
        order_by: Tuple[OrderItem, ...] = ()
        if self.current.is_keyword("ORDER") and self.peek().is_keyword("BY"):
            self.advance()
            self.advance()
            orders = [self.parse_order_item()]
            while self.match_punct(","):
                orders.append(self.parse_order_item())
            order_by = tuple(orders)
        limit: Optional[int] = None
        if self.match_keyword("LIMIT"):
            token = self.current
            if token.type != TokenType.NUMBER:
                raise self.error("LIMIT expects a number")
            self.advance()
            limit = int(token.value)
        return SelectQuery(
            items=items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def parse_order_item(self) -> OrderItem:
        expression = self.parse_expr()
        descending = False
        if self.match_keyword("DESC"):
            descending = True
        else:
            self.match_keyword("ASC")
        return OrderItem(expression=expression, descending=descending)

    def parse_select_list(self) -> Tuple[Union[SelectItem, Star], ...]:
        items: List[Union[SelectItem, Star]] = [self.parse_select_item()]
        while self.match_punct(","):
            items.append(self.parse_select_item())
        return tuple(items)

    def parse_select_item(self) -> Union[SelectItem, Star]:
        if self.current.type == TokenType.OPERATOR and self.current.value == "*":
            self.advance()
            return Star()
        # alias.* (possibly with a dotted alias)
        checkpoint = self.position
        if self.current.type in (TokenType.IDENT, TokenType.KEYWORD):
            qualifier = self._try_parse_star_qualifier()
            if qualifier is not None:
                return Star(qualifier=qualifier)
            self.position = checkpoint
        expression = self.parse_expr()
        alias = None
        if self.match_keyword("AS"):
            alias = self.parse_identifier()
        elif self.current.type == TokenType.IDENT:
            alias = self.advance().value
        return SelectItem(expression=expression, alias=alias)

    def _try_parse_star_qualifier(self) -> Optional[str]:
        """Parse ``name(.name)*.*`` and return the qualifier, or None."""
        parts: List[str] = []
        while True:
            token = self.current
            if token.type == TokenType.IDENT or (
                token.type == TokenType.KEYWORD and token.value in _NAME_KEYWORDS
            ):
                parts.append(str(token.value) if token.type == TokenType.IDENT else token.value.lower())
                self.advance()
            else:
                return None
            if not self.match_punct("."):
                return None
            if self.current.type == TokenType.OPERATOR and self.current.value == "*":
                self.advance()
                return ".".join(parts)

    # -- FROM clause -------------------------------------------------------------------

    def parse_from_list(self) -> Tuple:
        items = [self.parse_join_chain()]
        while self.match_punct(","):
            items.append(self.parse_join_chain())
        return tuple(items)

    def parse_join_chain(self):
        left = self.parse_table_factor()
        while True:
            if self.current.is_keyword("CROSS") and self.peek().is_keyword("JOIN"):
                self.advance()
                self.advance()
                right = self.parse_table_factor()
                left = JoinRef(left=left, right=right, join_type="CROSS")
                continue
            join_type = None
            if self.current.is_keyword("LEFT"):
                # LEFT [OUTER] JOIN
                if self.peek().is_keyword("OUTER") and self.peek(2).is_keyword("JOIN"):
                    self.advance()
                    self.advance()
                    self.advance()
                    join_type = "LEFT"
                elif self.peek().is_keyword("JOIN"):
                    self.advance()
                    self.advance()
                    join_type = "LEFT"
            elif self.current.is_keyword("INNER") and self.peek().is_keyword("JOIN"):
                self.advance()
                self.advance()
                join_type = "INNER"
            elif self.current.is_keyword("JOIN"):
                self.advance()
                join_type = "INNER"
            if join_type is None:
                return left
            right = self.parse_table_factor()
            condition = None
            if self.match_keyword("ON"):
                condition = self.parse_expr()
            left = JoinRef(left=left, right=right, join_type=join_type, condition=condition)

    def parse_table_factor(self):
        if self.match_punct("("):
            query = self.parse_query()
            self.expect_punct(")")
            alias = self.parse_optional_alias()
            if alias is None:
                raise self.error("derived table requires an alias")
            return SubqueryRef(query=query, alias=alias)
        name = self.parse_table_name()
        alias = self.parse_optional_alias()
        return TableRef(name=name, alias=alias)

    def parse_optional_alias(self) -> Optional[str]:
        if self.match_keyword("AS"):
            return self.parse_identifier()
        if self.current.type == TokenType.IDENT:
            return self.advance().value
        return None

    def parse_table_name(self) -> str:
        """A dotted table name; keywords IN/GROUP etc. allowed as segments."""
        parts = [self.parse_name_part()]
        while (
            self.current.type == TokenType.PUNCT
            and self.current.value == "."
            and self._next_is_name_part()
        ):
            self.advance()
            parts.append(self.parse_name_part())
        return ".".join(parts)

    def _next_is_name_part(self) -> bool:
        token = self.peek()
        return token.type == TokenType.IDENT or (
            token.type == TokenType.KEYWORD and token.value in _NAME_KEYWORDS
        )

    def parse_name_part(self) -> str:
        token = self.current
        if token.type == TokenType.IDENT:
            self.advance()
            return token.value
        if token.type == TokenType.KEYWORD and token.value in _NAME_KEYWORDS:
            self.advance()
            return token.value.lower()
        raise self.error(f"expected a name, found {token.value!r}")

    def parse_identifier(self) -> str:
        token = self.current
        if token.type != TokenType.IDENT:
            raise self.error(f"expected an identifier, found {token.value!r}")
        self.advance()
        return token.value

    # -- expressions --------------------------------------------------------------------

    def parse_expr(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.match_keyword("OR"):
            right = self.parse_and()
            left = BinaryOp("OR", left, right)
        return left

    def parse_and(self) -> Expression:
        left = self.parse_not()
        while self.match_keyword("AND"):
            right = self.parse_not()
            left = BinaryOp("AND", left, right)
        return left

    def parse_not(self) -> Expression:
        if self.match_keyword("NOT"):
            return UnaryNot(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expression:
        if self.current.is_keyword("EXISTS"):
            self.advance()
            self.expect_punct("(")
            query = self.parse_query()
            self.expect_punct(")")
            return ExistsExpression(subquery=query)
        left = self.parse_additive()
        return self.parse_predicate_tail(left)

    def parse_predicate_tail(self, left: Expression) -> Expression:
        negated = False
        if self.current.is_keyword("NOT") and self.peek().is_keyword("IN", "BETWEEN", "LIKE"):
            self.advance()
            negated = True
        if self.match_keyword("IN"):
            self.expect_punct("(")
            if self.current.is_keyword("SELECT"):
                subquery = self.parse_query()
                self.expect_punct(")")
                return InExpression(operand=left, subquery=subquery, negated=negated)
            values = [self.parse_expr()]
            while self.match_punct(","):
                values.append(self.parse_expr())
            self.expect_punct(")")
            return InExpression(operand=left, values=tuple(values), negated=negated)
        if self.match_keyword("BETWEEN"):
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return BetweenExpression(operand=left, low=low, high=high, negated=negated)
        if self.match_keyword("LIKE"):
            pattern = self.parse_additive()
            return LikeExpression(operand=left, pattern=pattern, negated=negated)
        if self.match_keyword("IS"):
            is_negated = self.match_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNullExpression(operand=left, negated=is_negated)
        operator = self.match_operator("=", "==", "<>", "!=", "<", "<=", ">", ">=")
        if operator is not None:
            normalized = {"==": "=", "!=": "<>"}.get(operator, operator)
            right = self.parse_additive()
            return BinaryOp(normalized, left, right)
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while True:
            operator = self.match_operator("+", "-")
            if operator is None:
                return left
            right = self.parse_multiplicative()
            left = BinaryOp(operator, left, right)

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while True:
            operator = self.match_operator("*", "/", "%")
            if operator is None:
                return left
            right = self.parse_unary()
            left = BinaryOp(operator, left, right)

    def parse_unary(self) -> Expression:
        operator = self.match_operator("-", "+")
        if operator == "-":
            return UnaryNeg(self.parse_unary())
        if operator == "+":
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.current

        if token.type == TokenType.NUMBER:
            self.advance()
            return Literal(token.value)
        if token.type == TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("CASE"):
            return self.parse_case()
        if self.match_punct("("):
            if self.current.is_keyword("SELECT"):
                query = self.parse_query()
                self.expect_punct(")")
                return ScalarSubquery(query=query)
            expression = self.parse_expr()
            self.expect_punct(")")
            return expression

        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            return self.parse_name_expression()

        raise self.error(f"unexpected token {token.value!r} in expression")

    def parse_case(self) -> Expression:
        self.expect_keyword("CASE")
        whens: List[Tuple[Expression, Expression]] = []
        while self.match_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            value = self.parse_expr()
            whens.append((condition, value))
        default = None
        if self.match_keyword("ELSE"):
            default = self.parse_expr()
        self.expect_keyword("END")
        if not whens:
            raise self.error("CASE requires at least one WHEN branch")
        return CaseExpression(whens=tuple(whens), default=default)

    def parse_name_expression(self) -> Expression:
        """Parse a column reference or a function call starting at a name."""
        token = self.current
        if token.type == TokenType.KEYWORD and token.value not in _NAME_KEYWORDS:
            raise self.error(f"unexpected keyword {token.value!r} in expression")
        first = self.parse_name_part()

        # Function call: name immediately followed by '('.
        if self.current.type == TokenType.PUNCT and self.current.value == "(":
            self.advance()
            if self.current.type == TokenType.OPERATOR and self.current.value == "*":
                self.advance()
                self.expect_punct(")")
                return FunctionCall(name=first, arguments=(Star(),))
            distinct = self.match_keyword("DISTINCT")
            arguments: List[Expression] = []
            if not (self.current.type == TokenType.PUNCT and self.current.value == ")"):
                arguments.append(self.parse_expr())
                while self.match_punct(","):
                    arguments.append(self.parse_expr())
            self.expect_punct(")")
            return FunctionCall(name=first, arguments=tuple(arguments), distinct=distinct)

        # Dotted column reference: qualifier(.part)*.column, column may be a number.
        parts = [first]
        while self.current.type == TokenType.PUNCT and self.current.value == ".":
            next_token = self.peek()
            if next_token.type == TokenType.NUMBER:
                self.advance()
                self.advance()
                parts.append(str(int(next_token.value)))
                break
            if next_token.type == TokenType.IDENT or (
                next_token.type == TokenType.KEYWORD and next_token.value in _NAME_KEYWORDS
            ):
                self.advance()
                parts.append(self.parse_name_part())
                continue
            break
        if len(parts) == 1:
            return ColumnRef(name=parts[0])
        return ColumnRef(name=parts[-1], qualifier=".".join(parts[:-1]))


def UnaryNot(operand: Expression) -> Expression:
    """Build a NOT node (factory keeps the parser body terse)."""
    from repro.sql.ast import UnaryOp

    return UnaryOp("NOT", operand)


def UnaryNeg(operand: Expression) -> Expression:
    """Build an arithmetic negation node."""
    from repro.sql.ast import UnaryOp

    return UnaryOp("-", operand)
