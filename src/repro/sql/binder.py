"""Static name resolution (binding) for SQL queries.

The binder checks a query against a set of *schemas* (not data): every table
reference must name a known table, every column reference must resolve to
exactly one column, and UNION branches must have the same arity.  It also
computes the output column names and arity of a query, which the Hilda
validator uses to check assignments (``table :- SELECT ...``) against the
target table's schema.

The binder is intentionally independent of the executor so that Hilda
programs can be validated at compile time without any data present.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import SQLBindingError
from repro.relational.schema import TableSchema
from repro.sql.ast import (
    ColumnRef,
    Expression,
    FunctionCall,
    InExpression,
    ExistsExpression,
    JoinRef,
    Query,
    ScalarSubquery,
    SelectItem,
    SelectQuery,
    Star,
    SubqueryRef,
    TableRef,
    UnionQuery,
)

__all__ = ["BoundQuery", "Binder", "SchemaProvider"]

#: Callable that maps a (possibly dotted) table name to its schema, or None.
SchemaProvider = Callable[[str], Optional[TableSchema]]


@dataclass
class BoundColumn:
    """A column visible in some scope during binding."""

    name: str
    qualifier: Optional[str]


@dataclass
class BoundQuery:
    """The result of binding a query: its output shape and referenced tables."""

    column_names: List[str]
    arity: int
    referenced_tables: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.arity = len(self.column_names) if self.column_names else self.arity


class _Scope:
    """Columns visible to expressions of one SELECT block."""

    def __init__(self, columns: List[BoundColumn], parent: Optional["_Scope"] = None) -> None:
        self.columns = columns
        self.parent = parent

    def resolve(self, reference: ColumnRef) -> bool:
        matches = [
            column
            for column in self.columns
            if (reference.qualifier is None or column.qualifier == reference.qualifier)
            and (reference.is_positional or column.name == reference.name)
        ]
        if reference.is_positional and reference.qualifier is not None:
            qualified = [c for c in self.columns if c.qualifier == reference.qualifier]
            if 1 <= reference.position <= len(qualified):
                return True
            if self.parent is not None:
                return self.parent.resolve(reference)
            return False
        if len(matches) == 1:
            return True
        if len(matches) > 1 and reference.qualifier is None:
            raise SQLBindingError(f"ambiguous column reference {reference.to_sql()!r}")
        if matches:
            return True
        if self.parent is not None:
            return self.parent.resolve(reference)
        return False

    def has_qualifier(self, qualifier: str) -> bool:
        if any(column.qualifier == qualifier for column in self.columns):
            return True
        return self.parent.has_qualifier(qualifier) if self.parent else False


class Binder:
    """Binds queries against schema metadata."""

    def __init__(self, schema_provider: SchemaProvider, strict_columns: bool = True) -> None:
        self.schema_provider = schema_provider
        self.strict_columns = strict_columns

    # -- public API -------------------------------------------------------------

    def bind(self, query: Query) -> BoundQuery:
        return self._bind_query(query, parent_scope=None)

    # -- internals ------------------------------------------------------------------

    def _bind_query(self, query: Query, parent_scope: Optional[_Scope]) -> BoundQuery:
        if isinstance(query, UnionQuery):
            left = self._bind_query(query.left, parent_scope)
            right = self._bind_query(query.right, parent_scope)
            if left.arity != right.arity:
                raise SQLBindingError(
                    f"UNION branches have different arities: {left.arity} vs {right.arity}"
                )
            return BoundQuery(
                column_names=left.column_names,
                arity=left.arity,
                referenced_tables=left.referenced_tables | right.referenced_tables,
            )
        if isinstance(query, SelectQuery):
            return self._bind_select(query, parent_scope)
        raise SQLBindingError(f"cannot bind query node {type(query).__name__}")

    def _bind_select(self, query: SelectQuery, parent_scope: Optional[_Scope]) -> BoundQuery:
        columns: List[BoundColumn] = []
        referenced: Set[str] = set()

        def add_table(name: str, binding: str) -> None:
            schema = self.schema_provider(name)
            if schema is None:
                raise SQLBindingError(f"unknown table {name!r}")
            referenced.add(name)
            for column_name in schema.column_names:
                columns.append(BoundColumn(name=column_name, qualifier=binding))

        def visit_from(item) -> None:
            if isinstance(item, TableRef):
                add_table(item.name, item.binding_name)
            elif isinstance(item, SubqueryRef):
                bound = self._bind_query(item.query, parent_scope)
                referenced.update(bound.referenced_tables)
                for column_name in bound.column_names:
                    columns.append(BoundColumn(name=column_name, qualifier=item.alias))
            elif isinstance(item, JoinRef):
                visit_from(item.left)
                visit_from(item.right)

        for item in query.from_items:
            visit_from(item)

        # Implicit tables referenced only through qualifiers (activationTuple etc.).
        bound_qualifiers = {column.qualifier for column in columns}
        for expression in query.expressions():
            for node in expression.walk():
                if isinstance(node, ColumnRef) and node.qualifier is not None:
                    qualifier = node.qualifier
                    if qualifier in bound_qualifiers:
                        continue
                    if parent_scope is not None and parent_scope.has_qualifier(qualifier):
                        continue
                    schema = self.schema_provider(qualifier)
                    if schema is not None:
                        add_table(qualifier, qualifier)
                        bound_qualifiers.add(qualifier)

        scope = _Scope(columns, parent_scope)

        for expression in query.expressions():
            self._bind_expression(expression, scope, referenced)
        if query.having is not None:
            self._bind_expression(query.having, scope, referenced)

        output_names = self._output_column_names(query, columns)
        return BoundQuery(
            column_names=output_names, arity=len(output_names), referenced_tables=referenced
        )

    def _bind_expression(self, expression: Expression, scope: _Scope, referenced: Set[str]) -> None:
        for node in expression.walk():
            if isinstance(node, ColumnRef):
                if not scope.resolve(node) and self.strict_columns:
                    raise SQLBindingError(f"cannot resolve column reference {node.to_sql()!r}")
            elif isinstance(node, (InExpression, ExistsExpression, ScalarSubquery)):
                subquery = (
                    node.subquery if not isinstance(node, ScalarSubquery) else node.query
                )
                if subquery is not None:
                    bound = self._bind_query(subquery, scope)
                    referenced.update(bound.referenced_tables)

    def _output_column_names(
        self, query: SelectQuery, columns: List[BoundColumn]
    ) -> List[str]:
        names: List[str] = []
        position = 0
        for item in query.items:
            if isinstance(item, Star):
                names.extend(_star_expansion(columns, item.qualifier))
                continue
            if isinstance(item, SelectItem):
                if item.alias:
                    names.append(item.alias)
                elif isinstance(item.expression, ColumnRef):
                    names.append(item.expression.name)
                elif isinstance(item.expression, FunctionCall):
                    names.append(item.expression.name.lower())
                else:
                    names.append(f"col{position + 1}")
            position += 1
        return names


def _star_expansion(columns: List[BoundColumn], qualifier: Optional[str]) -> List[str]:
    """Column names produced by ``*`` / ``alias.*`` given the bound columns."""
    return [
        column.name
        for column in columns
        if qualifier is None or column.qualifier == qualifier
    ]
