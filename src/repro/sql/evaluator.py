"""Expression evaluation over relation rows.

The evaluator implements a pragmatic subset of SQL semantics:

* comparisons involving NULL yield NULL (which behaves as false in WHERE);
* ``AND``/``OR`` use three-valued logic;
* string/number/date comparisons use natural Python ordering, and comparing
  incompatible types yields NULL rather than raising;
* ``IN`` with a multi-column subquery compares against the subquery's first
  column when the left operand is scalar (the paper's examples write
  ``aid NOT IN (SELECT * FROM ...)`` with that intent).
"""

from __future__ import annotations

import functools
import re
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SQLExecutionError
from repro.sql.ast import (
    BetweenExpression,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    ExistsExpression,
    Expression,
    FunctionCall,
    InExpression,
    IsNullExpression,
    LikeExpression,
    Literal,
    Query,
    ScalarSubquery,
    Star,
    UnaryOp,
)
from repro.sql.relation import Relation
from repro.sql.stats import ExecutionStats

__all__ = ["RowScope", "Evaluator"]


class RowScope:
    """Binds the columns of a relation to one concrete row.

    Scopes chain to an optional ``parent`` scope so correlated subqueries can
    reference columns of the enclosing query.
    """

    __slots__ = ("relation", "row", "parent")

    def __init__(
        self,
        relation: Relation,
        row: Tuple[Any, ...],
        parent: Optional["RowScope"] = None,
    ) -> None:
        self.relation = relation
        self.row = row
        self.parent = parent

    def lookup(self, name: str, qualifier: Optional[str]) -> Tuple[bool, Any]:
        """Return (found, value) for a column reference, consulting parents."""
        index = self.relation.try_find_column(name, qualifier)
        if index is not None:
            return True, self.row[index]
        if self.parent is not None:
            return self.parent.lookup(name, qualifier)
        return False, None

    def lookup_positional(self, qualifier: str, position: int) -> Tuple[bool, Any]:
        if self.relation.has_qualifier(qualifier):
            index = self.relation.find_positional(qualifier, position)
            return True, self.row[index]
        if self.parent is not None:
            return self.parent.lookup_positional(qualifier, position)
        return False, None

    def has_qualifier(self, qualifier: str) -> bool:
        if self.relation.has_qualifier(qualifier):
            return True
        if self.parent is not None:
            return self.parent.has_qualifier(qualifier)
        return False


class Evaluator:
    """Evaluates expression ASTs against row scopes.

    ``subquery_executor`` is a callback ``(query, outer_scope) -> Relation``
    provided by the executor so that subqueries (IN, EXISTS, scalar) can be
    evaluated with access to the current row for correlation.
    """

    def __init__(
        self,
        functions,
        subquery_executor: Callable[[Query, Optional[RowScope]], Relation],
        stats: Optional[ExecutionStats] = None,
    ) -> None:
        self.functions = functions
        self.subquery_executor = subquery_executor
        self.stats = stats if stats is not None else ExecutionStats()

    # -- public API -------------------------------------------------------------

    def evaluate(self, expression: Expression, scope: Optional[RowScope]) -> Any:
        self.stats.interpreted_evals += 1
        method = self._DISPATCH.get(type(expression))
        if method is None:
            raise SQLExecutionError(
                f"cannot evaluate expression node {type(expression).__name__}"
            )
        return method(self, expression, scope)

    def evaluate_predicate(self, expression: Expression, scope: Optional[RowScope]) -> bool:
        """Evaluate a boolean expression; NULL is treated as false."""
        return self.evaluate(expression, scope) is True

    # -- node handlers ------------------------------------------------------------

    def _eval_literal(self, node: Literal, scope: Optional[RowScope]) -> Any:
        return node.value

    def _eval_column(self, node: ColumnRef, scope: Optional[RowScope]) -> Any:
        if scope is None:
            raise SQLExecutionError(f"column reference {node.to_sql()!r} outside of a row context")
        if node.is_positional and node.qualifier is not None:
            found, value = scope.lookup_positional(node.qualifier, node.position)
        else:
            found, value = scope.lookup(node.name, node.qualifier)
        if not found:
            raise SQLExecutionError(f"cannot resolve column reference {node.to_sql()!r}")
        return value

    def _eval_star(self, node: Star, scope: Optional[RowScope]) -> Any:
        # Star only appears inside COUNT(*); represent it by a non-null marker.
        return 1

    def _eval_function(self, node: FunctionCall, scope: Optional[RowScope]) -> Any:
        if node.is_aggregate:
            raise SQLExecutionError(
                f"aggregate function {node.name}() used outside of an aggregation context"
            )
        arguments = [self.evaluate(argument, scope) for argument in node.arguments]
        return self.functions.call(node.name, arguments)

    def _eval_unary(self, node: UnaryOp, scope: Optional[RowScope]) -> Any:
        value = self.evaluate(node.operand, scope)
        if node.operator.upper() == "NOT":
            if value is None:
                return None
            return not bool(value)
        if node.operator == "-":
            return None if value is None else -value
        raise SQLExecutionError(f"unsupported unary operator {node.operator!r}")

    def _eval_binary(self, node: BinaryOp, scope: Optional[RowScope]) -> Any:
        operator = node.operator.upper()
        if operator == "AND":
            return _and3(
                _as_bool3(self.evaluate(node.left, scope)),
                lambda: _as_bool3(self.evaluate(node.right, scope)),
            )
        if operator == "OR":
            return _or3(
                _as_bool3(self.evaluate(node.left, scope)),
                lambda: _as_bool3(self.evaluate(node.right, scope)),
            )

        left = self.evaluate(node.left, scope)
        right = self.evaluate(node.right, scope)

        if operator in ("=", "<>", "<", "<=", ">", ">="):
            return _compare(operator, left, right)
        if left is None or right is None:
            return None
        try:
            if operator == "+":
                return left + right
            if operator == "-":
                return left - right
            if operator == "*":
                return left * right
            if operator == "/":
                if right == 0:
                    raise SQLExecutionError("division by zero")
                result = left / right
                return result
            if operator == "%":
                return left % right
        except TypeError as exc:
            raise SQLExecutionError(
                f"type error evaluating {node.to_sql()}: {exc}"
            ) from exc
        raise SQLExecutionError(f"unsupported operator {node.operator!r}")

    def _eval_in(self, node: InExpression, scope: Optional[RowScope]) -> Any:
        left = self.evaluate(node.operand, scope)
        if node.subquery is not None:
            relation = self.subquery_executor(node.subquery, scope)
            if relation.arity == 0:
                candidates: List[Any] = []
            elif relation.arity == 1:
                candidates = [row[0] for row in relation.rows]
            else:
                # Lenient behaviour for "x IN (SELECT * FROM t)": use column 1.
                candidates = [row[0] for row in relation.rows]
        else:
            candidates = [self.evaluate(value, scope) for value in node.values]

        if left is None:
            return None
        found = False
        saw_null = False
        for candidate in candidates:
            if candidate is None:
                saw_null = True
                continue
            if _compare("=", left, candidate) is True:
                found = True
                break
        if node.negated:
            if found:
                return False
            return None if saw_null else True
        if found:
            return True
        return None if saw_null else False

    def _eval_exists(self, node: ExistsExpression, scope: Optional[RowScope]) -> Any:
        relation = self.subquery_executor(node.subquery, scope)
        result = bool(relation.rows)
        return (not result) if node.negated else result

    def _eval_is_null(self, node: IsNullExpression, scope: Optional[RowScope]) -> Any:
        value = self.evaluate(node.operand, scope)
        return (value is not None) if node.negated else (value is None)

    def _eval_between(self, node: BetweenExpression, scope: Optional[RowScope]) -> Any:
        value = self.evaluate(node.operand, scope)
        low = self.evaluate(node.low, scope)
        high = self.evaluate(node.high, scope)
        lower = _compare(">=", value, low)
        upper = _compare("<=", value, high)
        result = _and3(lower, lambda: upper)
        if node.negated:
            return None if result is None else not result
        return result

    def _eval_like(self, node: LikeExpression, scope: Optional[RowScope]) -> Any:
        value = self.evaluate(node.operand, scope)
        pattern = self.evaluate(node.pattern, scope)
        if value is None or pattern is None:
            return None
        regex = _like_to_regex(str(pattern))
        matched = bool(regex.fullmatch(str(value)))
        return (not matched) if node.negated else matched

    def _eval_case(self, node: CaseExpression, scope: Optional[RowScope]) -> Any:
        for condition, value in node.whens:
            if self.evaluate(condition, scope) is True:
                return self.evaluate(value, scope)
        if node.default is not None:
            return self.evaluate(node.default, scope)
        return None

    def _eval_scalar_subquery(self, node: ScalarSubquery, scope: Optional[RowScope]) -> Any:
        relation = self.subquery_executor(node.query, scope)
        if not relation.rows:
            return None
        if len(relation.rows) > 1:
            raise SQLExecutionError("scalar subquery returned more than one row")
        return relation.rows[0][0]

    _DISPATCH = {
        Literal: _eval_literal,
        ColumnRef: _eval_column,
        Star: _eval_star,
        FunctionCall: _eval_function,
        UnaryOp: _eval_unary,
        BinaryOp: _eval_binary,
        InExpression: _eval_in,
        ExistsExpression: _eval_exists,
        IsNullExpression: _eval_is_null,
        BetweenExpression: _eval_between,
        LikeExpression: _eval_like,
        CaseExpression: _eval_case,
        ScalarSubquery: _eval_scalar_subquery,
    }


# ---------------------------------------------------------------------------
# Value comparison helpers (three-valued logic)
# ---------------------------------------------------------------------------


def _as_bool3(value: Any) -> Optional[bool]:
    if value is None:
        return None
    return bool(value)


def _and3(left: Optional[bool], right_thunk: Callable[[], Optional[bool]]) -> Optional[bool]:
    if left is False:
        return False
    right = right_thunk()
    if right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _or3(left: Optional[bool], right_thunk: Callable[[], Optional[bool]]) -> Optional[bool]:
    if left is True:
        return True
    right = right_thunk()
    if right is True:
        return True
    if left is None or right is None:
        return None
    return False


def _compare(operator: str, left: Any, right: Any) -> Optional[bool]:
    """Compare two values with SQL semantics; NULL operands yield NULL."""
    if left is None or right is None:
        return None
    left, right = _normalize_pair(left, right)
    try:
        if operator == "=":
            return left == right
        if operator == "<>":
            return left != right
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
    except TypeError:
        return None
    raise SQLExecutionError(f"unsupported comparison operator {operator!r}")  # pragma: no cover


def _normalize_pair(left: Any, right: Any) -> Tuple[Any, Any]:
    """Make mixed numeric / numeric-string comparisons behave naturally."""
    if isinstance(left, bool) or isinstance(right, bool):
        return left, right
    if isinstance(left, (int, float)) and isinstance(right, str):
        try:
            return left, float(right) if ("." in right or "e" in right.lower()) else int(right)
        except ValueError:
            return str(left), right
    if isinstance(right, (int, float)) and isinstance(left, str):
        normalized_right, normalized_left = _normalize_pair(right, left)
        return normalized_left, normalized_right
    return left, right


@functools.lru_cache(maxsize=512)
def _like_to_regex(pattern: str) -> "re.Pattern":
    """Translate a SQL LIKE pattern into a compiled regular expression."""
    parts: List[str] = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("".join(parts), re.DOTALL)
