"""Abstract syntax tree for the SQL dialect.

The node classes are small immutable-ish dataclasses.  Every expression
node supports :meth:`Expression.walk` so later passes (binder, the Hilda
validator, the compiler's partitioning analysis) can inspect queries
generically, and :meth:`to_sql` so queries can be round-tripped into text
(used by the code generator and by error messages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "Star",
    "FunctionCall",
    "BinaryOp",
    "UnaryOp",
    "InExpression",
    "ExistsExpression",
    "IsNullExpression",
    "BetweenExpression",
    "LikeExpression",
    "CaseExpression",
    "ScalarSubquery",
    "SelectItem",
    "TableRef",
    "SubqueryRef",
    "JoinRef",
    "OrderItem",
    "SelectQuery",
    "UnionQuery",
    "Query",
    "InsertStatement",
    "DeleteStatement",
    "UpdateStatement",
    "Statement",
    "AGGREGATE_FUNCTIONS",
]

#: Function names treated as aggregates by the planner.
AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for all expression nodes."""

    def children(self) -> Sequence["Expression"]:
        return ()

    def walk(self) -> Iterator["Expression"]:
        """Yield this node and all descendant expression nodes (pre-order)."""
        yield self
        for child in self.children():
            yield from child.walk()

    def to_sql(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_sql()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, boolean or NULL."""

    value: object

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A (possibly qualified) column reference.

    ``qualifier`` is the table alias or dotted table name; ``name`` is the
    column name, or a 1-based position written as digits (the paper writes
    ``O.1`` for "the first output column").
    """

    name: str
    qualifier: Optional[str] = None

    @property
    def is_positional(self) -> bool:
        return self.name.isdigit()

    @property
    def position(self) -> int:
        return int(self.name)

    def to_sql(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``alias.*`` in a select list or inside COUNT(*)."""

    qualifier: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.qualifier}.*" if self.qualifier else "*"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar or aggregate function call."""

    name: str
    arguments: Tuple[Expression, ...] = ()
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name.lower() in AGGREGATE_FUNCTIONS

    def children(self) -> Sequence[Expression]:
        return self.arguments

    def to_sql(self) -> str:
        prefix = "DISTINCT " if self.distinct else ""
        args = ", ".join(arg.to_sql() for arg in self.arguments)
        return f"{self.name}({prefix}{args})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operator: arithmetic, comparison, AND/OR."""

    operator: str
    left: Expression
    right: Expression

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.operator} {self.right.to_sql()})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary operator: NOT or arithmetic negation."""

    operator: str
    operand: Expression

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def to_sql(self) -> str:
        if self.operator.upper() == "NOT":
            return f"(NOT {self.operand.to_sql()})"
        return f"({self.operator}{self.operand.to_sql()})"


@dataclass(frozen=True)
class InExpression(Expression):
    """``expr [NOT] IN (subquery)`` or ``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    subquery: Optional["Query"] = None
    values: Tuple[Expression, ...] = ()
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.operand, *self.values)

    def to_sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        if self.subquery is not None:
            return f"({self.operand.to_sql()} {keyword} ({self.subquery.to_sql()}))"
        values = ", ".join(value.to_sql() for value in self.values)
        return f"({self.operand.to_sql()} {keyword} ({values}))"


@dataclass(frozen=True)
class ExistsExpression(Expression):
    """``[NOT] EXISTS (subquery)``."""

    subquery: "Query"
    negated: bool = False

    def to_sql(self) -> str:
        keyword = "NOT EXISTS" if self.negated else "EXISTS"
        return f"({keyword} ({self.subquery.to_sql()}))"


@dataclass(frozen=True)
class IsNullExpression(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def to_sql(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {keyword})"


@dataclass(frozen=True)
class BetweenExpression(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.operand, self.low, self.high)

    def to_sql(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.to_sql()} {keyword} "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )


@dataclass(frozen=True)
class LikeExpression(Expression):
    """``expr [NOT] LIKE pattern`` with standard % and _ wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.operand, self.pattern)

    def to_sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.to_sql()} {keyword} {self.pattern.to_sql()})"


@dataclass(frozen=True)
class CaseExpression(Expression):
    """``CASE WHEN cond THEN value ... [ELSE value] END`` (searched form)."""

    whens: Tuple[Tuple[Expression, Expression], ...]
    default: Optional[Expression] = None

    def children(self) -> Sequence[Expression]:
        nodes: List[Expression] = []
        for condition, value in self.whens:
            nodes.extend((condition, value))
        if self.default is not None:
            nodes.append(self.default)
        return nodes

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, value in self.whens:
            parts.append(f"WHEN {condition.to_sql()} THEN {value.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    """A parenthesized subquery used as a scalar value."""

    query: "Query"

    def to_sql(self) -> str:
        return f"({self.query.to_sql()})"


# ---------------------------------------------------------------------------
# Select structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One entry of a select list: an expression with an optional alias."""

    expression: Expression
    alias: Optional[str] = None

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.expression.to_sql()} AS {self.alias}"
        return self.expression.to_sql()


@dataclass(frozen=True)
class TableRef:
    """A base-table reference with an optional alias.

    ``name`` is the full (possibly dotted) table name as written, e.g.
    ``assign``, ``CourseAdmin.in.assign`` or ``SelectRow.output``.
    """

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        """The name expressions use to qualify columns of this table."""
        return self.alias or self.name

    def to_sql(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class SubqueryRef:
    """A derived table: ``(SELECT ...) alias``."""

    query: "Query"
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias

    def to_sql(self) -> str:
        return f"({self.query.to_sql()}) {self.alias}"


@dataclass(frozen=True)
class JoinRef:
    """An explicit join between two table references."""

    left: "FromItem"
    right: "FromItem"
    join_type: str  # "INNER", "LEFT", "CROSS"
    condition: Optional[Expression] = None

    def to_sql(self) -> str:
        if self.join_type == "CROSS":
            return f"{self.left.to_sql()} CROSS JOIN {self.right.to_sql()}"
        keyword = "LEFT OUTER JOIN" if self.join_type == "LEFT" else "JOIN"
        on_clause = f" ON {self.condition.to_sql()}" if self.condition else ""
        return f"{self.left.to_sql()} {keyword} {self.right.to_sql()}{on_clause}"


FromItem = Union[TableRef, SubqueryRef, JoinRef]


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY entry."""

    expression: Expression
    descending: bool = False

    def to_sql(self) -> str:
        return f"{self.expression.to_sql()} {'DESC' if self.descending else 'ASC'}"


@dataclass(frozen=True)
class SelectQuery:
    """A single SELECT block."""

    items: Tuple[Union[SelectItem, Star], ...]
    from_items: Tuple[FromItem, ...] = ()
    where: Optional[Expression] = None
    group_by: Tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.items))
        if self.from_items:
            parts.append("FROM " + ", ".join(item.to_sql() for item in self.from_items))
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(expr.to_sql() for expr in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(item.to_sql() for item in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)

    # -- analysis helpers used by the binder / Hilda validator ----------------

    def expressions(self) -> Iterator[Expression]:
        """Yield every expression appearing anywhere in this SELECT block."""
        for item in self.items:
            if isinstance(item, SelectItem):
                yield item.expression
            else:
                yield item
        for clause in (self.where, self.having):
            if clause is not None:
                yield clause
        yield from self.group_by
        for order in self.order_by:
            yield order.expression

    def referenced_tables(self) -> List[str]:
        """Names of base tables referenced in FROM clauses (non-recursive)."""
        names: List[str] = []

        def visit(item: FromItem) -> None:
            if isinstance(item, TableRef):
                names.append(item.name)
            elif isinstance(item, JoinRef):
                visit(item.left)
                visit(item.right)
            elif isinstance(item, SubqueryRef):
                names.extend(item.query.referenced_tables())

        for from_item in self.from_items:
            visit(from_item)
        return names


@dataclass(frozen=True)
class UnionQuery:
    """``left UNION [ALL] right``; UNION without ALL removes duplicates."""

    left: "Query"
    right: "Query"
    all: bool = False

    def to_sql(self) -> str:
        keyword = "UNION ALL" if self.all else "UNION"
        return f"{self.left.to_sql()} {keyword} {self.right.to_sql()}"

    def referenced_tables(self) -> List[str]:
        return self.left.referenced_tables() + self.right.referenced_tables()


Query = Union[SelectQuery, UnionQuery]


# ---------------------------------------------------------------------------
# DML statements (used by the hand-coded baseline and the web substrate)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT INTO table [(cols)] VALUES (...), (...)`` or ``INSERT ... SELECT``."""

    table: str
    columns: Tuple[str, ...] = ()
    rows: Tuple[Tuple[Expression, ...], ...] = ()
    query: Optional[Query] = None

    def to_sql(self) -> str:
        columns = f" ({', '.join(self.columns)})" if self.columns else ""
        if self.query is not None:
            return f"INSERT INTO {self.table}{columns} {self.query.to_sql()}"
        rows = ", ".join(
            "(" + ", ".join(value.to_sql() for value in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table}{columns} VALUES {rows}"


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    alias: Optional[str] = None
    where: Optional[Expression] = None

    def to_sql(self) -> str:
        alias = f" {self.alias}" if self.alias else ""
        where = f" WHERE {self.where.to_sql()}" if self.where is not None else ""
        return f"DELETE FROM {self.table}{alias}{where}"


@dataclass(frozen=True)
class UpdateStatement:
    """``UPDATE table SET col = expr, ... [WHERE ...]``."""

    table: str
    assignments: Tuple[Tuple[str, Expression], ...]
    alias: Optional[str] = None
    where: Optional[Expression] = None

    def to_sql(self) -> str:
        alias = f" {self.alias}" if self.alias else ""
        sets = ", ".join(f"{column} = {value.to_sql()}" for column, value in self.assignments)
        where = f" WHERE {self.where.to_sql()}" if self.where is not None else ""
        return f"UPDATE {self.table}{alias} SET {sets}{where}"


Statement = Union[SelectQuery, UnionQuery, InsertStatement, DeleteStatement, UpdateStatement]
