"""Join-order enumeration: stage 3 of the optimizer pipeline.

Works over a *join graph*: one :class:`BaseRelation` per FROM-list leaf
(with its pushed-down single-relation predicates and estimated rows) and
the WHERE equality conjuncts as edges.  Produces a left-deep
:class:`JoinTree` minimizing estimated cost:

* **Dynamic programming** over relation subsets for FROM lists up to
  ``dp_threshold`` relations (the classic System-R left-deep enumeration,
  exact within the cost model);
* a **greedy** ordering above the threshold (start from the cheapest
  relation, repeatedly attach the candidate with the cheapest join step).

Both explore every join method the cost model admits at each step
(hash / index-nested-loop / nested-loop / cross), so the order search and
the operator choice see the same costs; the physical operator selection
(stage 4) re-derives or overrides the per-node choice afterwards.

Ties are broken toward the syntactic FROM order, so equal-cost plans come
out exactly as the heuristic planner would build them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.relational.statistics import TableStatistics
from repro.sql.ast import Expression
from repro.sql.operators import Operator
from repro.sql.optimizer.feedback import join_fingerprint

__all__ = ["BaseRelation", "JoinTree", "JoinOrderEnumerator"]


@dataclass
class BaseRelation:
    """One leaf of the join graph (a FROM-list item plus pushed predicates)."""

    #: Syntactic position in the FROM list (tie-breaking, diagnostics).
    position: int
    #: The planned leaf operator (ScanOp / SubqueryScanOp / ValuesOp).
    operator: Operator
    #: Every name that binds this relation (alias and/or table name).
    names: FrozenSet[str]
    #: The base-table name, when the leaf is a plain scan (else None).
    table_name: Optional[str]
    #: Statistics of the base table (None for derived tables / no stats).
    statistics: Optional[TableStatistics]
    #: Single-relation WHERE conjuncts pushed down onto this leaf.
    pushed: List[Expression] = field(default_factory=list)
    #: Estimated rows before / after the pushed predicates.
    est_base_rows: float = 0.0
    est_rows: float = 0.0
    #: Estimated cost of materializing this leaf (scan or index scan + filter).
    est_cost: float = 0.0
    #: Feedback fingerprint (:mod:`repro.sql.optimizer.feedback`); None when
    #: feedback-driven re-optimization is off.
    fingerprint: Optional[Tuple] = None


@dataclass
class JoinTree:
    """A left-deep join node: an inner tree joined with one base relation.

    ``method`` is the join method the enumerator found cheapest — the
    *initial* physical assignment in PostBOUND's sense, which the physical
    operator selection stage may confirm or override.
    """

    left: Union["JoinTree", BaseRelation]
    right: BaseRelation
    #: Equi-join key expressions (empty for cross joins).
    left_keys: Tuple[Expression, ...] = ()
    right_keys: Tuple[Expression, ...] = ()
    #: The WHERE conjuncts consumed by this join's keys.
    conjuncts: Tuple[Expression, ...] = ()
    method: str = "hash"  # hash | index_nl | nested_loop | cross
    est_rows: float = 0.0
    est_cost: float = 0.0
    #: Feedback fingerprint of this node's (relations, conjuncts) set; None
    #: when feedback-driven re-optimization is off.
    fingerprint: Optional[Tuple] = None

    def leaf_order(self) -> Tuple[int, ...]:
        """The syntactic positions of the leaves, left to right."""
        left = (
            self.left.leaf_order()
            if isinstance(self.left, JoinTree)
            else (self.left.position,)
        )
        return left + (self.right.position,)


@dataclass
class _State:
    """Best plan found for one subset of relations."""

    tree: Union[JoinTree, BaseRelation]
    names: FrozenSet[str]
    rows: float
    cost: float
    used: FrozenSet[int]  # ids of consumed conjuncts
    order: Tuple[int, ...]
    #: Frequency profile: qualifier -> worst-case duplication factor of one
    #: base row inside this intermediate (pessimistic estimator only).
    profile: Dict[str, float] = field(default_factory=dict)
    #: Feedback-fingerprint material: the leaf fingerprints joined so far
    #: and the repr-fingerprints of the conjuncts consumed (empty tuples
    #: when feedback is off).
    leaves: Tuple = ()
    conjunct_reprs: Tuple[str, ...] = ()


class JoinOrderEnumerator:
    """Searches join orders; see the module docstring.

    ``index_joinable(relation, right_keys)`` reports whether an
    index-nested-loop join may probe ``relation`` on ``right_keys`` (the
    planner supplies the catalog/auto-index admission rules), letting the
    enumerator price that method only where stage 4 could actually build it.
    """

    def __init__(
        self,
        estimator,
        cost_model,
        dp_threshold: int,
        index_joinable: Callable[[BaseRelation, Sequence[Expression]], bool],
        find_equi_keys: Callable,
    ) -> None:
        self.estimator = estimator
        self.cost_model = cost_model
        self.dp_threshold = dp_threshold
        self.index_joinable = index_joinable
        self.find_equi_keys = find_equi_keys

    # -- entry point ----------------------------------------------------------

    def order(
        self,
        relations: Sequence[BaseRelation],
        join_conjuncts: List[Expression],
        stats_by_qualifier: Dict[str, Optional[TableStatistics]],
    ) -> Tuple[Union[JoinTree, BaseRelation], List[Expression]]:
        """The cheapest left-deep join tree and the conjuncts it left over."""
        self._stats_by_qualifier = stats_by_qualifier
        if len(relations) == 1:
            return relations[0], list(join_conjuncts)
        if len(relations) <= self.dp_threshold:
            final = self._dynamic_programming(relations, join_conjuncts)
        else:
            final = self._greedy(relations, join_conjuncts)
        remaining = [
            conjunct for conjunct in join_conjuncts if id(conjunct) not in final.used
        ]
        return final.tree, remaining

    # -- the two search strategies -------------------------------------------

    def _dynamic_programming(
        self, relations: Sequence[BaseRelation], conjuncts: List[Expression]
    ) -> _State:
        best: Dict[FrozenSet[int], _State] = {
            frozenset({relation.position}): self._leaf_state(relation)
            for relation in relations
        }
        by_position = {relation.position: relation for relation in relations}
        positions = frozenset(by_position)
        for size in range(2, len(relations) + 1):
            layer: Dict[FrozenSet[int], _State] = {}
            for subset, state in best.items():
                if len(subset) != size - 1:
                    continue
                for position in positions - subset:
                    candidate = by_position[position]
                    new_state = self._extend(state, candidate, conjuncts)
                    key = subset | {position}
                    incumbent = layer.get(key)
                    if incumbent is None or self._better(new_state, incumbent):
                        layer[key] = new_state
            best.update(layer)
        return best[positions]

    def _greedy(
        self, relations: Sequence[BaseRelation], conjuncts: List[Expression]
    ) -> _State:
        remaining = list(relations)
        # Start from the relation with the fewest estimated rows (syntactic
        # position breaks ties), the standard greedy seed.
        start = min(remaining, key=lambda rel: (rel.est_rows, rel.position))
        remaining.remove(start)
        state = self._leaf_state(start)
        while remaining:
            scored = [
                (self._extend(state, candidate, conjuncts), candidate)
                for candidate in remaining
            ]
            next_state, chosen = min(
                scored, key=lambda pair: (pair[0].cost, pair[1].position)
            )
            state = next_state
            remaining.remove(chosen)
        return state

    # -- state transitions ----------------------------------------------------

    def _leaf_state(self, relation: BaseRelation) -> _State:
        return _State(
            tree=relation,
            names=relation.names,
            rows=relation.est_rows,
            cost=relation.est_cost,
            used=frozenset(),
            order=(relation.position,),
            profile=self.estimator.leaf_profile(relation),
            leaves=(relation.fingerprint,) if relation.fingerprint else (),
            conjunct_reprs=(),
        )

    def _extend(
        self, state: _State, candidate: BaseRelation, conjuncts: List[Expression]
    ) -> _State:
        available = [
            conjunct for conjunct in conjuncts if id(conjunct) not in state.used
        ]
        keys = self.find_equi_keys(available, state.names, candidate.names)
        if keys is None:
            left_keys: Tuple[Expression, ...] = ()
            right_keys: Tuple[Expression, ...] = ()
            used_conjuncts: Tuple[Expression, ...] = ()
        else:
            left_list, right_list, used_list = keys
            left_keys = tuple(left_list)
            right_keys = tuple(right_list)
            used_conjuncts = tuple(used_list)

        # Fingerprint of the joined node: order-free over (leaves, consumed
        # conjuncts), so feedback recorded under one join order prices every
        # other order of the same node (tracked only when feedback is on).
        fingerprint = None
        leaves = state.leaves
        conjunct_reprs = state.conjunct_reprs
        if state.leaves and candidate.fingerprint:
            leaves = state.leaves + (candidate.fingerprint,)
            conjunct_reprs = state.conjunct_reprs + tuple(
                repr(conjunct) for conjunct in used_conjuncts
            )
            fingerprint = join_fingerprint(leaves, conjunct_reprs)

        output_rows, profile = self.estimator.join_rows(
            left_rows=state.rows,
            candidate=candidate,
            left_keys=left_keys,
            right_keys=right_keys,
            stats_by_qualifier=self._stats_by_qualifier,
            left_profile=state.profile,
            fingerprint=fingerprint,
        )

        index_ok = (
            bool(right_keys)
            and not candidate.pushed
            and self.index_joinable(candidate, right_keys)
        )
        methods = self.cost_model.join_candidates(
            left_rows=state.rows,
            right_rows=candidate.est_rows,
            output_rows=output_rows,
            has_equi_keys=bool(right_keys),
            index_joinable=index_ok,
        )
        chosen = min(methods, key=lambda method: method.cost)
        step_cost = chosen.cost + (candidate.est_cost if chosen.materializes_right else 0.0)
        tree = JoinTree(
            left=state.tree,
            right=candidate,
            left_keys=left_keys,
            right_keys=right_keys,
            conjuncts=used_conjuncts,
            method=chosen.method,
            est_rows=output_rows,
            est_cost=state.cost + step_cost,
            fingerprint=fingerprint,
        )
        return _State(
            tree=tree,
            names=state.names | candidate.names,
            rows=output_rows,
            cost=state.cost + step_cost,
            used=state.used | {id(conjunct) for conjunct in used_conjuncts},
            order=state.order + (candidate.position,),
            profile=dict(profile),
            leaves=leaves,
            conjunct_reprs=conjunct_reprs,
        )

    @staticmethod
    def _better(challenger: _State, incumbent: _State) -> bool:
        """Strictly cheaper, or equal cost and closer to syntactic order."""
        if challenger.cost < incumbent.cost - 1e-9:
            return True
        if challenger.cost > incumbent.cost + 1e-9:
            return False
        return challenger.order < incumbent.order
