"""The cost-based planner: orchestrates the staged optimizer pipeline.

:class:`CostBasedPlanner` subclasses the heuristic
:class:`~repro.sql.planner.Planner` and overrides exactly one hook —
:meth:`~repro.sql.planner.Planner._optimize_access_paths` — so every other
planning concern (aggregates, ordering, implicit tables, derived tables,
explicit ``JOIN ... ON`` shapes) is shared between the two strategies.

For the comma-join shape (a cross chain of FROM leaves, which is how Hilda
programs and the paper's activation queries express multi-table joins) the
hook runs the four stages of ``docs/optimizer.md``:

1. **statistics** — each base table's incrementally maintained
   :class:`~repro.relational.statistics.TableStatistics`;
2. **cardinality & cost** — selectivity of pushed-down predicates, join
   selectivities, per-operator cost formulas;
3. **join ordering** — DP/greedy enumeration over the join graph;
4. **physical operator selection** — chainable PostBOUND-style assignment
   of scan/index-scan and hash/index-NL/nested-loop operators.

Single-relation predicates are pushed below the joins they precede
(conservatively: only fully qualified, subquery-free conjuncts move), and
each constructed operator is annotated with estimated rows and cumulative
cost, which EXPLAIN renders.

Queries whose shape the pipeline does not cover (explicit joins, single
relations) fall back to the heuristic rewrites, so the cost-based planner
is a strict superset of the heuristic one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.config import OptimizerConfig
from repro.errors import UnknownTableError
from repro.sql.ast import ColumnRef, Expression, SelectQuery, Star
from repro.sql.operators import (
    FilterOp,
    HashJoinOp,
    IndexNestedLoopJoinOp,
    IndexScanOp,
    NestedLoopJoinOp,
    Operator,
    ScanOp,
    SubqueryScanOp,
    ValuesOp,
)
from repro.sql.optimizer.cardinality import CardinalityEstimator, PessimisticEstimator
from repro.sql.optimizer.cost import CostModel
from repro.sql.optimizer.feedback import leaf_fingerprint
from repro.sql.optimizer.joins import BaseRelation, JoinOrderEnumerator, JoinTree
from repro.sql.optimizer.physical import (
    CostBasedOperatorSelection,
    PhysicalOperatorSelection,
    SelectionContext,
)
from repro.sql.planner import (
    Planner,
    _combine_conjuncts,
    _expression_subquery,
    _find_equi_keys,
    _flatten_cross_chain,
    _operator_binding_names,
)

__all__ = ["CostBasedPlanner"]


class CostBasedPlanner(Planner):
    """Statistics-driven planner; see the module docstring.

    Parameters mirror :class:`~repro.sql.planner.Planner`, plus the
    :class:`~repro.config.OptimizerConfig` (DP threshold) and an optional
    :class:`~repro.sql.optimizer.PhysicalOperatorSelection` chain replacing
    the default cost-based one (``docs/optimizer.md`` § "Plugging in a
    custom physical selection").

    After :meth:`plan` returns, :attr:`stats_fingerprint` holds the
    ``table name -> size class`` pairs the plan's decisions depend on; the
    executor stores it next to the cached plan and re-plans when any
    table's size class has moved (see ``SQLCaches``).
    """

    def __init__(
        self,
        catalog,
        optimize: bool = True,
        auto_index: bool = False,
        config: Optional[OptimizerConfig] = None,
        physical_selection: Optional[PhysicalOperatorSelection] = None,
        cost_model: Optional[CostModel] = None,
        feedback=None,
    ) -> None:
        super().__init__(catalog, optimize=optimize, auto_index=auto_index)
        self.optimizer_config = config if config is not None else OptimizerConfig()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        #: The engine's FeedbackCache when feedback-driven re-optimization
        #: is enabled (docs/optimizer.md); observed cardinalities override
        #: the estimator's formulas per plan-node fingerprint.
        self.feedback = feedback
        self.estimator = self._make_estimator()
        self.physical_selection = (
            physical_selection
            if physical_selection is not None
            else CostBasedOperatorSelection()
        )
        #: table name -> size class consulted while planning (plan-cache key).
        self.stats_fingerprint: Dict[str, int] = {}
        #: id(BaseRelation) -> (IndexScanOp, remaining pushed, matched rows).
        self._leaf_index_plans: Dict[int, Tuple[Operator, List[Expression], float]] = {}
        #: True while inside a plan() call (it re-enters itself for FROM
        #: subqueries and UNION branches; only the outermost entry resets
        #: the fingerprint, so a reused planner starts each plan fresh).
        self._planning = False

    def _make_estimator(self) -> CardinalityEstimator:
        """The estimator the config selects, wired to the feedback cache."""
        if self.optimizer_config.estimator == "pessimistic":
            return PessimisticEstimator(self.catalog, feedback=self.feedback)
        return CardinalityEstimator(self.catalog, feedback=self.feedback)

    # -- entry point ----------------------------------------------------------

    def plan(self, query) -> Operator:
        outermost = not self._planning
        if outermost:
            self._planning = True
            self.stats_fingerprint = {}
            # Fresh statistics snapshots per plan: a reused planner must
            # see current table sizes, not the ones cached last time.
            self.estimator = self._make_estimator()
        try:
            plan = super().plan(query)
        finally:
            if outermost:
                self._planning = False
        self._propagate_estimates(plan)
        return plan

    # -- the staged pipeline ---------------------------------------------------

    def _optimize_access_paths(
        self,
        plan: Operator,
        conjuncts: List[Expression],
        bound_names: Set[str],
        query: SelectQuery,
    ) -> Tuple[Operator, List[Expression]]:
        chain = _flatten_cross_chain(plan)
        if chain is None or len(chain) < 2:
            # Not the comma-join shape (single relation, explicit JOIN ... ON):
            # the heuristic rewrites already handle it optimally enough.
            return super()._optimize_access_paths(plan, conjuncts, bound_names, query)
        if any(isinstance(item, Star) and item.qualifier is None for item in query.items):
            # SELECT * materializes columns in join order; reordering the
            # joins would permute the output, so an unqualified star pins
            # the syntactic (heuristic) plan.  Qualified stars (``S.*``)
            # expand per binding and are safe to reorder under.
            return super()._optimize_access_paths(plan, conjuncts, bound_names, query)

        # Stage 1+2: build the join graph with statistics and estimates.
        # The leaf-index memo is keyed by object identity, so it must not
        # survive into a later invocation where a recycled id could alias.
        self._leaf_index_plans.clear()
        relations = [
            self._base_relation(position, leaf) for position, leaf in enumerate(chain)
        ]
        residual: List[Expression] = []
        join_conjuncts: List[Expression] = []
        for conjunct in conjuncts:
            target = self._pushdown_target(conjunct, relations)
            if target is _RESIDUAL:
                residual.append(conjunct)
            elif target is _JOIN:
                join_conjuncts.append(conjunct)
            else:
                target.pushed.append(conjunct)
        track_feedback = self.feedback is not None
        for relation in relations:
            if track_feedback:
                relation.fingerprint = leaf_fingerprint(
                    relation.names,
                    relation.table_name,
                    relation.statistics.size_class
                    if relation.statistics is not None
                    else None,
                    (repr(conjunct) for conjunct in relation.pushed),
                )
            self._estimate_leaf(relation)
        stats_by_qualifier = {
            name: relation.statistics
            for relation in relations
            for name in relation.names
        }

        # Stage 3: join-order enumeration.
        enumerator = JoinOrderEnumerator(
            estimator=self.estimator,
            cost_model=self.cost_model,
            dp_threshold=self.optimizer_config.dp_threshold,
            index_joinable=self._index_join_admissible,
            find_equi_keys=_find_equi_keys,
        )
        tree, leftover = enumerator.order(relations, join_conjuncts, stats_by_qualifier)

        # Stage 4: physical operator selection (chainable) and plan build.
        context = SelectionContext(
            cost_model=self.cost_model,
            index_joinable=self._index_join_admissible,
            index_scannable=lambda rel: id(rel) in self._leaf_index_plans,
        )
        assignment = self.physical_selection.select_operators(tree, context)
        built = self._build_tree(tree, assignment)
        return built, leftover + residual

    # -- stage 1: the join graph ------------------------------------------------

    def _base_relation(self, position: int, leaf: Operator) -> BaseRelation:
        names = frozenset(_operator_binding_names(leaf))
        table_name = leaf.table_name if isinstance(leaf, ScanOp) else None
        statistics = self.estimator.table_statistics(table_name)
        if statistics is not None and table_name is not None:
            self.stats_fingerprint[table_name] = statistics.size_class
        return BaseRelation(
            position=position,
            operator=leaf,
            names=names,
            table_name=table_name,
            statistics=statistics,
        )

    def _pushdown_target(self, conjunct: Expression, relations: List[BaseRelation]):
        """Where a WHERE conjunct may run: one relation, the joins, or on top.

        Pushdown is conservative: a conjunct moves below the joins only
        when every column reference is qualified and all qualifiers bind a
        single relation, and it contains no subquery (whose table
        references :meth:`Expression.walk` does not expose).
        """
        qualifiers: Set[str] = set()
        for node in conjunct.walk():
            if _expression_subquery(node) is not None:
                return _RESIDUAL
            if isinstance(node, ColumnRef):
                if node.qualifier is None or node.is_positional:
                    return _RESIDUAL
                qualifiers.add(node.qualifier)
        if not qualifiers:
            return _RESIDUAL
        owners = [
            relation for relation in relations if qualifiers & set(relation.names)
        ]
        if len(owners) == 1 and qualifiers <= set(owners[0].names):
            return owners[0]
        covered = set()
        for owner in owners:
            covered |= set(owner.names)
        if len(owners) >= 2 and qualifiers <= covered:
            return _JOIN
        return _RESIDUAL  # references an enclosing scope or unknown names

    # -- stage 2: leaf estimates -------------------------------------------------

    def _estimate_leaf(self, relation: BaseRelation) -> None:
        leaf = relation.operator
        if isinstance(leaf, ScanOp):
            base_rows = (
                float(relation.statistics.row_count)
                if relation.statistics is not None
                else self.estimator.DEFAULT_ROWS
            )
        elif isinstance(leaf, ValuesOp):
            base_rows = float(len(leaf.rows))
        elif isinstance(leaf, SubqueryScanOp) and leaf.plan.estimated_rows is not None:
            base_rows = float(leaf.plan.estimated_rows)
        else:
            base_rows = self.estimator.DEFAULT_ROWS
        relation.est_base_rows = base_rows

        selectivity = self.estimator.conjunction_selectivity(
            relation.pushed, relation.statistics
        )
        relation.est_rows = self.estimator.leaf_rows(
            base_rows * selectivity, relation.fingerprint
        )
        scan_cost = self.cost_model.scan(base_rows)
        if relation.pushed:
            scan_cost += self.cost_model.filter(base_rows, len(relation.pushed))
        relation.est_cost = scan_cost

        # An index scan may answer some pushed equality conjuncts directly.
        if isinstance(leaf, ScanOp) and relation.pushed:
            index_op, remaining = self._try_index_scan(
                leaf, relation.pushed, allow_unqualified=False
            )
            if index_op is not None:
                consumed = len(relation.pushed) - len(remaining)
                matched = base_rows * self._consumed_selectivity(relation, remaining)
                index_cost = self.cost_model.index_scan(matched)
                if remaining:
                    index_cost += self.cost_model.filter(matched, len(remaining))
                self._leaf_index_plans[id(relation)] = (index_op, remaining, matched)
                if consumed and index_cost < relation.est_cost:
                    relation.est_cost = index_cost

    def _consumed_selectivity(
        self, relation: BaseRelation, remaining: List[Expression]
    ) -> float:
        """Selectivity of the pushed conjuncts an index scan consumed."""
        remaining_ids = {id(conjunct) for conjunct in remaining}
        consumed = [
            conjunct
            for conjunct in relation.pushed
            if id(conjunct) not in remaining_ids
        ]
        return self.estimator.conjunction_selectivity(consumed, relation.statistics)

    # -- index-join admission (shared with stages 3 and 4) ------------------------

    def _index_join_admissible(self, relation: BaseRelation, right_keys) -> bool:
        """May an index-nested-loop join probe ``relation`` on these keys?

        Mirrors :meth:`Planner._try_index_join`'s checks without building
        the operator: the relation must be a bare base-table scan and every
        key a plain column of it, with an existing index or ``auto_index``.
        """
        if not isinstance(relation.operator, ScanOp) or self.catalog is None:
            return False
        try:
            table = self.catalog.resolve_table(relation.operator.table_name)
        except UnknownTableError:
            return False
        columns: List[str] = []
        for expr in right_keys:
            if (
                not isinstance(expr, ColumnRef)
                or expr.is_positional
                or expr.qualifier not in relation.names
                or not table.schema.has_column(expr.name)
            ):
                return False
            columns.append(expr.name)
        if len(set(columns)) != len(columns):
            return False
        return table.has_index(tuple(sorted(columns, key=table.schema.column_position))) or (
            self.auto_index
        )

    # -- plan construction --------------------------------------------------------

    def _build_tree(self, node, assignment) -> Operator:
        if isinstance(node, BaseRelation):
            return self._build_leaf(node, assignment)
        left_op = self._build_tree(node.left, assignment)
        method = assignment.join_method(node) or node.method
        has_keys = bool(node.left_keys)

        if method == "index_nl" and has_keys and not node.right.pushed:
            index_join = self._try_index_join(
                left_op,
                node.right.operator,
                node.left_keys,
                node.right_keys,
                residual=None,
            )
            if index_join is not None:
                index_join.feedback_key = node.fingerprint
                return self._annotate(index_join, node.est_rows, node.est_cost)
            method = "hash"  # repair an inadmissible assignment
        elif method == "index_nl":
            method = "hash"

        right_op = self._build_leaf(node.right, assignment)
        if has_keys and method == "hash":
            joined: Operator = HashJoinOp(
                left_op,
                right_op,
                left_keys=node.left_keys,
                right_keys=node.right_keys,
                join_type="INNER",
            )
        elif has_keys:
            # nested_loop (or a repaired "cross" that must still apply its
            # consumed conjuncts): evaluate the keys as a join condition.
            joined = NestedLoopJoinOp(
                left_op,
                right_op,
                join_type="INNER",
                condition=_combine_conjuncts(list(node.conjuncts)),
            )
        else:
            joined = NestedLoopJoinOp(left_op, right_op, join_type="CROSS")
        joined.feedback_key = node.fingerprint
        return self._annotate(joined, node.est_rows, node.est_cost)

    def _build_leaf(self, relation: BaseRelation, assignment) -> Operator:
        method = assignment.scan_method(relation) or "scan"
        index_plan = self._leaf_index_plans.get(id(relation))
        if method == "index_scan" and index_plan is not None:
            index_op, remaining, matched = index_plan
            op = self._annotate(index_op, matched, self.cost_model.index_scan(matched))
            if remaining:
                op = FilterOp(op, _combine_conjuncts(remaining))
                op = self._annotate(op, relation.est_rows, relation.est_cost)
            op.feedback_key = relation.fingerprint
            return op
        op = self._annotate(
            relation.operator,
            relation.est_base_rows,
            self.cost_model.scan(relation.est_base_rows),
        )
        if relation.pushed:
            op = FilterOp(op, _combine_conjuncts(relation.pushed))
            op = self._annotate(op, relation.est_rows, relation.est_cost)
        op.feedback_key = relation.fingerprint
        return op

    @staticmethod
    def _annotate(op: Operator, rows: float, cost: float) -> Operator:
        op.estimated_rows = rows
        op.estimated_cost = cost
        return op

    # -- estimate propagation ------------------------------------------------------

    def _propagate_estimates(self, plan: Operator) -> None:
        """Fill in estimates for operators above (or outside) the join tree.

        The staged pipeline annotates what it builds; the surrounding
        structure (projection, sort, aggregation, the residual filter) and
        heuristic-fallback shapes get rough estimates here so EXPLAIN reads
        uniformly under the cost strategy.
        """
        for child in plan.children():
            self._propagate_estimates(child)
        if plan.estimated_rows is not None:
            return
        child_rows = [
            child.estimated_rows
            for child in plan.children()
            if child.estimated_rows is not None
        ]
        child_cost = sum(
            child.estimated_cost or 0.0
            for child in plan.children()
            if child.estimated_rows is not None
        )
        # Under the pessimistic estimator every fallback below must stay a
        # sound upper bound, so the average-case default selectivities are
        # replaced by "keeps everything" / cross-product caps.
        pessimistic = self.estimator.pessimistic
        rows: Optional[float] = None
        if isinstance(plan, ScanOp):
            rows = self.estimator.base_rows(plan.table_name)
            child_cost = self.cost_model.scan(rows)
        elif isinstance(plan, IndexScanOp):
            stats = self.estimator.table_statistics(plan.table_name)
            base = float(stats.row_count) if stats is not None else self.estimator.DEFAULT_ROWS
            if pessimistic:
                # One probe returns at most the key columns' top frequency.
                frequencies = [
                    float(stats.column(column).max_frequency)
                    for column in plan.key_columns
                    if stats is not None and stats.column(column) is not None
                ] if stats is not None else []
                rows = min(frequencies) if frequencies else base
            else:
                rows = base * (self.estimator.DEFAULT_EQUALITY ** len(plan.key_columns))
            child_cost = self.cost_model.index_scan(rows)
        elif isinstance(plan, ValuesOp):
            rows = float(len(plan.rows))
        elif len(child_rows) != len(plan.children()) or not child_rows:
            return  # some child has no estimate: leave this subtree blank
        elif isinstance(plan, FilterOp):
            rows = child_rows[0] * (1.0 if pessimistic else self.estimator.DEFAULT)
        elif isinstance(plan, IndexNestedLoopJoinOp):
            right = self.estimator.base_rows(plan.table_name)
            rows = child_rows[0] * right
            if not pessimistic:
                rows *= self.estimator.DEFAULT_JOIN
        elif isinstance(plan, HashJoinOp):
            rows = child_rows[0] * child_rows[1]
            if pessimistic:
                if plan.join_type == "LEFT":
                    rows = max(child_rows[0], rows)
            else:
                rows *= self.estimator.DEFAULT_JOIN
        elif isinstance(plan, NestedLoopJoinOp):
            pairs = child_rows[0] * child_rows[1]
            if plan.join_type == "CROSS":
                rows = pairs
            elif pessimistic:
                # INNER keeps at most the cross product; LEFT additionally
                # keeps every unmatched left row.
                rows = pairs
                if plan.join_type == "LEFT":
                    rows = max(child_rows[0], pairs)
            else:
                rows = pairs * self.estimator.DEFAULT_JOIN
                if plan.join_type == "LEFT":
                    rows = max(rows, child_rows[0])
        else:
            rows = self._structural_estimate(plan, child_rows)
        if rows is None:
            return
        self._annotate(plan, rows, child_cost + rows * self.cost_model.OUTPUT_ROW)

    def _structural_estimate(
        self, plan: Operator, child_rows: List[float]
    ) -> Optional[float]:
        from repro.sql.operators import (
            AggregateOp,
            DistinctOp,
            LimitOp,
            ProjectOp,
            SortOp,
            UnionOp,
        )

        if isinstance(plan, (ProjectOp, SortOp, DistinctOp, SubqueryScanOp)):
            return child_rows[0]
        if isinstance(plan, LimitOp):
            return min(float(plan.limit), child_rows[0])
        if isinstance(plan, AggregateOp):
            if plan.group_by:
                if self.estimator.pessimistic:
                    return child_rows[0]  # at most one group per input row
                return max(1.0, child_rows[0] * 0.1)
            return 1.0
        if isinstance(plan, UnionOp):
            return sum(child_rows)
        return None


#: Sentinels for conjunct classification.
_RESIDUAL = object()
_JOIN = object()
