"""The cost model: abstract execution-cost formulas over row estimates.

Costs are unitless "work" numbers used only to *compare* candidate plans;
they roughly count row touches, weighted so that the known constant-factor
differences between operators (hash-table builds vs. index probes vs.
nested-loop pairs) order plans the way wall-clock does on this engine.
The absolute values are meaningless — only the ordering matters.

Stage 2 of the optimizer pipeline (``docs/optimizer.md``): consumed by the
join-order enumerator (stage 3) to rank orders and by the physical operator
selection (stage 4) to pick join algorithms and access paths.
"""

from __future__ import annotations

__all__ = ["CostModel", "JoinMethodCost"]


class JoinMethodCost:
    """One costed join-method candidate: ``(method, incremental cost)``.

    ``materializes_right`` is False for index-nested-loop joins, which probe
    the right table's hash index directly instead of scanning it — the right
    relation's own scan/filter cost must then *not* be charged.
    """

    __slots__ = ("method", "cost", "materializes_right")

    def __init__(self, method: str, cost: float, materializes_right: bool = True) -> None:
        self.method = method
        self.cost = cost
        self.materializes_right = materializes_right

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JoinMethodCost({self.method}, {self.cost:.1f})"


class CostModel:
    """Per-row work weights for the physical operators of this engine.

    The defaults reflect measured relative costs: full scans and hash
    probes touch each row once; hash builds pay dictionary insertion on
    top; nested loops touch every pair; index probes cost a bit more than
    one row touch but replace a whole build side.
    """

    #: Reading one row out of a full table scan.
    SCAN_ROW = 1.0
    #: Evaluating one predicate conjunct against one row.
    FILTER_ROW = 0.1
    #: Hash-index point lookup (per probe, excluding matched-row touches).
    INDEX_PROBE = 2.0
    #: Inserting one row into a hash-join build table.
    HASH_BUILD_ROW = 1.5
    #: Probing the build table with one outer row.
    HASH_PROBE_ROW = 1.0
    #: Evaluating one (left, right) candidate pair in a nested-loop join.
    #: A pair evaluation costs at least as much as a hash probe (it runs
    #: the full join condition), so hash joins win whenever the build side
    #: has more than a row or two — matching both measured behaviour and
    #: the heuristic planner's unconditional preference for hash joins.
    NESTED_LOOP_PAIR = 1.0
    #: Materializing one output row (common to every join method).
    OUTPUT_ROW = 0.2

    # -- access paths ---------------------------------------------------------

    def scan(self, rows: float) -> float:
        return rows * self.SCAN_ROW

    def index_scan(self, matched_rows: float) -> float:
        return self.INDEX_PROBE + matched_rows * self.SCAN_ROW

    def filter(self, input_rows: float, n_conjuncts: int) -> float:
        return input_rows * self.FILTER_ROW * max(1, n_conjuncts)

    # -- join methods ---------------------------------------------------------

    def hash_join(self, left_rows: float, right_rows: float, output_rows: float) -> float:
        return (
            right_rows * self.HASH_BUILD_ROW
            + left_rows * self.HASH_PROBE_ROW
            + output_rows * self.OUTPUT_ROW
        )

    def index_nested_loop_join(self, left_rows: float, output_rows: float) -> float:
        return left_rows * self.INDEX_PROBE + output_rows * self.OUTPUT_ROW

    def nested_loop_join(
        self, left_rows: float, right_rows: float, output_rows: float
    ) -> float:
        return left_rows * right_rows * self.NESTED_LOOP_PAIR + output_rows * self.OUTPUT_ROW

    def cross_join(self, left_rows: float, right_rows: float) -> float:
        pairs = left_rows * right_rows
        return pairs * self.NESTED_LOOP_PAIR + pairs * self.OUTPUT_ROW

    # -- method choice --------------------------------------------------------

    def join_candidates(
        self,
        left_rows: float,
        right_rows: float,
        output_rows: float,
        has_equi_keys: bool,
        index_joinable: bool,
    ):
        """Every admissible join method for one step, each with its cost.

        The caller (enumerator or physical selection) picks the minimum; a
        chained :class:`~repro.sql.optimizer.PhysicalOperatorSelection` may
        override the choice afterwards.
        """
        candidates = []
        if has_equi_keys:
            if index_joinable:
                candidates.append(
                    JoinMethodCost(
                        "index_nl",
                        self.index_nested_loop_join(left_rows, output_rows),
                        materializes_right=False,
                    )
                )
            candidates.append(
                JoinMethodCost(
                    "hash", self.hash_join(left_rows, right_rows, output_rows)
                )
            )
            candidates.append(
                JoinMethodCost(
                    "nested_loop",
                    self.nested_loop_join(left_rows, right_rows, output_rows),
                )
            )
        else:
            candidates.append(
                JoinMethodCost("cross", self.cross_join(left_rows, right_rows))
            )
        return candidates
