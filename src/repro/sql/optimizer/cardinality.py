"""Cardinality estimation over the tables' incremental statistics.

Stage 2 of the optimizer pipeline (``docs/optimizer.md``): turns the raw
:class:`~repro.relational.statistics.TableStatistics` maintained by the
relational layer into row-count estimates for scans, filtered scans and
joins.  Two estimators implement the stage:

* :class:`CardinalityEstimator` — the classic System-R formulas, sharpened
  by most-common-value lists:

  - equality against a constant: the MCV entry's exact frequency when the
    literal is in the column's MCV list, the average frequency of the
    values *outside* the list when it is not, ``1 / distinct(column)``
    without MCVs;
  - range comparison: a fixed 1/3;
  - equi-join: ``1 / max(distinct(left key), distinct(right key))``;
  - anything unrecognised: a fixed default selectivity.

* :class:`PessimisticEstimator` — UES-style **upper bounds**
  (``OptimizerConfig.estimator="pessimistic"``): every estimate is a
  guaranteed cap on the actual row count, with join fanout bounded by the
  join keys' top frequencies (``docs/optimizer.md`` § "Pessimistic upper
  bounds").  Ordering by bounds caps worst-case blowup on skewed data at
  the price of pessimism on well-behaved data.

Both consult the engine's :class:`~repro.sql.optimizer.feedback.FeedbackCache`
(when feedback is enabled) *before* their formulas: a plan node whose true
cardinality was observed on a previous execution is priced with the truth.

Estimates are never exact — their only job is to order candidate join
trees.  EXPLAIN ANALYZE (``docs/optimizer.md`` § "Reading estimates")
reports the q-error of every estimate against actual rows.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import UnknownTableError
from repro.relational.statistics import ColumnStatistics, TableStatistics
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expression,
    IsNullExpression,
    Literal,
    UnaryOp,
)

__all__ = ["CardinalityEstimator", "PessimisticEstimator"]

#: Comparison operators estimated with the fixed range selectivity.
_RANGE_OPERATORS = {"<", "<=", ">", ">="}


class CardinalityEstimator:
    """Estimates row counts from per-table statistics.

    The estimator resolves base tables through ``catalog`` and tolerates
    missing statistics everywhere (derived tables, catalogs serving
    non-:class:`~repro.relational.table.Table` objects), falling back to
    fixed default selectivities, so it can run against any catalog the
    executor accepts.

    ``feedback`` is the engine's
    :class:`~repro.sql.optimizer.feedback.FeedbackCache` (None when
    feedback-driven re-optimization is off): observed true cardinalities
    override the formulas per plan-node fingerprint.
    """

    #: True on estimators whose row estimates are guaranteed upper bounds.
    pessimistic = False

    #: Selectivity of an equality whose column has no statistics.
    DEFAULT_EQUALITY = 0.1
    #: Selectivity of a range comparison.
    RANGE = 1.0 / 3.0
    #: Selectivity of ``<>``.
    INEQUALITY = 0.9
    #: Selectivity of an unrecognised predicate.
    DEFAULT = 0.25
    #: Selectivity of an equi-join whose keys have no statistics.
    DEFAULT_JOIN = 0.1
    #: Assumed size of a relation without statistics (derived tables).
    DEFAULT_ROWS = 1000.0

    def __init__(self, catalog, feedback=None) -> None:
        self.catalog = catalog
        self.feedback = feedback
        self._stats_cache: Dict[str, Optional[TableStatistics]] = {}

    # -- base tables ----------------------------------------------------------

    def table_statistics(self, table_name: Optional[str]) -> Optional[TableStatistics]:
        """The statistics snapshot of a base table (None when unavailable)."""
        if table_name is None or self.catalog is None:
            return None
        if table_name not in self._stats_cache:
            stats: Optional[TableStatistics] = None
            try:
                table = self.catalog.resolve_table(table_name)
            except UnknownTableError:
                table = None
            if table is not None and hasattr(table, "statistics"):
                stats = table.statistics()
            self._stats_cache[table_name] = stats
        return self._stats_cache[table_name]

    def base_rows(self, table_name: Optional[str]) -> float:
        stats = self.table_statistics(table_name)
        return float(stats.row_count) if stats is not None else self.DEFAULT_ROWS

    # -- observed cardinalities (feedback) -------------------------------------

    def feedback_rows(self, fingerprint: Optional[Tuple]) -> Optional[float]:
        """The observed true cardinality of a plan node, when recorded."""
        if self.feedback is None or fingerprint is None:
            return None
        return self.feedback.lookup(fingerprint)

    def leaf_rows(self, estimated: float, fingerprint: Optional[Tuple]) -> float:
        """A leaf estimate, overridden by its observed cardinality if any."""
        observed = self.feedback_rows(fingerprint)
        return estimated if observed is None else observed

    # -- single-relation predicates -------------------------------------------

    def conjunction_selectivity(
        self, conjuncts, stats: Optional[TableStatistics]
    ) -> float:
        """Combined selectivity of ANDed conjuncts (assumes independence)."""
        selectivity = 1.0
        for conjunct in conjuncts:
            selectivity *= self.predicate_selectivity(conjunct, stats)
        return selectivity

    def predicate_selectivity(
        self, conjunct: Expression, stats: Optional[TableStatistics]
    ) -> float:
        """Estimated fraction of one relation's rows satisfying ``conjunct``."""
        if isinstance(conjunct, BinaryOp):
            operator = conjunct.operator.upper()
            if operator == "=":
                return self._equality_selectivity(conjunct, stats)
            if operator in _RANGE_OPERATORS:
                return self.RANGE
            if operator in ("<>", "!="):
                return self.INEQUALITY
            if operator == "OR":
                left = self.predicate_selectivity(conjunct.left, stats)
                right = self.predicate_selectivity(conjunct.right, stats)
                return min(1.0, left + right - left * right)
            if operator == "AND":
                return self.predicate_selectivity(
                    conjunct.left, stats
                ) * self.predicate_selectivity(conjunct.right, stats)
        if isinstance(conjunct, UnaryOp) and conjunct.operator.upper() == "NOT":
            return max(0.0, 1.0 - self.predicate_selectivity(conjunct.operand, stats))
        if isinstance(conjunct, IsNullExpression):
            return self._null_selectivity(conjunct, stats)
        return self.DEFAULT

    def _equality_selectivity(
        self, conjunct: BinaryOp, stats: Optional[TableStatistics]
    ) -> float:
        for column_side, other_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if isinstance(column_side, ColumnRef) and not column_side.is_positional:
                column_stats = (
                    stats.column(column_side.name) if stats is not None else None
                )
                if column_stats is not None and stats is not None:
                    if isinstance(other_side, Literal):
                        mcv = self._mcv_equality(
                            column_stats, stats.row_count, other_side.value
                        )
                        if mcv is not None:
                            return mcv
                    selectivity = column_stats.selectivity_of_equality(stats.row_count)
                    if selectivity > 0.0:
                        return min(1.0, selectivity)
                    return 1.0 / max(1.0, float(stats.row_count or 1))
        return self.DEFAULT_EQUALITY

    def _mcv_equality(
        self, column_stats: ColumnStatistics, row_count: int, value: Any
    ) -> Optional[float]:
        """MCV-driven selectivity of ``column = literal`` (None without MCVs).

        A literal *in* the list matches exactly its recorded count of rows;
        a literal outside it matches, on average, the rows not covered by
        the list divided by the distinct values outside it — the standard
        Postgres-style split that stops one hot value from inflating every
        equality estimate on a skewed column.
        """
        if row_count <= 0 or not column_stats.mcv:
            return None
        count = column_stats.mcv_frequency(value)
        if count is not None:
            return min(1.0, count / row_count)
        outside_distinct = column_stats.distinct - len(column_stats.mcv)
        if outside_distinct <= 0:
            # The list covers every stored value: the literal matches nothing.
            return 1.0 / max(1.0, float(row_count))
        outside_rows = max(0, column_stats.non_null_rows - column_stats.mcv_total)
        average = max(1.0, outside_rows / outside_distinct)
        return min(1.0, average / row_count)

    def _null_selectivity(
        self, conjunct: IsNullExpression, stats: Optional[TableStatistics]
    ) -> float:
        operand = conjunct.operand
        if (
            stats is not None
            and stats.row_count > 0
            and isinstance(operand, ColumnRef)
            and not operand.is_positional
        ):
            column_stats = stats.column(operand.name)
            if column_stats is not None:
                fraction = column_stats.nulls / stats.row_count
                return max(0.0, 1.0 - fraction) if conjunct.negated else fraction
        return self.DEFAULT

    # -- joins ----------------------------------------------------------------

    def leaf_profile(self, relation) -> Dict[str, float]:
        """The frequency profile of a join-graph leaf (pessimistic only)."""
        return {}

    def join_rows(
        self,
        left_rows: float,
        candidate,
        left_keys,
        right_keys,
        stats_by_qualifier: Mapping[str, Optional[TableStatistics]],
        left_profile: Mapping[str, float],
        fingerprint: Optional[Tuple] = None,
    ) -> Tuple[float, Mapping[str, float]]:
        """Estimated output rows of joining an intermediate with one leaf.

        ``candidate`` is the :class:`~repro.sql.optimizer.joins.BaseRelation`
        being attached; empty ``right_keys`` means a cross join.  Returns
        the row estimate and the updated frequency profile (which only the
        pessimistic estimator maintains).
        """
        observed = self.feedback_rows(fingerprint)
        if observed is not None:
            return observed, left_profile
        if right_keys:
            selectivity = self.join_selectivity(
                left_keys, right_keys, stats_by_qualifier
            )
            output_rows = left_rows * candidate.est_rows * selectivity
        else:
            output_rows = left_rows * candidate.est_rows
        output_rows = max(0.0, min(output_rows, left_rows * candidate.est_rows))
        return output_rows, left_profile

    def join_selectivity(
        self,
        left_exprs,
        right_exprs,
        stats_by_qualifier: Mapping[str, Optional[TableStatistics]],
    ) -> float:
        """Combined selectivity of equi-join key pairs (multiplied)."""
        selectivity = 1.0
        for left_expr, right_expr in zip(left_exprs, right_exprs):
            left_distinct = self._key_distinct(left_expr, stats_by_qualifier)
            right_distinct = self._key_distinct(right_expr, stats_by_qualifier)
            domain = max(
                left_distinct or 0, right_distinct or 0
            )  # the larger side bounds the match probability
            selectivity *= 1.0 / domain if domain > 0 else self.DEFAULT_JOIN
        return selectivity

    def _key_distinct(
        self, expression: Expression, stats_by_qualifier: Mapping[str, Optional[TableStatistics]]
    ) -> Optional[int]:
        if not isinstance(expression, ColumnRef) or expression.is_positional:
            return None
        if expression.qualifier is None:
            return None
        stats = stats_by_qualifier.get(expression.qualifier)
        if stats is None:
            return None
        return stats.distinct(expression.name)

    def _key_column_stats(
        self,
        expression: Expression,
        stats_by_qualifier: Mapping[str, Optional[TableStatistics]],
    ) -> Optional[ColumnStatistics]:
        """The column statistics behind a join-key expression, if plain."""
        if not isinstance(expression, ColumnRef) or expression.is_positional:
            return None
        if expression.qualifier is None:
            return None
        stats = stats_by_qualifier.get(expression.qualifier)
        if stats is None:
            return None
        return stats.column(expression.name)


class PessimisticEstimator(CardinalityEstimator):
    """UES-style upper-bound estimation (docs/optimizer.md § "Pessimistic
    upper bounds").

    Every estimate this class produces is a **guaranteed upper bound** on
    the actual row count at planning time:

    * filter selectivities are sound caps — an equality against a literal
      is bounded by the MCV frequency bound of the literal, ``AND`` takes
      the ``min`` of its sides (independence would *under*-estimate
      correlated predicates), and anything unbounded keeps selectivity 1;
    * a join ``S ⨝ (S.a = R.b) R`` is bounded by
      ``min(|S| · MF_R(b), |R| · MF_S(a))`` where ``MF`` is the top
      frequency of the join key — each ``S``-row matches at most
      ``MF_R(b)`` rows of ``R`` and vice versa;
    * through a left-deep tree the bound propagates via a **frequency
      profile**: per base relation, the maximum factor by which one of its
      rows can have been duplicated so far, which caps ``MF`` of its
      columns inside the intermediate result.

    Planning by bounds sacrifices accuracy on uniform data to make the
    worst case impossible: the enumerator can no longer pick a plan whose
    skew-driven blowup the average-case formulas missed.
    """

    pessimistic = True

    # -- sound filter bounds ----------------------------------------------------

    def conjunction_selectivity(
        self, conjuncts, stats: Optional[TableStatistics]
    ) -> float:
        # min, not product: the rows satisfying every conjunct are at most
        # the rows satisfying the most selective one (independence is an
        # average-case assumption, not a bound).
        selectivity = 1.0
        for conjunct in conjuncts:
            selectivity = min(
                selectivity, self.predicate_selectivity(conjunct, stats)
            )
        return selectivity

    def predicate_selectivity(
        self, conjunct: Expression, stats: Optional[TableStatistics]
    ) -> float:
        if isinstance(conjunct, BinaryOp):
            operator = conjunct.operator.upper()
            if operator == "=":
                return self._equality_bound(conjunct, stats)
            if operator == "AND":
                return min(
                    self.predicate_selectivity(conjunct.left, stats),
                    self.predicate_selectivity(conjunct.right, stats),
                )
            if operator == "OR":
                return min(
                    1.0,
                    self.predicate_selectivity(conjunct.left, stats)
                    + self.predicate_selectivity(conjunct.right, stats),
                )
        if isinstance(conjunct, IsNullExpression):
            return self._null_bound(conjunct, stats)
        # Ranges, inequalities, NOT, functions, subqueries: no sound cap
        # below "keeps every row".
        return 1.0

    def _equality_bound(
        self, conjunct: BinaryOp, stats: Optional[TableStatistics]
    ) -> float:
        for column_side, other_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if (
                isinstance(column_side, ColumnRef)
                and not column_side.is_positional
                and isinstance(other_side, Literal)
                and stats is not None
                and stats.row_count > 0
            ):
                column_stats = stats.column(column_side.name)
                if column_stats is not None and column_stats.mcv:
                    bound = column_stats.frequency_bound(other_side.value)
                    return min(1.0, bound / stats.row_count)
        # ``col = col`` of the same relation (or an expression): every row
        # may satisfy it, so the only sound cap is 1.
        return 1.0

    def _null_bound(
        self, conjunct: IsNullExpression, stats: Optional[TableStatistics]
    ) -> float:
        operand = conjunct.operand
        if (
            stats is not None
            and stats.row_count > 0
            and isinstance(operand, ColumnRef)
            and not operand.is_positional
        ):
            column_stats = stats.column(operand.name)
            if column_stats is not None:
                # Exact at snapshot time, hence a sound bound.
                fraction = column_stats.nulls / stats.row_count
                return max(0.0, 1.0 - fraction) if conjunct.negated else fraction
        return 1.0

    # -- bounded joins ----------------------------------------------------------

    def leaf_profile(self, relation) -> Dict[str, float]:
        # A base row appears at most once in its own leaf.
        return {name: 1.0 for name in relation.names}

    def join_rows(
        self,
        left_rows: float,
        candidate,
        left_keys,
        right_keys,
        stats_by_qualifier: Mapping[str, Optional[TableStatistics]],
        left_profile: Mapping[str, float],
        fingerprint: Optional[Tuple] = None,
    ) -> Tuple[float, Mapping[str, float]]:
        right_rows = max(0.0, candidate.est_rows)
        cross = left_rows * right_rows
        # Per-tuple fanouts: how many partners one row of each side can
        # find.  A composite key is capped by its tightest column pair.
        fanout_left: Optional[float] = None  # partners of one left row in R
        fanout_right: Optional[float] = None  # partners of one R row on the left
        for left_expr, right_expr in zip(left_keys, right_keys):
            right_column = self._key_column_stats(right_expr, stats_by_qualifier)
            if right_column is not None and right_column.mcv:
                frequency = float(right_column.max_frequency)
                fanout_left = (
                    frequency if fanout_left is None else min(fanout_left, frequency)
                )
            left_column = self._key_column_stats(left_expr, stats_by_qualifier)
            if left_column is not None and left_column.mcv:
                multiplier = left_profile.get(left_expr.qualifier, 1.0)
                frequency = float(left_column.max_frequency) * multiplier
                fanout_right = (
                    frequency if fanout_right is None else min(fanout_right, frequency)
                )
        # Unknown frequency (no stats, expression keys, cross join): the
        # other side's full cardinality is the only sound fanout.
        if fanout_left is None:
            fanout_left = right_rows
        if fanout_right is None:
            fanout_right = left_rows
        fanout_left = min(fanout_left, right_rows)
        fanout_right = min(fanout_right, left_rows)
        if right_keys:
            bound = min(left_rows * fanout_left, right_rows * fanout_right, cross)
        else:
            bound = cross
            fanout_left, fanout_right = right_rows, left_rows
        profile: Dict[str, float] = {
            qualifier: multiplier * fanout_left
            for qualifier, multiplier in left_profile.items()
        }
        for name in candidate.names:
            profile[name] = fanout_right
        observed = self.feedback_rows(fingerprint)
        if observed is not None:
            # An observation is exact, so it can only tighten the bound.
            bound = min(bound, observed)
        return max(0.0, bound), profile

    def leaf_rows(self, estimated: float, fingerprint: Optional[Tuple]) -> float:
        observed = self.feedback_rows(fingerprint)
        return estimated if observed is None else min(estimated, observed)
