"""Cardinality estimation over the tables' incremental statistics.

Stage 2 of the optimizer pipeline (``docs/optimizer.md``): turns the raw
:class:`~repro.relational.statistics.TableStatistics` maintained by the
relational layer into row-count estimates for scans, filtered scans and
joins.  The formulas are the classic System-R ones:

* equality against a constant: ``1 / distinct(column)``;
* range comparison: a fixed 1/3;
* equi-join: ``1 / max(distinct(left key), distinct(right key))``;
* anything unrecognised: a fixed default selectivity.

Estimates are never exact — their only job is to order candidate join
trees.  EXPLAIN ANALYZE (``docs/optimizer.md`` § "Reading estimates")
reports the q-error of every estimate against actual rows.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.errors import UnknownTableError
from repro.relational.statistics import TableStatistics
from repro.sql.ast import BinaryOp, ColumnRef, Expression, IsNullExpression, UnaryOp

__all__ = ["CardinalityEstimator"]

#: Comparison operators estimated with the fixed range selectivity.
_RANGE_OPERATORS = {"<", "<=", ">", ">="}


class CardinalityEstimator:
    """Estimates row counts from per-table statistics.

    The estimator resolves base tables through ``catalog`` and tolerates
    missing statistics everywhere (derived tables, catalogs serving
    non-:class:`~repro.relational.table.Table` objects), falling back to
    fixed default selectivities, so it can run against any catalog the
    executor accepts.
    """

    #: Selectivity of an equality whose column has no statistics.
    DEFAULT_EQUALITY = 0.1
    #: Selectivity of a range comparison.
    RANGE = 1.0 / 3.0
    #: Selectivity of ``<>``.
    INEQUALITY = 0.9
    #: Selectivity of an unrecognised predicate.
    DEFAULT = 0.25
    #: Selectivity of an equi-join whose keys have no statistics.
    DEFAULT_JOIN = 0.1
    #: Assumed size of a relation without statistics (derived tables).
    DEFAULT_ROWS = 1000.0

    def __init__(self, catalog) -> None:
        self.catalog = catalog
        self._stats_cache: Dict[str, Optional[TableStatistics]] = {}

    # -- base tables ----------------------------------------------------------

    def table_statistics(self, table_name: Optional[str]) -> Optional[TableStatistics]:
        """The statistics snapshot of a base table (None when unavailable)."""
        if table_name is None or self.catalog is None:
            return None
        if table_name not in self._stats_cache:
            stats: Optional[TableStatistics] = None
            try:
                table = self.catalog.resolve_table(table_name)
            except UnknownTableError:
                table = None
            if table is not None and hasattr(table, "statistics"):
                stats = table.statistics()
            self._stats_cache[table_name] = stats
        return self._stats_cache[table_name]

    def base_rows(self, table_name: Optional[str]) -> float:
        stats = self.table_statistics(table_name)
        return float(stats.row_count) if stats is not None else self.DEFAULT_ROWS

    # -- single-relation predicates -------------------------------------------

    def predicate_selectivity(
        self, conjunct: Expression, stats: Optional[TableStatistics]
    ) -> float:
        """Estimated fraction of one relation's rows satisfying ``conjunct``."""
        if isinstance(conjunct, BinaryOp):
            operator = conjunct.operator.upper()
            if operator == "=":
                return self._equality_selectivity(conjunct, stats)
            if operator in _RANGE_OPERATORS:
                return self.RANGE
            if operator in ("<>", "!="):
                return self.INEQUALITY
            if operator == "OR":
                left = self.predicate_selectivity(conjunct.left, stats)
                right = self.predicate_selectivity(conjunct.right, stats)
                return min(1.0, left + right - left * right)
            if operator == "AND":
                return self.predicate_selectivity(
                    conjunct.left, stats
                ) * self.predicate_selectivity(conjunct.right, stats)
        if isinstance(conjunct, UnaryOp) and conjunct.operator.upper() == "NOT":
            return max(0.0, 1.0 - self.predicate_selectivity(conjunct.operand, stats))
        if isinstance(conjunct, IsNullExpression):
            return self._null_selectivity(conjunct, stats)
        return self.DEFAULT

    def _equality_selectivity(
        self, conjunct: BinaryOp, stats: Optional[TableStatistics]
    ) -> float:
        for column_side in (conjunct.left, conjunct.right):
            if isinstance(column_side, ColumnRef) and not column_side.is_positional:
                column_stats = (
                    stats.column(column_side.name) if stats is not None else None
                )
                if column_stats is not None and stats is not None:
                    selectivity = column_stats.selectivity_of_equality(stats.row_count)
                    if selectivity > 0.0:
                        return min(1.0, selectivity)
                    return 1.0 / max(1.0, float(stats.row_count or 1))
        return self.DEFAULT_EQUALITY

    def _null_selectivity(
        self, conjunct: IsNullExpression, stats: Optional[TableStatistics]
    ) -> float:
        operand = conjunct.operand
        if (
            stats is not None
            and stats.row_count > 0
            and isinstance(operand, ColumnRef)
            and not operand.is_positional
        ):
            column_stats = stats.column(operand.name)
            if column_stats is not None:
                fraction = column_stats.nulls / stats.row_count
                return max(0.0, 1.0 - fraction) if conjunct.negated else fraction
        return self.DEFAULT

    # -- joins ----------------------------------------------------------------

    def join_selectivity(
        self,
        left_exprs,
        right_exprs,
        stats_by_qualifier: Mapping[str, Optional[TableStatistics]],
    ) -> float:
        """Combined selectivity of equi-join key pairs (multiplied)."""
        selectivity = 1.0
        for left_expr, right_expr in zip(left_exprs, right_exprs):
            left_distinct = self._key_distinct(left_expr, stats_by_qualifier)
            right_distinct = self._key_distinct(right_expr, stats_by_qualifier)
            domain = max(
                left_distinct or 0, right_distinct or 0
            )  # the larger side bounds the match probability
            selectivity *= 1.0 / domain if domain > 0 else self.DEFAULT_JOIN
        return selectivity

    def _key_distinct(
        self, expression: Expression, stats_by_qualifier: Mapping[str, Optional[TableStatistics]]
    ) -> Optional[int]:
        if not isinstance(expression, ColumnRef) or expression.is_positional:
            return None
        if expression.qualifier is None:
            return None
        stats = stats_by_qualifier.get(expression.qualifier)
        if stats is None:
            return None
        return stats.distinct(expression.name)
