"""The staged, statistics-driven SQL query optimizer (``docs/optimizer.md``).

Four explicit, separable stages replace the former single-file planner:

1. **Statistics** (:mod:`repro.relational.statistics`) — every table
   incrementally maintains row counts, per-column distinct counts and
   min/max under its own lock, snapshotted as ``TableStatistics``.
2. **Cardinality & cost** (:mod:`~repro.sql.optimizer.cardinality`,
   :mod:`~repro.sql.optimizer.cost`) — selectivity and row estimates over
   those statistics, and the abstract cost formulas ranking plans.
3. **Join ordering** (:mod:`~repro.sql.optimizer.joins`) — dynamic
   programming over small FROM lists, greedy ordering above the threshold.
4. **Physical operator selection** (:mod:`~repro.sql.optimizer.physical`)
   — chainable PostBOUND-style assignment of scan/index-scan and
   hash/index-nested-loop/nested-loop operators.

:class:`CostBasedPlanner` ties the stages together and is the default
planning strategy (``OptimizerConfig(strategy="cost")``); the legacy
syntactic-order planner remains available as ``strategy="heuristic"``.
"""

from repro.sql.optimizer.cardinality import CardinalityEstimator, PessimisticEstimator
from repro.sql.optimizer.cost import CostModel
from repro.sql.optimizer.feedback import (
    FeedbackCache,
    join_fingerprint,
    leaf_fingerprint,
)
from repro.sql.optimizer.joins import BaseRelation, JoinOrderEnumerator, JoinTree
from repro.sql.optimizer.physical import (
    CostBasedOperatorSelection,
    ForcedJoinMethodSelection,
    OperatorAssignment,
    PhysicalOperatorSelection,
    SelectionContext,
)
from repro.sql.optimizer.planner import CostBasedPlanner

__all__ = [
    "BaseRelation",
    "CardinalityEstimator",
    "CostBasedOperatorSelection",
    "CostBasedPlanner",
    "CostModel",
    "FeedbackCache",
    "ForcedJoinMethodSelection",
    "JoinOrderEnumerator",
    "JoinTree",
    "OperatorAssignment",
    "PessimisticEstimator",
    "PhysicalOperatorSelection",
    "SelectionContext",
    "join_fingerprint",
    "leaf_fingerprint",
]
