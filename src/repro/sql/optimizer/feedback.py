"""Feedback-driven re-optimization: observed cardinalities as estimates.

Hilda's request loop re-runs the same activation queries on every page
render, so one mis-planned join is paid until the table's *size class*
changes — the plan cache only re-optimizes on order-of-magnitude growth.
This module closes the estimation feedback loop instead
(``docs/optimizer.md`` § "Feedback-driven re-optimization"):

* the executor *observes* the first execution of each cached plan (per
  stats fingerprint) through the same instrumentation EXPLAIN ANALYZE
  uses, recording the **true** output cardinality of every join-graph
  node into a :class:`FeedbackCache`;
* :class:`~repro.sql.optimizer.cardinality.CardinalityEstimator` consults
  the cache *before* falling back to its System-R formulas, so the next
  planning of any query touching the same node sees the truth;
* when an observed plan's worst per-node q-error exceeds
  ``OptimizerConfig.reopt_q_error``, the executor invalidates the cached
  plan entry — the next execution re-plans with the corrected estimates
  and is observed again, until observations stop teaching the cache
  anything new (the termination guard: re-planning requires that the
  observation *changed* a recorded cardinality or recorded a new node).

Keys are **plan-node fingerprints** (:func:`leaf_fingerprint` /
:func:`join_fingerprint`): a node's fingerprint captures the set of base
relations it reads — each as ``(binding names, table name, size class,
pushed-down conjuncts)`` — plus every join conjunct applied underneath.
Two properties make this the right key:

* it is *order-free*: every join tree over the same relations applying
  the same conjuncts produces the same multiset of rows, so feedback
  gathered under a bad join order prices the good one correctly;
* it embeds each table's size class, so feedback ages out exactly when
  the plan cache's own stats fingerprints do.

Conjuncts are fingerprinted by ``repr()``: every expression class in
``repro.sql.ast`` is a frozen dataclass, so reprs are deterministic and
structural.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Iterable, Optional, Tuple

__all__ = ["FeedbackCache", "join_fingerprint", "leaf_fingerprint"]

#: Relative change below which a re-recorded cardinality counts as "the
#: same" — the termination guard for the observe/re-plan loop.
_CHANGE_TOLERANCE = 0.05


def leaf_fingerprint(
    names: Iterable[str],
    table_name: Optional[str],
    size_class: Optional[int],
    pushed: Iterable[str],
) -> Tuple:
    """The fingerprint of one join-graph leaf (a scan plus pushed filters)."""
    return (
        "leaf",
        tuple(sorted(names)),
        table_name,
        size_class,
        tuple(sorted(pushed)),
    )


def join_fingerprint(leaves: Iterable[Tuple], conjuncts: Iterable[str]) -> Tuple:
    """The fingerprint of a join over ``leaves`` applying ``conjuncts``.

    Both inputs are order-free sets: the same relations joined under the
    same conjuncts yield the same cardinality regardless of tree shape.
    """
    return ("join", tuple(sorted(leaves)), tuple(sorted(conjuncts)))


class FeedbackCache:
    """A bounded map from plan-node fingerprints to observed true rows.

    Shared engine-wide through :class:`~repro.sql.executor.SQLCaches`
    (executors are short-lived per Hilda instance context; the feedback
    must outlive them to be worth anything), so every mutation takes the
    internal lock.  Both stores are LRU-bounded: fingerprints embed size
    classes, so entries for outgrown tables go cold and fall off the end.

    The cache also keeps the *observation ledger* — which (query, stats
    fingerprint) pairs have already had an instrumented execution — so the
    executor pays the observation overhead once per plan-cache entry, not
    per execution.
    """

    #: Bound on recorded (fingerprint -> actual rows) entries.
    MAX_ENTRIES = 1024
    #: Bound on the observation ledger (evicting re-observes, harmlessly).
    MAX_OBSERVATIONS = 1024

    __slots__ = ("_actuals", "_observed", "_lock", "max_entries")

    def __init__(self, max_entries: int = MAX_ENTRIES) -> None:
        self._actuals: "OrderedDict[Tuple, float]" = OrderedDict()
        self._observed: "OrderedDict[Hashable, None]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries

    # -- recorded cardinalities ------------------------------------------------

    def lookup(self, key: Tuple) -> Optional[float]:
        """The observed true cardinality of a plan node (None when unseen)."""
        with self._lock:
            actual = self._actuals.get(key)
            if actual is not None:
                self._actuals.move_to_end(key)
            return actual

    def record(self, key: Tuple, actual_rows: float) -> bool:
        """Record an observed cardinality; True when it taught us something.

        Returns False when ``key`` was already recorded within
        :data:`_CHANGE_TOLERANCE` of ``actual_rows`` — the signal the
        executor uses to stop re-planning a plan that no longer improves.
        """
        actual_rows = max(0.0, float(actual_rows))
        with self._lock:
            previous = self._actuals.get(key)
            self._actuals[key] = actual_rows
            self._actuals.move_to_end(key)
            while len(self._actuals) > self.max_entries:
                self._actuals.popitem(last=False)
        if previous is None:
            return True
        scale = max(previous, actual_rows, 1.0)
        return abs(previous - actual_rows) / scale > _CHANGE_TOLERANCE

    # -- the observation ledger ------------------------------------------------

    def mark_observed(self, token: Hashable) -> bool:
        """Claim the one instrumented execution of a plan-cache entry.

        True exactly once per token (until :meth:`forget_observation` or
        ledger eviction); the caller that wins runs the observation.
        """
        with self._lock:
            if token in self._observed:
                self._observed.move_to_end(token)
                return False
            self._observed[token] = None
            while len(self._observed) > self.MAX_OBSERVATIONS:
                self._observed.popitem(last=False)
            return True

    def forget_observation(self, token: Hashable) -> None:
        """Re-arm observation for a token (after invalidating its plan)."""
        with self._lock:
            self._observed.pop(token, None)

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> None:
        """Drop every recorded cardinality and observation (reset hook)."""
        with self._lock:
            self._actuals.clear()
            self._observed.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._actuals)
