"""Physical operator selection: stage 4 of the optimizer pipeline.

After the join order has been determined, a
:class:`PhysicalOperatorSelection` assigns concrete operators — hash join,
index-nested-loop join or nested-loop join to each join node; full scan or
index scan to each base relation.  The design follows PostBOUND's staged
optimizer: selections are **chainable** via :meth:`chain_with`, each link
seeing the join tree (which carries the enumerator's initial assignment)
and the assignment produced by the links before it, and overriding whatever
subset of it it cares about.

The default :class:`CostBasedOperatorSelection` re-derives the cheapest
method per node from the cost model, which confirms the enumerator's
initial choices.  A custom selection can pin methods globally (see
:class:`ForcedJoinMethodSelection`, used by tests and handy for
experiments) or per-node; inadmissible choices (an index join without an
index, a hash join without equi keys) are repaired by the plan builder,
never executed blindly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Union

from repro.sql.optimizer.cost import CostModel
from repro.sql.optimizer.joins import BaseRelation, JoinTree

__all__ = [
    "OperatorAssignment",
    "PhysicalOperatorSelection",
    "CostBasedOperatorSelection",
    "ForcedJoinMethodSelection",
    "SelectionContext",
]

#: Join methods a selection may assign.
JOIN_METHODS = ("hash", "index_nl", "nested_loop", "cross")

#: Access paths a selection may assign to a base relation.
SCAN_METHODS = ("scan", "index_scan")


@dataclass
class SelectionContext:
    """What a selection may consult: catalog access rules and the cost model."""

    cost_model: CostModel
    #: ``index_joinable(relation, right_keys)`` — may an index-nested-loop
    #: join probe this relation on these keys (index exists or auto-index)?
    index_joinable: object = None
    #: ``index_scannable(relation)`` — does the leaf have an admissible
    #: index-scan rewrite for its pushed predicates?
    index_scannable: object = None


@dataclass
class OperatorAssignment:
    """Chosen methods per node, keyed by node identity.

    Later links of a selection chain override earlier ones key-by-key
    (PostBOUND semantics: the next strategy "can further customize or
    overwrite the previous selection").
    """

    joins: Dict[int, str] = field(default_factory=dict)
    scans: Dict[int, str] = field(default_factory=dict)

    def join_method(self, node: JoinTree) -> Optional[str]:
        return self.joins.get(id(node))

    def scan_method(self, relation: BaseRelation) -> Optional[str]:
        return self.scans.get(id(relation))

    def assign_join(self, node: JoinTree, method: str) -> None:
        if method not in JOIN_METHODS:
            raise ValueError(f"unknown join method {method!r}")
        self.joins[id(node)] = method

    def assign_scan(self, relation: BaseRelation, method: str) -> None:
        if method not in SCAN_METHODS:
            raise ValueError(f"unknown scan method {method!r}")
        self.scans[id(relation)] = method

    def merged_with(self, overrides: "OperatorAssignment") -> "OperatorAssignment":
        merged = OperatorAssignment(joins=dict(self.joins), scans=dict(self.scans))
        merged.joins.update(overrides.joins)
        merged.scans.update(overrides.scans)
        return merged


class PhysicalOperatorSelection(abc.ABC):
    """Assigns physical operators to an ordered join tree (chainable).

    Subclasses implement :meth:`_apply_selection`.  :meth:`chain_with`
    appends another selection to the chain and returns ``self``, so chains
    read left to right: ``base.chain_with(tweak)`` runs ``base`` first and
    lets ``tweak`` override it.
    """

    def __init__(self) -> None:
        self.next_selection: Optional["PhysicalOperatorSelection"] = None

    def chain_with(self, next_selection: "PhysicalOperatorSelection") -> "PhysicalOperatorSelection":
        tail = self
        while tail.next_selection is not None:
            tail = tail.next_selection
        tail.next_selection = next_selection
        return self

    def select_operators(
        self, tree: Union[JoinTree, BaseRelation], context: SelectionContext
    ) -> OperatorAssignment:
        assignment = self._apply_selection(tree, context)
        if self.next_selection is not None:
            overrides = self.next_selection.select_operators(tree, context)
            assignment = assignment.merged_with(overrides)
        return assignment

    @abc.abstractmethod
    def _apply_selection(
        self, tree: Union[JoinTree, BaseRelation], context: SelectionContext
    ) -> OperatorAssignment:
        """This link's own choices (before the rest of the chain runs)."""


def _walk_tree(tree: Union[JoinTree, BaseRelation]):
    """Yield every node of a join tree, leaves included, bottom-up."""
    if isinstance(tree, JoinTree):
        yield from _walk_tree(tree.left)
        yield from _walk_tree(tree.right)
        yield tree
    else:
        yield tree


class CostBasedOperatorSelection(PhysicalOperatorSelection):
    """The default selection: cheapest admissible method per node.

    Join nodes adopt the enumerator's initial assignment (it was chosen
    with the same cost model over the same estimates); leaves take an index
    scan whenever their pushed predicates admit one (an index point lookup
    is never costlier than the full scan it replaces).
    """

    def _apply_selection(
        self, tree: Union[JoinTree, BaseRelation], context: SelectionContext
    ) -> OperatorAssignment:
        assignment = OperatorAssignment()
        for node in _walk_tree(tree):
            if isinstance(node, JoinTree):
                assignment.assign_join(node, node.method)
            else:
                scannable = (
                    context.index_scannable is not None
                    and node.pushed
                    and context.index_scannable(node)
                )
                assignment.assign_scan(node, "index_scan" if scannable else "scan")
        return assignment


class ForcedJoinMethodSelection(PhysicalOperatorSelection):
    """Pin every join node to one method (experiments, plan pinning, tests).

    Inadmissible assignments (e.g. forcing ``index_nl`` where no index can
    exist) are repaired to the nearest admissible method by the plan
    builder rather than failing the query.
    """

    def __init__(self, method: str) -> None:
        super().__init__()
        if method not in JOIN_METHODS:
            raise ValueError(f"unknown join method {method!r}")
        self.method = method

    def _apply_selection(
        self, tree: Union[JoinTree, BaseRelation], context: SelectionContext
    ) -> OperatorAssignment:
        assignment = OperatorAssignment()
        for node in _walk_tree(tree):
            if isinstance(node, JoinTree):
                assignment.assign_join(node, self.method)
        return assignment
