"""Token definitions for the SQL lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Token", "TokenType", "KEYWORDS"]


class TokenType:
    """Token categories produced by the SQL lexer (simple string constants)."""

    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


#: Reserved words recognised by the parser.  Aggregate function names are not
#: keywords; they are parsed as ordinary function calls.
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "UNION",
        "ALL",
        "AND",
        "OR",
        "NOT",
        "IN",
        "EXISTS",
        "BETWEEN",
        "LIKE",
        "IS",
        "NULL",
        "AS",
        "JOIN",
        "LEFT",
        "RIGHT",
        "FULL",
        "OUTER",
        "INNER",
        "CROSS",
        "ON",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "INSERT",
        "INTO",
        "VALUES",
        "DELETE",
        "UPDATE",
        "SET",
        "TRUE",
        "FALSE",
    }
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with source position (1-based line/column)."""

    type: str
    value: Any
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"
