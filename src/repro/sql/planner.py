"""Translate query ASTs into physical operator trees (heuristic strategy).

The planner is deliberately simple but captures the structure the paper's
compiler would need: FROM items become scans and joins, WHERE becomes a
filter (or feeds equi-join keys to hash joins when optimization is enabled),
aggregates become an :class:`AggregateOp`, and the select list becomes a
projection.

This class is the ``optimizer="heuristic"`` strategy: joins follow the
syntactic FROM order and rewrites are greedy.  The statistics-driven
pipeline in :mod:`repro.sql.optimizer` subclasses it, overriding only
:meth:`Planner._optimize_access_paths` (see ``docs/optimizer.md``), so the
two strategies share all the non-join planning (aggregates, ordering,
implicit tables, subqueries).

Hilda-specific accommodation: queries such as ``SELECT activationTuple.name``
reference tables that never appear in a FROM clause.  The planner detects
column qualifiers that are not bound by the FROM list but name a table in
the catalog, and adds an implicit scan for them (they behave like an extra
cross-joined table, which for the single-row ``activationTuple`` matches the
paper's semantics).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import SQLExecutionError, UnknownTableError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    ExistsExpression,
    Expression,
    FunctionCall,
    InExpression,
    JoinRef,
    Literal,
    OrderItem,
    Query,
    ScalarSubquery,
    SelectItem,
    SelectQuery,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
    UnionQuery,
)
from repro.sql.operators import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    HashJoinOp,
    IndexNestedLoopJoinOp,
    IndexScanOp,
    LimitOp,
    NestedLoopJoinOp,
    Operator,
    ProjectOp,
    ScanOp,
    SortOp,
    SubqueryScanOp,
    UnionOp,
    ValuesOp,
    _indexable_literal,
)

__all__ = [
    "Planner",
    "expression_subquery",
    "operator_expressions",
    "plan_query",
    "tables_read",
]


def plan_query(query: Query, catalog, optimize: bool = True, auto_index: bool = False) -> Operator:
    """Plan a parsed query against a catalog."""
    return Planner(catalog, optimize=optimize, auto_index=auto_index).plan(query)


def tables_read(plan: Operator, plan_subquery=None) -> frozenset:
    """The set of base-table names a plan reads (its dependency footprint).

    Walks the operator tree — scans, index scans and index-nested-loop join
    probes all contribute their table — and descends into the subqueries
    embedded in operator expressions (``IN (SELECT ...)``, ``EXISTS``,
    scalar subqueries), which the executor plans separately at evaluation
    time.

    ``plan_subquery`` maps a query AST to its plan (the executor passes its
    cached planner) so expression subqueries are analysed through the same
    machinery — including the implicit-table accommodation, which only the
    planner resolves.  Without it, expression subqueries fall back to their
    syntactically referenced tables, which misses implicit tables; callers
    that feed cache invalidation must supply ``plan_subquery``.

    The result is the footprint over *catalog names*: every name resolved via
    the catalog at execution time appears here, so re-resolving each name and
    comparing table versions is a sound staleness check for cached results.
    """
    names: Set[str] = set()
    _collect_tables_read(plan, plan_subquery, names)
    return frozenset(names)


def _collect_tables_read(plan: Operator, plan_subquery, names: Set[str]) -> None:
    if isinstance(plan, (ScanOp, IndexScanOp, IndexNestedLoopJoinOp)):
        names.add(plan.table_name)
    for child in plan.children():
        _collect_tables_read(child, plan_subquery, names)
    for expression in _operator_expressions(plan):
        for node in expression.walk():
            subquery = _expression_subquery(node)
            if subquery is not None:
                _collect_subquery_tables(subquery, plan_subquery, names)


def _operator_expressions(plan: Operator) -> List[Expression]:
    """The expressions an operator evaluates per row (subquery carriers)."""
    expressions: List[Expression] = []
    if isinstance(plan, FilterOp):
        expressions.append(plan.predicate)
    elif isinstance(plan, ProjectOp):
        expressions.extend(
            item.expression for item in plan.items if isinstance(item, SelectItem)
        )
    elif isinstance(plan, NestedLoopJoinOp):
        if plan.condition is not None:
            expressions.append(plan.condition)
    elif isinstance(plan, HashJoinOp):
        expressions.extend(plan.left_keys)
        expressions.extend(plan.right_keys)
        if plan.residual is not None:
            expressions.append(plan.residual)
    elif isinstance(plan, IndexNestedLoopJoinOp):
        expressions.extend(plan.left_keys)
        if plan.residual is not None:
            expressions.append(plan.residual)
    elif isinstance(plan, SortOp):
        expressions.extend(item.expression for item in plan.order_by)
    elif isinstance(plan, AggregateOp):
        expressions.extend(plan.group_by)
        expressions.extend(
            item.expression for item in plan.items if isinstance(item, SelectItem)
        )
        if plan.having is not None:
            expressions.append(plan.having)
    return expressions


def _expression_subquery(node: Expression) -> Optional[Query]:
    """The nested query of a subquery expression node (or None)."""
    if isinstance(node, (InExpression, ExistsExpression)):
        return node.subquery
    if isinstance(node, ScalarSubquery):
        return node.query
    return None


def operator_expressions(plan: Operator) -> List[Expression]:
    """Public alias of :func:`_operator_expressions` (used by ``sql.delta``).

    The incremental-maintenance layer walks these expressions to reject
    plans carrying subquery expressions, which its delta rules cannot
    propagate through.
    """
    return _operator_expressions(plan)


def expression_subquery(node: Expression) -> Optional[Query]:
    """Public alias of :func:`_expression_subquery` (used by ``sql.delta``)."""
    return _expression_subquery(node)


def _collect_subquery_tables(query: Query, plan_subquery, names: Set[str]) -> None:
    if plan_subquery is not None:
        _collect_tables_read(plan_subquery(query), plan_subquery, names)
        return
    # Fallback without a planner: syntactic FROM-clause tables only.
    names.update(query.referenced_tables())


class Planner:
    """Builds operator trees for queries.

    ``auto_index`` lets the planner *create* access paths: an equality
    predicate or an equi-join key over a base-table column is answered with
    an :class:`IndexScanOp` / :class:`IndexNestedLoopJoinOp` even when the
    table has no matching index yet (the operator builds it on first
    execution and the table maintains it incrementally afterwards).  When
    ``auto_index`` is off, index operators are chosen only for indexes that
    already exist — declared on the schema or created by an earlier
    auto-indexing executor.
    """

    def __init__(self, catalog, optimize: bool = True, auto_index: bool = False) -> None:
        self.catalog = catalog
        self.optimize = optimize
        self.auto_index = auto_index

    # -- entry points -----------------------------------------------------------

    def plan(self, query: Query) -> Operator:
        if isinstance(query, UnionQuery):
            return UnionOp(self.plan(query.left), self.plan(query.right), all=query.all)
        if isinstance(query, SelectQuery):
            return self.plan_select(query)
        raise SQLExecutionError(f"cannot plan query node {type(query).__name__}")

    # -- SELECT planning -----------------------------------------------------------

    def plan_select(self, query: SelectQuery) -> Operator:
        bound_names = self._from_binding_names(query.from_items)
        plan, bound_names = self._plan_from(query, bound_names)

        where_conjuncts = _split_conjuncts(query.where)
        if self.optimize:
            plan, remaining = self._optimize_access_paths(
                plan, where_conjuncts, bound_names, query
            )
        else:
            remaining = where_conjuncts
        if remaining:
            plan = FilterOp(plan, _combine_conjuncts(remaining))

        has_aggregates = self._select_has_aggregates(query)
        if has_aggregates or query.group_by:
            items = self._aggregate_items(query)
            plan = AggregateOp(
                plan, group_by=query.group_by, items=items, having=query.having
            )
            if query.order_by:
                plan = SortOp(plan, self._rewrite_order_for_output(query, items))
        else:
            if query.having is not None:
                plan = FilterOp(plan, query.having)
            if query.order_by:
                plan = SortOp(plan, self._rewrite_order_for_input(query))
            plan = ProjectOp(plan, query.items)

        if query.distinct:
            plan = DistinctOp(plan)
        if query.limit is not None:
            plan = LimitOp(plan, query.limit)
        return plan

    # -- FROM clause -------------------------------------------------------------------

    def _plan_from(
        self, query: SelectQuery, bound_names: Set[str]
    ) -> Tuple[Operator, Set[str]]:
        plans: List[Operator] = [self._plan_from_item(item) for item in query.from_items]

        # Implicit tables referenced only through column qualifiers.
        implicit = self._implicit_tables(query, bound_names)
        for name in implicit:
            plans.append(ScanOp(table_name=name, binding_name=name))
            bound_names.add(name)

        if not plans:
            return ValuesOp(), bound_names
        plan = plans[0]
        for extra in plans[1:]:
            plan = NestedLoopJoinOp(plan, extra, join_type="CROSS")
        return plan, bound_names

    def _plan_from_item(self, item) -> Operator:
        if isinstance(item, TableRef):
            return ScanOp(table_name=item.name, binding_name=item.binding_name)
        if isinstance(item, SubqueryRef):
            return SubqueryScanOp(self.plan(item.query), binding_name=item.alias)
        if isinstance(item, JoinRef):
            left = self._plan_from_item(item.left)
            right = self._plan_from_item(item.right)
            if item.join_type == "CROSS":
                return NestedLoopJoinOp(left, right, join_type="CROSS")
            join_type = "LEFT" if item.join_type == "LEFT" else "INNER"
            if self.optimize and item.condition is not None:
                hash_join = self._try_hash_join(left, right, item, join_type)
                if hash_join is not None:
                    return hash_join
            return NestedLoopJoinOp(
                left, right, join_type=join_type, condition=item.condition
            )
        raise SQLExecutionError(f"unsupported FROM item {item!r}")

    def _try_hash_join(
        self, left: Operator, right: Operator, item: JoinRef, join_type: str
    ) -> Optional[Operator]:
        """Use a hash join when the ON condition is a conjunction of equalities."""
        left_names = _binding_names_of(item.left)
        right_names = _binding_names_of(item.right)
        conjuncts = _split_conjuncts(item.condition)
        left_keys: List[Expression] = []
        right_keys: List[Expression] = []
        residual: List[Expression] = []
        for conjunct in conjuncts:
            keys = _equi_join_keys(conjunct, left_names, right_names)
            if keys is None:
                residual.append(conjunct)
            else:
                left_keys.append(keys[0])
                right_keys.append(keys[1])
        if not left_keys:
            return None
        residual_expr = _combine_conjuncts(residual) if residual else None
        if join_type == "INNER":
            index_join = self._try_index_join(
                left, right, tuple(left_keys), tuple(right_keys), residual_expr
            )
            if index_join is not None:
                return index_join
        return HashJoinOp(
            left,
            right,
            left_keys=tuple(left_keys),
            right_keys=tuple(right_keys),
            join_type=join_type,
            residual=residual_expr,
        )

    def _from_binding_names(self, from_items: Sequence) -> Set[str]:
        names: Set[str] = set()

        def visit(item) -> None:
            if isinstance(item, TableRef):
                names.add(item.binding_name)
                names.add(item.name)
            elif isinstance(item, SubqueryRef):
                names.add(item.alias)
            elif isinstance(item, JoinRef):
                visit(item.left)
                visit(item.right)

        for item in from_items:
            visit(item)
        return names

    def _implicit_tables(self, query: SelectQuery, bound_names: Set[str]) -> List[str]:
        """Column qualifiers that name catalog tables not present in FROM."""
        implicit: List[str] = []
        seen: Set[str] = set()
        for expression in query.expressions():
            for node in expression.walk():
                if not isinstance(node, ColumnRef) or node.qualifier is None:
                    continue
                qualifier = node.qualifier
                if qualifier in bound_names or qualifier in seen:
                    continue
                if self.catalog is not None and self.catalog.has_table(qualifier):
                    implicit.append(qualifier)
                    seen.add(qualifier)
        return implicit

    # -- WHERE-driven hash joins ----------------------------------------------------

    def _optimize_access_paths(
        self,
        plan: Operator,
        conjuncts: List[Expression],
        bound_names: Set[str],
        query: SelectQuery,
    ) -> Tuple[Operator, List[Expression]]:
        """The optimization hook applied between FROM planning and filtering.

        The heuristic strategy rewrites constant equality predicates into
        index scans and comma-join equality patterns into hash joins, both
        in syntactic order.  :class:`~repro.sql.optimizer.CostBasedPlanner`
        overrides this with the staged statistics-driven pipeline.
        Returns the rewritten plan and the conjuncts it did not consume.
        """
        plan, conjuncts = self._apply_index_scans(plan, conjuncts)
        return self._apply_hash_joins(plan, conjuncts, bound_names, query)

    def _apply_hash_joins(
        self,
        plan: Operator,
        conjuncts: List[Expression],
        bound_names: Set[str],
        query: SelectQuery,
    ) -> Tuple[Operator, List[Expression]]:
        """Convert comma-join + WHERE equality patterns into hash joins.

        The classic Hilda activation query shape is
        ``FROM course C, staff S, user U WHERE C.cid = S.cid AND ...``.
        The planner greedily builds hash joins for equality conjuncts whose
        two sides reference exactly one base scan each while those scans are
        still adjacent cross-join children; anything it cannot place stays
        in the residual filter.

        The transformation is applied only to a pure left-deep chain of
        CROSS nested-loop joins over scans (the comma-join case); other
        shapes are left untouched.
        """
        chain = _flatten_cross_chain(plan)
        if chain is None or len(chain) < 2:
            return plan, conjuncts

        # Greedy left-deep construction: start from the first scan, repeatedly
        # pick a remaining scan that has an equality predicate with the built
        # prefix, and join it with a hash join.
        remaining_ops = list(chain)
        remaining_conjuncts = list(conjuncts)
        built = remaining_ops.pop(0)
        built_names = _operator_binding_names(built)

        progress = True
        while remaining_ops and progress:
            progress = False
            for index, candidate in enumerate(remaining_ops):
                candidate_names = _operator_binding_names(candidate)
                keys = _find_equi_keys(remaining_conjuncts, built_names, candidate_names)
                if keys is None:
                    continue
                left_keys, right_keys, used = keys
                index_join = self._try_index_join(
                    built, candidate, tuple(left_keys), tuple(right_keys), None
                )
                if index_join is not None:
                    built = index_join
                else:
                    built = HashJoinOp(
                        built,
                        candidate,
                        left_keys=tuple(left_keys),
                        right_keys=tuple(right_keys),
                        join_type="INNER",
                    )
                built_names |= candidate_names
                remaining_ops.pop(index)
                remaining_conjuncts = [
                    conjunct for conjunct in remaining_conjuncts if conjunct not in used
                ]
                progress = True
                break

        # Cross-join whatever could not be connected by an equality predicate.
        for leftover in remaining_ops:
            built = NestedLoopJoinOp(built, leftover, join_type="CROSS")
        return built, remaining_conjuncts

    # -- index access paths -------------------------------------------------------

    def _apply_index_scans(
        self, plan: Operator, conjuncts: List[Expression]
    ) -> Tuple[Operator, List[Expression]]:
        """Answer constant equality predicates with index lookups.

        Each base-table scan whose binding has ``column = literal``
        conjuncts becomes an :class:`IndexScanOp` when the table has (or,
        with ``auto_index``, may build) a hash index over those columns.
        Only applied to the comma-join cross-chain shape so the remaining
        conjuncts still line up for the hash-join rewrite.
        """
        if self.catalog is None or not conjuncts:
            return plan, conjuncts
        chain = _flatten_cross_chain(plan)
        if chain is None:
            return plan, conjuncts
        remaining = list(conjuncts)
        allow_unqualified = len(chain) == 1
        rebuilt: List[Operator] = []
        changed = False
        for leaf in chain:
            if isinstance(leaf, ScanOp):
                replacement, remaining = self._try_index_scan(
                    leaf, remaining, allow_unqualified
                )
                if replacement is not None:
                    leaf = replacement
                    changed = True
            rebuilt.append(leaf)
        if not changed:
            return plan, conjuncts
        new_plan = rebuilt[0]
        for extra in rebuilt[1:]:
            new_plan = NestedLoopJoinOp(new_plan, extra, join_type="CROSS")
        return new_plan, remaining

    def _try_index_scan(
        self, scan: ScanOp, conjuncts: List[Expression], allow_unqualified: bool
    ) -> Tuple[Optional[Operator], List[Expression]]:
        try:
            table = self.catalog.resolve_table(scan.table_name)
        except UnknownTableError:
            return None, conjuncts
        names = {scan.binding_name, scan.table_name}
        pairs: List[Tuple[str, Any, Expression]] = []
        used_columns: Set[str] = set()
        for conjunct in conjuncts:
            extracted = _index_equality(conjunct, names, table.schema, allow_unqualified)
            if extracted is None:
                continue
            column, value = extracted
            if column in used_columns:
                continue
            pairs.append((column, value, conjunct))
            used_columns.add(column)
        if not pairs:
            return None, conjuncts
        columns = tuple(pair[0] for pair in pairs)
        if not (table.has_index(columns) or self.auto_index):
            # Fall back to a single-column index that already exists.
            pairs = [pair for pair in pairs if table.has_index((pair[0],))][:1]
            if not pairs:
                return None, conjuncts
        # Canonical (schema) column order; the probe values follow along.
        pairs.sort(key=lambda pair: table.schema.column_position(pair[0]))
        used = {id(pair[2]) for pair in pairs}
        operator = IndexScanOp(
            table_name=scan.table_name,
            binding_name=scan.binding_name,
            key_columns=tuple(pair[0] for pair in pairs),
            key_values=tuple(pair[1] for pair in pairs),
        )
        remaining = [conjunct for conjunct in conjuncts if id(conjunct) not in used]
        return operator, remaining

    def _try_index_join(
        self,
        left: Operator,
        candidate: Operator,
        left_keys: Tuple[Expression, ...],
        right_keys: Tuple[Expression, ...],
        residual: Optional[Expression],
    ) -> Optional[Operator]:
        """An index-nested-loop join probing ``candidate``'s table, if possible.

        Requires the right side to be a bare scan whose join keys are plain
        column references, so each probe is a hash-index lookup with the
        same key semantics as :class:`HashJoinOp`.
        """
        if not isinstance(candidate, ScanOp) or self.catalog is None:
            return None
        try:
            table = self.catalog.resolve_table(candidate.table_name)
        except UnknownTableError:
            return None
        names = {candidate.binding_name, candidate.table_name}
        columns: List[str] = []
        for expr in right_keys:
            if (
                not isinstance(expr, ColumnRef)
                or expr.is_positional
                or expr.qualifier not in names
                or not table.schema.has_column(expr.name)
            ):
                return None
            columns.append(expr.name)
        if len(set(columns)) != len(columns):
            return None
        # Canonical (schema) column order; the probing left keys follow along.
        ordered = sorted(
            zip(columns, left_keys), key=lambda pair: table.schema.column_position(pair[0])
        )
        column_tuple = tuple(name for name, _ in ordered)
        if not (table.has_index(column_tuple) or self.auto_index):
            return None
        return IndexNestedLoopJoinOp(
            left,
            table_name=candidate.table_name,
            binding_name=candidate.binding_name,
            left_keys=tuple(key for _, key in ordered),
            right_columns=column_tuple,
            residual=residual,
        )

    # -- aggregates and ordering ------------------------------------------------------

    def _select_has_aggregates(self, query: SelectQuery) -> bool:
        for item in query.items:
            if isinstance(item, SelectItem) and _contains_aggregate(item.expression):
                return True
        if query.having is not None and _contains_aggregate(query.having):
            return True
        return False

    def _aggregate_items(self, query: SelectQuery) -> Tuple[SelectItem, ...]:
        items: List[SelectItem] = []
        for item in query.items:
            if isinstance(item, Star):
                raise SQLExecutionError("SELECT * cannot be combined with GROUP BY/aggregates")
            items.append(item)
        return tuple(items)

    def _rewrite_order_for_input(self, query: SelectQuery) -> Tuple[OrderItem, ...]:
        """Rewrite ORDER BY aliases to their select expressions (sort runs pre-projection)."""
        alias_map = {}
        for item in query.items:
            if isinstance(item, SelectItem) and item.alias:
                alias_map[item.alias] = item.expression
        rewritten: List[OrderItem] = []
        for order in query.order_by:
            expression = order.expression
            if isinstance(expression, ColumnRef) and expression.qualifier is None:
                expression = alias_map.get(expression.name, expression)
            rewritten.append(OrderItem(expression=expression, descending=order.descending))
        return tuple(rewritten)

    def _rewrite_order_for_output(
        self, query: SelectQuery, items: Tuple[SelectItem, ...]
    ) -> Tuple[OrderItem, ...]:
        """After aggregation the sort runs over the aggregate's output columns.

        ORDER BY expressions that textually match a select item (or name its
        alias) are rewritten to reference that output column; anything else
        is left alone and must already be expressed over the output.
        """
        from repro.sql.operators import _default_column_name

        by_sql: Dict[str, str] = {}
        for position, item in enumerate(items):
            output_name = item.alias or _default_column_name(item.expression, position)
            by_sql[item.expression.to_sql()] = output_name
            if item.alias:
                by_sql[item.alias] = output_name
        rewritten: List[OrderItem] = []
        for order in query.order_by:
            expression = order.expression
            output_name = by_sql.get(expression.to_sql())
            if output_name is None and isinstance(expression, ColumnRef):
                output_name = by_sql.get(expression.name)
            if output_name is not None:
                expression = ColumnRef(name=output_name)
            rewritten.append(OrderItem(expression=expression, descending=order.descending))
        return tuple(rewritten)


# ---------------------------------------------------------------------------
# Helpers shared with the optimizer
# ---------------------------------------------------------------------------


def _split_conjuncts(expression: Optional[Expression]) -> List[Expression]:
    if expression is None:
        return []
    if isinstance(expression, BinaryOp) and expression.operator.upper() == "AND":
        return _split_conjuncts(expression.left) + _split_conjuncts(expression.right)
    return [expression]


def _combine_conjuncts(conjuncts: Sequence[Expression]) -> Expression:
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = BinaryOp("AND", combined, conjunct)
    return combined


def _contains_aggregate(expression: Expression) -> bool:
    return any(
        isinstance(node, FunctionCall) and node.is_aggregate for node in expression.walk()
    )


def _binding_names_of(item) -> Set[str]:
    names: Set[str] = set()
    if isinstance(item, TableRef):
        names.add(item.binding_name)
        names.add(item.name)
    elif isinstance(item, SubqueryRef):
        names.add(item.alias)
    elif isinstance(item, JoinRef):
        names |= _binding_names_of(item.left)
        names |= _binding_names_of(item.right)
    return names


def _operator_binding_names(operator: Operator) -> Set[str]:
    names: Set[str] = set()
    if isinstance(operator, (ScanOp, IndexScanOp)):
        names.add(operator.binding_name)
        names.add(operator.table_name)
    elif isinstance(operator, SubqueryScanOp):
        names.add(operator.binding_name)
    else:
        if isinstance(operator, IndexNestedLoopJoinOp):
            names.add(operator.binding_name)
            names.add(operator.table_name)
        for child in operator.children():
            names |= _operator_binding_names(child)
    return names


def _column_qualifiers(expression: Expression) -> Set[str]:
    qualifiers: Set[str] = set()
    for node in expression.walk():
        if isinstance(node, ColumnRef) and node.qualifier is not None:
            qualifiers.add(node.qualifier)
    return qualifiers


def _references_only(expression: Expression, names: Set[str]) -> bool:
    qualifiers = _column_qualifiers(expression)
    return bool(qualifiers) and qualifiers <= names


def _equi_join_keys(
    conjunct: Expression, left_names: Set[str], right_names: Set[str]
) -> Optional[Tuple[Expression, Expression]]:
    """If ``conjunct`` is ``left_expr = right_expr`` across the two sides, return the keys."""
    if not isinstance(conjunct, BinaryOp) or conjunct.operator != "=":
        return None
    left_expr, right_expr = conjunct.left, conjunct.right
    if _references_only(left_expr, left_names) and _references_only(right_expr, right_names):
        return left_expr, right_expr
    if _references_only(left_expr, right_names) and _references_only(right_expr, left_names):
        return right_expr, left_expr
    return None


#: Sentinel for "this expression is not a plan-time constant".
_NOT_CONSTANT = object()


def _constant_value(expression: Expression) -> Any:
    """The plan-time value of a literal (or negated numeric literal)."""
    if isinstance(expression, Literal):
        return expression.value
    if (
        isinstance(expression, UnaryOp)
        and expression.operator == "-"
        and isinstance(expression.operand, Literal)
        and isinstance(expression.operand.value, (int, float))
        and not isinstance(expression.operand.value, bool)
    ):
        return -expression.operand.value
    return _NOT_CONSTANT


def _index_equality(
    conjunct: Expression,
    names: Set[str],
    schema,
    allow_unqualified: bool,
) -> Optional[Tuple[str, Any]]:
    """Match ``column = constant`` (either side) against one scan's binding."""
    if not isinstance(conjunct, BinaryOp) or conjunct.operator != "=":
        return None
    for column_side, value_side in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        if not isinstance(column_side, ColumnRef) or column_side.is_positional:
            continue
        qualifier = column_side.qualifier
        if qualifier is None:
            if not allow_unqualified:
                continue
        elif qualifier not in names:
            continue
        if not schema.has_column(column_side.name):
            continue
        value = _constant_value(value_side)
        if value is _NOT_CONSTANT:
            continue
        if not _indexable_literal(value, schema.column(column_side.name).dtype):
            continue
        return column_side.name, value
    return None


def _find_equi_keys(
    conjuncts: List[Expression], left_names: Set[str], right_names: Set[str]
) -> Optional[Tuple[List[Expression], List[Expression], List[Expression]]]:
    """Collect every equality conjunct joining ``left_names`` to ``right_names``."""
    left_keys: List[Expression] = []
    right_keys: List[Expression] = []
    used: List[Expression] = []
    for conjunct in conjuncts:
        keys = _equi_join_keys(conjunct, left_names, right_names)
        if keys is not None:
            left_keys.append(keys[0])
            right_keys.append(keys[1])
            used.append(conjunct)
    if not left_keys:
        return None
    return left_keys, right_keys, used


def _flatten_cross_chain(plan: Operator) -> Optional[List[Operator]]:
    """Flatten a left-deep chain of CROSS nested-loop joins into its leaves.

    Returns None when the plan is not such a chain (e.g. it already contains
    explicit JOIN ... ON operators), in which case the WHERE-driven hash-join
    rewrite is skipped.
    """
    if isinstance(plan, (ScanOp, IndexScanOp, SubqueryScanOp, ValuesOp)):
        return [plan]
    if isinstance(plan, NestedLoopJoinOp) and plan.join_type == "CROSS" and plan.condition is None:
        left = _flatten_cross_chain(plan.left)
        right = _flatten_cross_chain(plan.right)
        if left is None or right is None:
            return None
        return left + right
    return None
