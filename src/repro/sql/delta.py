"""Incremental view maintenance: table deltas and per-plan delta programs.

Dependency-tracked caching (``docs/caching.md``) decides *whether* a cached
activation-query result is stale; this module makes many of those misses
cheap by *patching* the cached result instead of recomputing it.  Two pieces
cooperate:

* :class:`DeltaLog` subscribes to :meth:`Table.set_delta_hook` on every
  persistent table and retains a bounded window of logical delta records
  (insert / delete / update row sets), chained by version stamp so a reader
  can prove the records it sees cover the whole span between a cached
  version and the current one.  Whole-table replacements are classified:
  appends and pure deletions become ordinary deltas, anything else becomes
  a *barrier* record that forces recomputation across it.

* :class:`DeltaProgram` is compiled from a physical plan whose shape the
  delta rules support: a left spine of filters and inner joins over exactly
  one *source* table, optionally topped by a projection.  The program keeps
  each cached output row paired with the source-table row that produced it
  (*provenance pairs*) and maps source deltas to output edits that are
  **byte- and order-identical** to what re-running the plan would produce —
  inserts append (table append order), deletions drop all pairs sourced
  from the deleted rows, and updates patch in place (scan order) or
  re-append (index-bucket order).  Anything the rules cannot prove
  order-exact — aggregates, sorts, subqueries, LEFT joins, deltas on a
  non-source table, uncovered version spans, a cost bound exceeded —
  returns ``None`` and the caller falls back to full recomputation, so the
  bailout path is always correct-by-construction.

Thread-safety: delta hooks fire inside the table lock; the runtime reads
logs and patches cache entries only under the engine write lock, which also
serialises every table mutation, so readers and writers never interleave.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, UnknownTableError
from repro.relational.table import Table
from repro.sql.ast import Query
from repro.sql.evaluator import RowScope, _compare
from repro.sql.operators import (
    ExecutionContext,
    FilterOp,
    HashJoinOp,
    IndexNestedLoopJoinOp,
    IndexScanOp,
    NestedLoopJoinOp,
    Operator,
    ProjectOp,
    ScanOp,
    _NO_MATCH,
    _index_probe_value,
    _indexable_literal,
    _projection_plan,
    _tuple_evaluator,
)
from repro.sql.planner import expression_subquery, operator_expressions, tables_read
from repro.sql.relation import ColumnInfo, Relation
from repro.sql.stats import MaintenanceStats

__all__ = [
    "DEFAULT_DELTA_LOG_SIZE",
    "DeltaLog",
    "DeltaProgram",
    "DeltaRecord",
    "build_delta_program",
    "describe_maintenance",
]

Row = Tuple[Any, ...]

#: Default per-table cap on retained delta rows (``CacheConfig.delta_log_size``).
DEFAULT_DELTA_LOG_SIZE = 512


class DeltaRecord:
    """One logical mutation of a table, bounded by its version stamps.

    ``prev_version`` -> ``version`` is the span the record covers; a chain
    of records whose stamps link up covers the whole span between its ends.
    Exactly one of ``inserted`` / ``deleted`` / ``changes`` is non-empty
    (or ``barrier`` is set, marking a mutation deltas cannot express).
    """

    __slots__ = ("prev_version", "version", "inserted", "deleted", "changes", "barrier")

    def __init__(
        self,
        prev_version: int,
        version: int,
        inserted: Tuple[Row, ...] = (),
        deleted: Tuple[Row, ...] = (),
        changes: Tuple[Tuple[Row, Row], ...] = (),
        barrier: bool = False,
    ) -> None:
        self.prev_version = prev_version
        self.version = version
        self.inserted = inserted
        self.deleted = deleted
        self.changes = changes
        self.barrier = barrier

    @property
    def weight(self) -> int:
        """Retained-row accounting for the per-table cap."""
        return max(1, len(self.inserted) + len(self.deleted) + len(self.changes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = (
            "barrier"
            if self.barrier
            else "insert"
            if self.inserted
            else "delete"
            if self.deleted
            else "update"
        )
        return f"DeltaRecord({kind}, {self.prev_version}->{self.version}, w={self.weight})"


class _TableLog:
    __slots__ = ("records", "weight", "tail_version")

    def __init__(self, tail_version: int) -> None:
        self.records: List[DeltaRecord] = []
        self.weight = 0
        #: The version stamp the *next* record chains from (the table's
        #: version at attach time, then each record's post-version).
        self.tail_version = tail_version


def _classify_replace(old_rows: Sequence[Row], new_rows: Sequence[Row]):
    """Map a whole-table replacement onto (inserted, deleted) — or None.

    Pure appends (the old contents are a prefix of the new) and pure
    deletions (the new contents are an in-order subsequence of the old,
    and no deleted row value survives — so removing *all* pairs sourced
    from a deleted value is positionally exact) become ordinary deltas;
    everything else is a reorder/rewrite the delta rules cannot replay
    order-exactly and returns None (a barrier record).
    """
    n_old, n_new = len(old_rows), len(new_rows)
    if n_new >= n_old and list(new_rows[:n_old]) == list(old_rows):
        return tuple(new_rows[n_old:]), ()
    if n_new < n_old:
        deleted: List[Row] = []
        position = 0
        for row in old_rows:
            if position < n_new and new_rows[position] == row:
                position += 1
            else:
                deleted.append(row)
        if position == n_new:
            kept = set(new_rows)
            if not any(row in kept for row in deleted):
                return (), tuple(deleted)
    return None


class DeltaLog:
    """Bounded in-memory delta records for the engine's persistent tables.

    One instance per engine; :meth:`attach` installs the table's delta hook
    (:meth:`Table.set_delta_hook` — a slot separate from the WAL journal, so
    the two layers compose without double-journaling).  Records are retained
    per table up to ``max_rows_per_table`` total delta rows; truncation only
    narrows the coverage window, never corrupts it, because
    :meth:`deltas_for` verifies the version chain before trusting anything.
    """

    #: Bound on the number of tables tracked at once.  Persistent tables are
    #: few, but the engine also attaches the local/input tables that cached
    #: activation queries scan, and those churn with reactivation; the
    #: least-recently-consulted table is detached (its entries then bail out
    #: to recomputation, which is always safe).
    MAX_TABLES = 256

    def __init__(self, max_rows_per_table: Optional[int] = DEFAULT_DELTA_LOG_SIZE) -> None:
        self.max_rows_per_table = max_rows_per_table
        #: id(table) -> (table, log).  The table reference pins the id.
        self._tables: "OrderedDict[int, Tuple[Table, _TableLog]]" = OrderedDict()

    def attach(self, table: Table) -> None:
        """Start recording deltas for ``table`` (idempotent)."""
        if id(table) in self._tables:
            return
        log = _TableLog(table.version)
        self._tables[id(table)] = (table, log)
        table.set_delta_hook(lambda op, log=log: self._record(log, op))
        while len(self._tables) > self.MAX_TABLES:
            _, (evicted, _) = self._tables.popitem(last=False)
            evicted.set_delta_hook(None)

    def tracks(self, table: Table) -> bool:
        return id(table) in self._tables

    def records_for(self, table: Table) -> List[DeltaRecord]:
        """All currently retained records (test/introspection helper)."""
        entry = self._tables.get(id(table))
        return list(entry[1].records) if entry is not None else []

    def _record(self, log: _TableLog, op: Dict[str, Any]) -> None:
        kind = op["op"]
        if kind == "create_index":
            return  # no content change, no version stamp
        version = op["version"]
        prev = log.tail_version
        log.tail_version = version
        record: Optional[DeltaRecord] = None
        if kind == "insert":
            record = DeltaRecord(prev, version, inserted=(op["row"],))
        elif kind == "delete":
            record = DeltaRecord(prev, version, deleted=tuple(op["rows"]))
        elif kind == "update":
            record = DeltaRecord(prev, version, changes=tuple(op["changes"]))
        elif kind == "replace":
            classified = _classify_replace(op["old_rows"], op["rows"])
            if classified is None:
                record = DeltaRecord(prev, version, barrier=True)
            else:
                inserted, deleted = classified
                record = DeltaRecord(prev, version, inserted=inserted, deleted=deleted)
        if record is None:
            return
        log.records.append(record)
        log.weight += record.weight
        cap = self.max_rows_per_table
        if cap is not None:
            while log.weight > cap and len(log.records) > 1:
                log.weight -= log.records.pop(0).weight

    def deltas_for(self, table: Table, since_version: int) -> Optional[List[DeltaRecord]]:
        """The delta records covering ``since_version`` -> ``table.version``.

        Returns ``[]`` when the table is already at ``since_version``, and
        ``None`` when the retained records cannot *prove* coverage: the
        table is untracked, the span starts before the retained window, a
        barrier (unclassifiable replace) sits inside it, or the chain of
        ``prev_version -> version`` stamps has a gap.
        """
        entry = self._tables.get(id(table))
        if entry is None:
            return None
        self._tables.move_to_end(id(table))
        if table.version == since_version:
            return []
        covering = [r for r in entry[1].records if r.version > since_version]
        if not covering:
            return None
        if covering[0].prev_version != since_version:
            return None
        for earlier, later in zip(covering, covering[1:]):
            if later.prev_version != earlier.version:
                return None
        if covering[-1].version != table.version:
            return None
        if any(r.barrier for r in covering):
            return None
        return covering


# ---------------------------------------------------------------------------
# Delta programs
# ---------------------------------------------------------------------------


class _Unsupported(ReproError):
    """Internal: plan shape analysis rejection (carries the reason)."""


def _analyze_plan(plan: Operator):
    """Decompose a plan into (leaf, steps, project) or raise _Unsupported.

    The supported shape is a left spine over exactly one source table:
    ``[ProjectOp?] (FilterOp | inner join)* (ScanOp | IndexScanOp)``, where
    each join's right side is an arbitrary subtree *not* reading the source
    table.  ``steps`` comes back bottom-up (leaf side first).
    """
    node = plan
    project: Optional[ProjectOp] = None
    if isinstance(node, ProjectOp):
        project = node
        node = node.child
    steps: List[Tuple[str, Operator]] = []
    while True:
        if isinstance(node, (ScanOp, IndexScanOp)):
            leaf = node
            break
        if isinstance(node, FilterOp):
            steps.append(("filter", node))
            node = node.child
        elif isinstance(node, NestedLoopJoinOp):
            if node.join_type not in ("CROSS", "INNER"):
                raise _Unsupported(f"{node.join_type} join")
            steps.append(("nlj", node))
            node = node.left
        elif isinstance(node, HashJoinOp):
            if node.join_type != "INNER":
                raise _Unsupported(f"{node.join_type} hash join")
            steps.append(("hash", node))
            node = node.left
        elif isinstance(node, IndexNestedLoopJoinOp):
            steps.append(("inlj", node))
            node = node.left
        else:
            raise _Unsupported(type(node).__name__)
    steps.reverse()
    _reject_subqueries(plan)
    source = leaf.table_name
    for kind, op in steps:
        if kind in ("nlj", "hash") and source in tables_read(op.right):
            raise _Unsupported("source table joined with itself")
        if kind == "inlj" and op.table_name == source:
            raise _Unsupported("source table joined with itself")
    return leaf, steps, project


def _reject_subqueries(plan: Operator) -> None:
    for expression in operator_expressions(plan):
        for node in expression.walk():
            if expression_subquery(node) is not None:
                raise _Unsupported("subquery expression")
    for child in plan.children():
        _reject_subqueries(child)


def build_delta_program(
    ast: Query, plan: Operator, tables: frozenset
) -> Optional["DeltaProgram"]:
    """Compile a delta program for ``plan``, or None when unsupported."""
    program, _ = classify_plan(ast, plan, tables)
    return program


def classify_plan(ast: Query, plan: Operator, tables: frozenset):
    """(program-or-None, human-readable reason) for a plan's delta support."""
    try:
        leaf, steps, project = _analyze_plan(plan)
        program = DeltaProgram(ast, plan, leaf, steps, project, tables)
    except _Unsupported as reason:
        return None, str(reason)
    return program, f"delta spine over {leaf.table_name}"


def describe_maintenance(ast: Query, plan: Operator, tables: frozenset) -> str:
    """The EXPLAIN-facing classification of a plan's maintenance support."""
    program, reason = classify_plan(ast, plan, tables)
    if program is None:
        return f"recompute ({reason})"
    return f"incremental ({reason})"


class _Runtime:
    """Per-patch execution state: resolved tables, closures, join inputs.

    Built fresh for every :meth:`DeltaProgram.snapshot` / ``maintain`` call
    so it always sees the current catalog; join right sides execute once
    per runtime (they are proven unchanged for the span being patched).
    """

    def __init__(self, program: "DeltaProgram", context: ExecutionContext) -> None:
        self.context = context
        self.table = context.catalog.resolve_table(program.source)
        leaf = program.leaf
        columns: Tuple[ColumnInfo, ...] = tuple(
            ColumnInfo(name=name, qualifier=leaf.binding_name)
            for name in self.table.schema.column_names
        )
        self.admit, self.index_ordered = self._leaf_admit(leaf, self.table)
        self.appliers: List[Callable[[List[Row]], List[Row]]] = []
        for kind, node in program.steps:
            if kind == "filter":
                self.appliers.append(self._filter_applier(node, columns))
            elif kind == "nlj":
                applier, columns = self._nlj_applier(node, columns)
                self.appliers.append(applier)
            elif kind == "hash":
                applier, columns = self._hash_applier(node, columns)
                self.appliers.append(applier)
            else:  # inlj
                applier, columns = self._inlj_applier(node, columns)
                self.appliers.append(applier)
        if program.project is not None:
            self.appliers.append(self._project_applier(program.project, columns))

    # -- leaf ----------------------------------------------------------------

    def _leaf_admit(self, leaf: Operator, table: Table):
        """(row -> bool admission fn, index_ordered flag) for the leaf.

        ``index_ordered`` is True when the leaf's output order is the index
        bucket order (updates re-append) rather than base-table row order
        (updates patch in place) — mirroring which path
        :meth:`IndexScanOp.execute` would take against this table.
        """
        if isinstance(leaf, ScanOp):
            return (lambda row: True), False
        schema = table.schema
        keys = list(zip(leaf.key_columns, leaf.key_values))
        if not all(
            schema.has_column(name) and _indexable_literal(value, schema.column(name).dtype)
            for name, value in keys
        ):
            # IndexScanOp falls back to a scan + _compare filter here, which
            # preserves base-table order — so updates patch in place.
            positions = [
                schema.column_position(name) if schema.has_column(name) else None
                for name, _ in keys
            ]
            if any(position is None for position in positions):
                raise _Unsupported("index key columns missing from schema")
            values = [value for _, value in keys]

            def compare_admit(row: Row) -> bool:
                return all(
                    _compare("=", row[position], value) is True
                    for position, value in zip(positions, values)
                )

            return compare_admit, False
        probe: List[Any] = []
        for name, value in keys:
            value = _index_probe_value(value, schema.column(name).dtype)
            if value is _NO_MATCH:
                return (lambda row: False), True
            probe.append(value)
        positions = [schema.column_position(name) for name, _ in keys]

        def probe_admit(row: Row) -> bool:
            return all(
                row[position] == value for position, value in zip(positions, probe)
            )

        return probe_admit, True

    # -- step appliers -------------------------------------------------------

    def _filter_applier(self, node: FilterOp, columns: Tuple[ColumnInfo, ...]):
        relation = Relation(columns, [])
        fn = self.context.compiled(node.predicate, relation)
        if fn is not None:
            return lambda rows: [row for row in rows if fn(row) is True]
        evaluate = self.context.evaluator.evaluate
        predicate = node.predicate
        return lambda rows: [
            row
            for row in rows
            if evaluate(predicate, RowScope(relation, row, None)) is True
        ]

    def _nlj_applier(self, node: NestedLoopJoinOp, columns: Tuple[ColumnInfo, ...]):
        right = node.right.execute(self.context, None)
        combined_columns = tuple(columns) + tuple(right.columns)
        combined = Relation(combined_columns, [])
        cross = node.join_type == "CROSS"
        condition = node.condition
        condition_fn = (
            self.context.compiled(condition, combined)
            if not cross and condition is not None
            else None
        )
        context = self.context
        right_rows = right.rows

        def apply(rows: List[Row]) -> List[Row]:
            out: List[Row] = []
            for left_row in rows:
                for right_row in right_rows:
                    candidate = left_row + right_row
                    if cross:
                        accept = True
                    elif condition_fn is not None:
                        accept = condition_fn(candidate) is True
                    else:
                        scope = RowScope(combined, candidate, None)
                        accept = context.predicate(condition, scope)
                    if accept:
                        out.append(candidate)
            return out

        return apply, combined_columns

    def _hash_applier(self, node: HashJoinOp, columns: Tuple[ColumnInfo, ...]):
        right = node.right.execute(self.context, None)
        combined_columns = tuple(columns) + tuple(right.columns)
        combined = Relation(combined_columns, [])
        right_key, _ = _tuple_evaluator(self.context, node.right_keys, right, None)
        build: Dict[Tuple[Any, ...], List[Row]] = {}
        for right_row in right.rows:
            key = right_key(right_row)
            if any(value is None for value in key):
                continue
            build.setdefault(key, []).append(right_row)
        left_key, _ = _tuple_evaluator(
            self.context, node.left_keys, Relation(columns, []), None
        )
        residual = node.residual
        residual_fn = (
            self.context.compiled(residual, combined) if residual is not None else None
        )
        context = self.context

        def apply(rows: List[Row]) -> List[Row]:
            out: List[Row] = []
            for left_row in rows:
                key = left_key(left_row)
                if any(value is None for value in key):
                    continue
                for right_row in build.get(key, ()):
                    candidate = left_row + right_row
                    if residual is None:
                        accept = True
                    elif residual_fn is not None:
                        accept = residual_fn(candidate) is True
                    else:
                        scope = RowScope(combined, candidate, None)
                        accept = context.predicate(residual, scope)
                    if accept:
                        out.append(candidate)
            return out

        return apply, combined_columns

    def _inlj_applier(self, node: IndexNestedLoopJoinOp, columns: Tuple[ColumnInfo, ...]):
        right_table = self.context.catalog.resolve_table(node.table_name)
        right_table.ensure_index(node.right_columns)
        right_columns = tuple(
            ColumnInfo(name=name, qualifier=node.binding_name)
            for name in right_table.schema.column_names
        )
        combined_columns = tuple(columns) + right_columns
        combined = Relation(combined_columns, [])
        left_key, _ = _tuple_evaluator(
            self.context, node.left_keys, Relation(columns, []), None
        )
        residual = node.residual
        residual_fn = (
            self.context.compiled(residual, combined) if residual is not None else None
        )
        context = self.context
        key_columns = node.right_columns

        def apply(rows: List[Row]) -> List[Row]:
            out: List[Row] = []
            for left_row in rows:
                key = left_key(left_row)
                if any(value is None for value in key):
                    continue
                for right_row in right_table.index_lookup(key_columns, key):
                    candidate = left_row + right_row
                    if residual is None:
                        accept = True
                    elif residual_fn is not None:
                        accept = residual_fn(candidate) is True
                    else:
                        scope = RowScope(combined, candidate, None)
                        accept = context.predicate(residual, scope)
                    if accept:
                        out.append(candidate)
            return out

        return apply, combined_columns

    def _project_applier(self, node: ProjectOp, columns: Tuple[ColumnInfo, ...]):
        relation = Relation(columns, [])
        out_columns, extractors, needs_scope, _ = _projection_plan(
            node.items, relation, self.context
        )
        del out_columns  # layout already pinned by the cached rows
        context = self.context

        def apply(rows: List[Row]) -> List[Row]:
            out: List[Row] = []
            for row in rows:
                scope = RowScope(relation, row, None) if needs_scope else None
                out.append(tuple(extract(context, scope, row) for extract in extractors))
            return out

        return apply

    # -- evaluation ----------------------------------------------------------

    def outputs(self, source_row: Row, apply_leaf: bool = True) -> List[Row]:
        """The plan's output rows produced by one source-table row."""
        if apply_leaf and not self.admit(source_row):
            return []
        rows = [source_row]
        for apply in self.appliers:
            rows = apply(rows)
            if not rows:
                return rows
        return rows


class DeltaProgram:
    """The delta rules for one supported plan (see module docstring).

    Instances are immutable and shared across cache entries for the same
    plan; all mutable state (the provenance pairs) lives in the cache entry.
    """

    __slots__ = ("ast", "plan", "leaf", "steps", "project", "tables", "source", "fanout")

    def __init__(
        self,
        ast: Query,
        plan: Operator,
        leaf: Operator,
        steps: List[Tuple[str, Operator]],
        project: Optional[ProjectOp],
        tables: frozenset,
    ) -> None:
        self.ast = ast
        self.plan = plan
        self.leaf = leaf
        self.steps = steps
        self.project = project
        self.tables = tables
        self.source = leaf.table_name
        #: Work factor per delta row: one pass per spine step + projection.
        self.fanout = max(1, len(steps) + (1 if project is not None else 0))
        if self.source not in tables:
            raise _Unsupported("source table missing from read set")

    @property
    def has_join(self) -> bool:
        return any(kind != "filter" for kind, _ in self.steps)

    def snapshot(self, context: ExecutionContext, expected_rows: Sequence[Row]):
        """Provenance pairs for the current state, verified against the rows
        the plan actually produced (or None when unsupported/mismatched)."""
        try:
            runtime = _Runtime(self, context)
        except (_Unsupported, UnknownTableError):
            return None
        pairs: List[Tuple[Row, Row]] = []
        # The leaf's own execution yields the base rows in plan order (table
        # order for scans, bucket order for index scans), which seeds the
        # provenance order everything downstream preserves.
        source_rows = self.leaf.execute(context, None).rows
        for source_row in source_rows:
            for out in runtime.outputs(source_row, apply_leaf=False):
                pairs.append((source_row, out))
        if [out for _, out in pairs] != list(expected_rows):
            return None
        return pairs

    def maintain(
        self,
        pairs: List[Tuple[Row, Row]],
        stamp: Tuple[Tuple[str, int], ...],
        context: ExecutionContext,
        delta_log: DeltaLog,
        stats: Optional[MaintenanceStats] = None,
    ):
        """Patch ``pairs`` from ``stamp`` to the current table versions.

        Returns ``(new_pairs, new_stamp)`` on success, None on bailout (the
        caller recomputes).  ``pairs`` is never mutated.
        """
        catalog = context.catalog
        changed: List[str] = []
        for name, version in stamp:
            try:
                table = catalog.resolve_table(name)
            except UnknownTableError:
                return None
            if table.version != version:
                changed.append(name)
        if changed != [self.source]:
            return None  # a non-source table moved (or nothing did)
        source_table = catalog.resolve_table(self.source)
        since = dict(stamp)[self.source]
        records = delta_log.deltas_for(source_table, since)
        if not records:
            return None
        n_delta = sum(
            len(r.inserted) + len(r.deleted) + len(r.changes) for r in records
        )
        if self._over_cost(n_delta, source_table):
            return None
        try:
            runtime = _Runtime(self, context)
        except (_Unsupported, UnknownTableError):
            return None
        new_pairs = list(pairs)
        for record in records:
            if record.deleted and not self._apply_delete(new_pairs, record.deleted):
                return None
            if record.changes and not self._apply_changes(new_pairs, record.changes, runtime):
                return None
            for row in record.inserted:
                for out in runtime.outputs(row):
                    new_pairs.append((row, out))
        new_stamp = tuple(
            (name, catalog.resolve_table(name).version) for name, _ in stamp
        )
        context.stats.maintenance_delta_rows += n_delta
        if stats is not None:
            stats.delta_rows += n_delta
        return new_pairs, new_stamp

    def _over_cost(self, n_delta: int, source_table: Table) -> bool:
        """The cost-based bailout: ``|delta| x fanout`` vs the full-scan cost.

        The full cost is the optimizer's estimate for the whole plan when
        annotated, else the source table's current cardinality (the
        heuristic planner's implied scan cost).
        """
        full_cost = self.plan.estimated_cost
        if full_cost is None:
            full_cost = float(len(source_table.rows) + 1)
        return n_delta * self.fanout > full_cost

    @staticmethod
    def _apply_delete(pairs: List[Tuple[Row, Row]], deleted: Tuple[Row, ...]) -> bool:
        # delete_where removes *every* row matching a value-based predicate
        # (and replace-deletes are only classified when no deleted value
        # survives), so dropping all pairs sourced from the deleted values
        # is positionally exact.
        doomed = set(deleted)
        pairs[:] = [pair for pair in pairs if pair[0] not in doomed]
        return True

    def _apply_changes(
        self,
        pairs: List[Tuple[Row, Row]],
        changes: Tuple[Tuple[Row, Row], ...],
        runtime: _Runtime,
    ) -> bool:
        if self.has_join:
            return False  # per-row output counts vary; not order-provable
        for old_row, new_row in changes:
            outs = runtime.outputs(new_row)
            new_out = outs[0] if outs else None
            position = None
            for index, (source_row, _) in enumerate(pairs):
                if source_row == old_row:
                    position = index
                    break
            if runtime.index_ordered:
                # Index-bucket order: the table removes the old row and
                # re-appends the new one at its bucket's end.
                if position is not None:
                    del pairs[position]
                if new_out is not None:
                    pairs.append((new_row, new_out))
            else:
                # Base-table order: updates keep their row position.
                if position is not None:
                    if new_out is not None:
                        pairs[position] = (new_row, new_out)
                    else:
                        del pairs[position]
                elif new_out is not None:
                    # The old row was filtered out, so its position among
                    # the survivors is unknown — a designed bailout.
                    return False
        return True
