"""Intermediate relations flowing between SQL operators.

A :class:`Relation` is a list of column descriptors plus a list of row
tuples.  Columns keep the binding name (table alias) they came from so
qualified references like ``A.cid`` resolve correctly after joins, and so
positional references like ``O.1`` can pick "the first column of O".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SQLBindingError
from repro.relational.table import Table

__all__ = ["ColumnInfo", "Relation"]


@dataclass(frozen=True)
class ColumnInfo:
    """Metadata for one column of an intermediate relation."""

    name: str
    qualifier: Optional[str] = None

    @property
    def qualified_name(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


class Relation:
    """An ordered set of columns plus the rows that instantiate them."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Sequence[ColumnInfo], rows: Iterable[Tuple[Any, ...]]) -> None:
        self.columns: Tuple[ColumnInfo, ...] = tuple(columns)
        self.rows: List[Tuple[Any, ...]] = list(rows)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_table(cls, table: Table, binding_name: Optional[str] = None) -> "Relation":
        qualifier = binding_name or table.name
        columns = [ColumnInfo(name=name, qualifier=qualifier) for name in table.schema.column_names]
        return cls(columns, list(table.rows))

    @classmethod
    def empty(cls, columns: Sequence[ColumnInfo] = ()) -> "Relation":
        return cls(columns, [])

    @classmethod
    def single_empty_row(cls) -> "Relation":
        """A relation with no columns and exactly one row (SELECT without FROM)."""
        return cls((), [()])

    # -- metadata -------------------------------------------------------------

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    # -- column resolution -------------------------------------------------------

    def find_column(self, name: str, qualifier: Optional[str] = None) -> int:
        """Index of the column matching (qualifier, name).

        Unqualified names must be unambiguous across the relation.  Raises
        :class:`SQLBindingError` when the column is unknown or ambiguous.
        """
        matches = [
            index
            for index, column in enumerate(self.columns)
            if column.name == name and (qualifier is None or column.qualifier == qualifier)
        ]
        if not matches:
            raise SQLBindingError(self._unknown_message(name, qualifier))
        if len(matches) > 1 and qualifier is None:
            raise SQLBindingError(f"ambiguous column reference: {name!r}")
        return matches[0]

    def try_find_column(self, name: str, qualifier: Optional[str] = None) -> Optional[int]:
        try:
            return self.find_column(name, qualifier)
        except SQLBindingError:
            return None

    def find_positional(self, qualifier: str, position: int) -> int:
        """Index of the ``position``-th (1-based) column of binding ``qualifier``."""
        indices = [
            index for index, column in enumerate(self.columns) if column.qualifier == qualifier
        ]
        if not indices:
            raise SQLBindingError(f"unknown table alias {qualifier!r} in positional reference")
        if position < 1 or position > len(indices):
            raise SQLBindingError(
                f"positional reference {qualifier}.{position} out of range "
                f"(alias has {len(indices)} columns)"
            )
        return indices[position - 1]

    def has_qualifier(self, qualifier: str) -> bool:
        return any(column.qualifier == qualifier for column in self.columns)

    def qualifier_columns(self, qualifier: str) -> List[int]:
        return [index for index, column in enumerate(self.columns) if column.qualifier == qualifier]

    def _unknown_message(self, name: str, qualifier: Optional[str]) -> str:
        reference = f"{qualifier}.{name}" if qualifier else name
        available = ", ".join(column.qualified_name for column in self.columns) or "<none>"
        return f"unknown column reference {reference!r}; available: {available}"

    # -- conversion --------------------------------------------------------------

    def as_tuples(self) -> List[Tuple[Any, ...]]:
        return list(self.rows)

    def as_dicts(self) -> List[dict]:
        names = self.column_names
        return [dict(zip(names, row)) for row in self.rows]

    def first(self) -> Optional[Tuple[Any, ...]]:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a 1x1 relation (aggregate results, scalar subqueries)."""
        if not self.rows or not self.columns:
            return None
        return self.rows[0][0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(column.qualified_name for column in self.columns)
        return f"Relation([{names}], {len(self.rows)} rows)"
