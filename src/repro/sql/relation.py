"""Intermediate relations flowing between SQL operators.

A :class:`Relation` is a list of column descriptors plus a list of row
tuples.  Columns keep the binding name (table alias) they came from so
qualified references like ``A.cid`` resolve correctly after joins, and so
positional references like ``O.1`` can pick "the first column of O".

Column resolution is O(1): every distinct column tuple gets one memoized
:class:`RowLayout` holding ``(qualifier, name) -> index`` dictionaries, so
the per-row hot paths (filters, projections, join keys) never scan the
column list and never raise/catch exceptions for speculative lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SQLBindingError
from repro.relational.table import Table

__all__ = ["ColumnInfo", "Relation", "RowLayout", "AMBIGUOUS", "layout_for"]


@dataclass(frozen=True)
class ColumnInfo:
    """Metadata for one column of an intermediate relation."""

    name: str
    qualifier: Optional[str] = None

    @property
    def qualified_name(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


#: Sentinel returned by :meth:`RowLayout.resolve` for ambiguous unqualified names.
AMBIGUOUS = object()


class RowLayout:
    """Precomputed name-resolution maps for one column tuple.

    * ``(qualifier, name)`` resolves qualified references (first match wins,
      mirroring the historical scan order);
    * a bare name resolves unqualified references, or to :data:`AMBIGUOUS`
      when several columns share the name;
    * per-qualifier index lists serve positional references and ``alias.*``.
    """

    __slots__ = ("columns", "_by_qualified", "_by_name", "_by_qualifier")

    def __init__(self, columns: Tuple[ColumnInfo, ...]) -> None:
        self.columns = columns
        by_qualified: Dict[Tuple[Optional[str], str], int] = {}
        by_name: Dict[str, Any] = {}
        by_qualifier: Dict[str, List[int]] = {}
        for index, column in enumerate(columns):
            by_qualified.setdefault((column.qualifier, column.name), index)
            if column.name in by_name:
                by_name[column.name] = AMBIGUOUS
            else:
                by_name[column.name] = index
            if column.qualifier is not None:
                by_qualifier.setdefault(column.qualifier, []).append(index)
        self._by_qualified = by_qualified
        self._by_name = by_name
        self._by_qualifier = by_qualifier

    def resolve(self, name: str, qualifier: Optional[str]) -> Any:
        """The column index, ``None`` when unknown, :data:`AMBIGUOUS` when ambiguous."""
        if qualifier is None:
            return self._by_name.get(name)
        return self._by_qualified.get((qualifier, name))

    def has_qualifier(self, qualifier: str) -> bool:
        return qualifier in self._by_qualifier

    def qualifier_columns(self, qualifier: str) -> List[int]:
        return self._by_qualifier.get(qualifier, [])


#: Layouts memoized per column tuple; the set of distinct layouts is bounded
#: by the queries of the program, not by the data, so no eviction is needed.
_LAYOUT_CACHE: Dict[Tuple[ColumnInfo, ...], RowLayout] = {}


def layout_for(columns: Tuple[ColumnInfo, ...]) -> RowLayout:
    """The memoized :class:`RowLayout` for a column tuple."""
    layout = _LAYOUT_CACHE.get(columns)
    if layout is None:
        layout = _LAYOUT_CACHE[columns] = RowLayout(columns)
    return layout


class Relation:
    """An ordered set of columns plus the rows that instantiate them."""

    __slots__ = ("columns", "rows", "_layout")

    def __init__(self, columns: Sequence[ColumnInfo], rows: Iterable[Tuple[Any, ...]]) -> None:
        self.columns: Tuple[ColumnInfo, ...] = tuple(columns)
        self.rows: List[Tuple[Any, ...]] = list(rows)
        self._layout: Optional[RowLayout] = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_table(cls, table: Table, binding_name: Optional[str] = None) -> "Relation":
        qualifier = binding_name or table.name
        columns = [ColumnInfo(name=name, qualifier=qualifier) for name in table.schema.column_names]
        return cls(columns, list(table.rows))

    @classmethod
    def empty(cls, columns: Sequence[ColumnInfo] = ()) -> "Relation":
        return cls(columns, [])

    @classmethod
    def single_empty_row(cls) -> "Relation":
        """A relation with no columns and exactly one row (SELECT without FROM)."""
        return cls((), [()])

    # -- metadata -------------------------------------------------------------

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)

    @property
    def layout(self) -> RowLayout:
        layout = self._layout
        if layout is None:
            layout = self._layout = layout_for(self.columns)
        return layout

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    # -- column resolution -------------------------------------------------------

    def find_column(self, name: str, qualifier: Optional[str] = None) -> int:
        """Index of the column matching (qualifier, name).

        Unqualified names must be unambiguous across the relation.  Raises
        :class:`SQLBindingError` when the column is unknown or ambiguous.
        """
        index = self.layout.resolve(name, qualifier)
        if index is None:
            raise SQLBindingError(self._unknown_message(name, qualifier))
        if index is AMBIGUOUS:
            raise SQLBindingError(f"ambiguous column reference: {name!r}")
        return index

    def try_find_column(self, name: str, qualifier: Optional[str] = None) -> Optional[int]:
        """Like :meth:`find_column` but returns None instead of raising.

        This is the per-row hot path (scope lookups consult it for every
        column reference of every row), so unknown and ambiguous names are
        plain dictionary misses rather than raised-and-caught exceptions.
        """
        index = self.layout.resolve(name, qualifier)
        if index is None or index is AMBIGUOUS:
            return None
        return index

    def find_positional(self, qualifier: str, position: int) -> int:
        """Index of the ``position``-th (1-based) column of binding ``qualifier``."""
        indices = self.layout.qualifier_columns(qualifier)
        if not indices:
            raise SQLBindingError(f"unknown table alias {qualifier!r} in positional reference")
        if position < 1 or position > len(indices):
            raise SQLBindingError(
                f"positional reference {qualifier}.{position} out of range "
                f"(alias has {len(indices)} columns)"
            )
        return indices[position - 1]

    def has_qualifier(self, qualifier: str) -> bool:
        return self.layout.has_qualifier(qualifier)

    def qualifier_columns(self, qualifier: str) -> List[int]:
        return list(self.layout.qualifier_columns(qualifier))

    def _unknown_message(self, name: str, qualifier: Optional[str]) -> str:
        reference = f"{qualifier}.{name}" if qualifier else name
        available = ", ".join(column.qualified_name for column in self.columns) or "<none>"
        return f"unknown column reference {reference!r}; available: {available}"

    # -- conversion --------------------------------------------------------------

    def as_tuples(self) -> List[Tuple[Any, ...]]:
        return list(self.rows)

    def as_dicts(self) -> List[dict]:
        names = self.column_names
        return [dict(zip(names, row)) for row in self.rows]

    def first(self) -> Optional[Tuple[Any, ...]]:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a 1x1 relation (aggregate results, scalar subqueries)."""
        if not self.rows or not self.columns:
            return None
        return self.rows[0][0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(column.qualified_name for column in self.columns)
        return f"Relation([{names}], {len(self.rows)} rows)"
