"""Compile expression ASTs into plain Python closures over a fixed row layout.

The tree-walking :class:`~repro.sql.evaluator.Evaluator` resolves every
column reference and dispatches on every AST node *per row*.  This module
does that work once per (expression, layout) pair instead: column references
become tuple-offset reads, three-valued logic is inlined into the closures,
and LIKE patterns with literal text get their regex compiled at plan time.
The resulting closure takes one row tuple and returns the SQL value.

Compilation is *best effort* and semantics-preserving: any construct whose
evaluation needs more than the current row — correlated or positional column
references, subqueries (IN/EXISTS/scalar), aggregates — makes
:func:`compile_expression` return ``None`` and the caller falls back to the
interpreter, which chains row scopes to outer queries.  The property tests
in ``tests/sql/test_compile.py`` assert closure-vs-interpreter agreement on
randomized expressions, including NULL three-valued logic, LIKE, BETWEEN
and IN.
"""

from __future__ import annotations

import operator as _operator
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import SQLExecutionError
from repro.sql.ast import (
    BetweenExpression,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    ExistsExpression,
    Expression,
    FunctionCall,
    InExpression,
    IsNullExpression,
    LikeExpression,
    Literal,
    ScalarSubquery,
    Star,
    UnaryOp,
)
from repro.sql.evaluator import _and3, _compare, _like_to_regex, _or3
from repro.sql.relation import AMBIGUOUS, ColumnInfo, layout_for

__all__ = ["compile_expression", "compile_predicate", "cached_compile"]

#: A compiled expression: one row tuple in, one SQL value out.
RowFn = Callable[[Tuple[Any, ...]], Any]


class _Unsupported(Exception):
    """Internal signal: this subtree needs the interpreter."""


def compile_expression(
    expression: Expression,
    columns: Tuple[ColumnInfo, ...],
    functions,
) -> Optional[RowFn]:
    """Compile ``expression`` against a column layout, or None when unsupported."""
    layout = layout_for(tuple(columns))
    try:
        return _compile(expression, layout, functions)
    except _Unsupported:
        return None


def compile_predicate(
    expression: Expression,
    columns: Tuple[ColumnInfo, ...],
    functions,
) -> Optional[Callable[[Tuple[Any, ...]], bool]]:
    """Compile a WHERE-style predicate; NULL results behave as false."""
    fn = compile_expression(expression, columns, functions)
    if fn is None:
        return None
    return lambda row: fn(row) is True


def cached_compile(
    cache: Dict[Any, Tuple[Expression, Optional[RowFn]]],
    expression: Expression,
    columns: Tuple[ColumnInfo, ...],
    functions,
) -> Optional[RowFn]:
    """Memoized :func:`compile_expression` keyed by (AST identity, layout).

    The cache stores the expression object alongside the closure so the AST
    stays alive for as long as its ``id()`` is used as a key.  Failed
    compilations are cached too (as ``None``) so interpreter-only
    expressions are probed once, not per execution.

    Thread safety: the single ``get`` and single assignment below are each
    atomic under the GIL; two threads racing on a cold key at worst compile
    the expression twice, and the entries are interchangeable, so no lock is
    taken on this per-row-hot path (see docs/concurrency.md).
    """
    key = (id(expression), columns)
    entry = cache.get(key)
    if entry is None:
        entry = (expression, compile_expression(expression, columns, functions))
        cache[key] = entry
    return entry[1]


# ---------------------------------------------------------------------------
# Node compilers
# ---------------------------------------------------------------------------


def _compile(node: Expression, layout, functions) -> RowFn:
    handler = _HANDLERS.get(type(node))
    if handler is None:
        raise _Unsupported
    return handler(node, layout, functions)


def _compile_literal(node: Literal, layout, functions) -> RowFn:
    value = node.value
    return lambda row: value


def _compile_column(node: ColumnRef, layout, functions) -> RowFn:
    if node.is_positional:
        raise _Unsupported  # positional refs keep the interpreter's scope chain
    index = layout.resolve(node.name, node.qualifier)
    if index is None or index is AMBIGUOUS:
        raise _Unsupported  # unknown here: may be a correlated outer reference
    return _operator.itemgetter(index)


def _compile_star(node: Star, layout, functions) -> RowFn:
    # Star only appears inside COUNT(*); the interpreter yields a non-null marker.
    return lambda row: 1


def _compile_function(node: FunctionCall, layout, functions) -> RowFn:
    if node.is_aggregate:
        raise _Unsupported  # aggregates are computed by AggregateOp, not per row
    argument_fns = tuple(_compile(argument, layout, functions) for argument in node.arguments)
    call = functions.call
    name = node.name
    return lambda row: call(name, [fn(row) for fn in argument_fns])


def _compile_unary(node: UnaryOp, layout, functions) -> RowFn:
    operand = _compile(node.operand, layout, functions)
    if node.operator.upper() == "NOT":
        def _not(row):
            value = operand(row)
            if value is None:
                return None
            return not bool(value)

        return _not
    if node.operator == "-":
        def _neg(row):
            value = operand(row)
            return None if value is None else -value

        return _neg
    raise _Unsupported


_ARITHMETIC = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
    "%": _operator.mod,
}


def _compile_binary(node: BinaryOp, layout, functions) -> RowFn:
    op = node.operator.upper()
    if op in ("AND", "OR"):
        left = _compile(node.left, layout, functions)
        right = _compile(node.right, layout, functions)
        combine = _and3 if op == "AND" else _or3

        def _logic(row):
            left_value = left(row)
            return combine(
                None if left_value is None else bool(left_value),
                lambda: (lambda v: None if v is None else bool(v))(right(row)),
            )

        return _logic

    left = _compile(node.left, layout, functions)
    right = _compile(node.right, layout, functions)

    if op in ("=", "<>", "<", "<=", ">", ">="):
        return lambda row: _compare(op, left(row), right(row))

    if op == "/":
        def _divide(row):
            left_value = left(row)
            right_value = right(row)
            if left_value is None or right_value is None:
                return None
            if right_value == 0:
                raise SQLExecutionError("division by zero")
            try:
                return left_value / right_value
            except TypeError as exc:
                raise SQLExecutionError(
                    f"type error evaluating {node.to_sql()}: {exc}"
                ) from exc

        return _divide

    arith = _ARITHMETIC.get(op)
    if arith is None:
        raise _Unsupported  # the interpreter reports the unsupported operator

    def _arith(row):
        left_value = left(row)
        right_value = right(row)
        if left_value is None or right_value is None:
            return None
        try:
            return arith(left_value, right_value)
        except TypeError as exc:
            raise SQLExecutionError(
                f"type error evaluating {node.to_sql()}: {exc}"
            ) from exc

    return _arith


def _compile_in(node: InExpression, layout, functions) -> RowFn:
    if node.subquery is not None:
        raise _Unsupported
    operand = _compile(node.operand, layout, functions)
    value_fns = tuple(_compile(value, layout, functions) for value in node.values)
    negated = node.negated

    def _in(row):
        left = operand(row)
        # Candidates are evaluated eagerly, as the interpreter does, so that
        # evaluation errors surface even when the operand is NULL.
        candidates = [fn(row) for fn in value_fns]
        if left is None:
            return None
        found = False
        saw_null = False
        for candidate in candidates:
            if candidate is None:
                saw_null = True
                continue
            if _compare("=", left, candidate) is True:
                found = True
                break
        if negated:
            if found:
                return False
            return None if saw_null else True
        if found:
            return True
        return None if saw_null else False

    return _in


def _compile_is_null(node: IsNullExpression, layout, functions) -> RowFn:
    operand = _compile(node.operand, layout, functions)
    if node.negated:
        return lambda row: operand(row) is not None
    return lambda row: operand(row) is None


def _compile_between(node: BetweenExpression, layout, functions) -> RowFn:
    operand = _compile(node.operand, layout, functions)
    low = _compile(node.low, layout, functions)
    high = _compile(node.high, layout, functions)
    negated = node.negated

    def _between(row):
        value = operand(row)
        lower = _compare(">=", value, low(row))
        upper = _compare("<=", value, high(row))
        result = _and3(lower, lambda: upper)
        if negated:
            return None if result is None else not result
        return result

    return _between


def _compile_like(node: LikeExpression, layout, functions) -> RowFn:
    operand = _compile(node.operand, layout, functions)
    negated = node.negated
    if isinstance(node.pattern, Literal):
        if node.pattern.value is None:
            # Still evaluate the operand: its errors must surface as they
            # do in the interpreter, which evaluates it before the pattern.
            return lambda row: (operand(row), None)[1]
        regex = _like_to_regex(str(node.pattern.value))

        def _like_const(row):
            value = operand(row)
            if value is None:
                return None
            matched = bool(regex.fullmatch(str(value)))
            return (not matched) if negated else matched

        return _like_const

    pattern = _compile(node.pattern, layout, functions)

    def _like(row):
        value = operand(row)
        pattern_value = pattern(row)
        if value is None or pattern_value is None:
            return None
        matched = bool(_like_to_regex(str(pattern_value)).fullmatch(str(value)))
        return (not matched) if negated else matched

    return _like


def _compile_case(node: CaseExpression, layout, functions) -> RowFn:
    whens = tuple(
        (_compile(condition, layout, functions), _compile(value, layout, functions))
        for condition, value in node.whens
    )
    default = _compile(node.default, layout, functions) if node.default is not None else None

    def _case(row):
        for condition, value in whens:
            if condition(row) is True:
                return value(row)
        if default is not None:
            return default(row)
        return None

    return _case


def _unsupported(node, layout, functions) -> RowFn:
    raise _Unsupported


_HANDLERS = {
    Literal: _compile_literal,
    ColumnRef: _compile_column,
    Star: _compile_star,
    FunctionCall: _compile_function,
    UnaryOp: _compile_unary,
    BinaryOp: _compile_binary,
    InExpression: _compile_in,
    IsNullExpression: _compile_is_null,
    BetweenExpression: _compile_between,
    LikeExpression: _compile_like,
    CaseExpression: _compile_case,
    ExistsExpression: _unsupported,
    ScalarSubquery: _unsupported,
}
