"""Physical operators for SQL execution.

Operators form a tree; each node's :meth:`execute` produces a
:class:`~repro.sql.relation.Relation`.  The operator set covers what Hilda
programs need (scans, index scans, selections, projections, nested-loop /
hash / index-nested-loop joins, left outer joins, unions, distinct,
grouping/aggregation, sorting, limits) plus derived tables.

Operators receive an :class:`ExecutionContext` that carries the catalog,
function registry, evaluator, the compiled-closure cache and per-query
statistics.  ``outer_scope`` is the row scope of an enclosing query for
correlated subqueries.

Per-row expression work goes through :meth:`ExecutionContext.compiled`
first: when the expression compiles against the input relation's layout
(see :mod:`repro.sql.compile`) the operator runs a plain closure per row;
otherwise it falls back to the tree-walking evaluator with a chained
:class:`RowScope`.  ``ExecutionStats.compiled_evals`` /
``interpreted_evals`` record which path served each evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SQLExecutionError
from repro.sql.ast import (
    AGGREGATE_FUNCTIONS,
    ColumnRef,
    Expression,
    FunctionCall,
    OrderItem,
    SelectItem,
    Star,
)
from repro.sql.compile import cached_compile
from repro.sql.evaluator import Evaluator, RowScope
from repro.sql.relation import ColumnInfo, Relation
from repro.sql.stats import ExecutionStats

__all__ = [
    "ExecutionContext",
    "ExecutionStats",
    "Operator",
    "explain_plan",
    "q_error",
    "ScanOp",
    "IndexScanOp",
    "ValuesOp",
    "FilterOp",
    "ProjectOp",
    "NestedLoopJoinOp",
    "HashJoinOp",
    "IndexNestedLoopJoinOp",
    "UnionOp",
    "DistinctOp",
    "SortOp",
    "LimitOp",
    "AggregateOp",
    "SubqueryScanOp",
]


class ExecutionContext:
    """Everything an operator needs to run."""

    def __init__(
        self,
        catalog,
        functions,
        subquery_executor,
        stats: Optional[ExecutionStats] = None,
        compile_cache: Optional[Dict] = None,
        compile_expressions: bool = True,
    ):
        self.catalog = catalog
        self.functions = functions
        self.stats = stats or ExecutionStats()
        self.evaluator = Evaluator(functions, subquery_executor, stats=self.stats)
        self.compile_cache = {} if compile_cache is None else compile_cache
        self.compile_expressions = compile_expressions

    def predicate(self, expression: Optional[Expression], scope: Optional[RowScope]) -> bool:
        if expression is None:
            return True
        return self.evaluator.evaluate_predicate(expression, scope)

    def compiled(self, expression: Optional[Expression], relation: Relation):
        """A compiled row closure for ``expression`` over ``relation``, or None."""
        if not self.compile_expressions or expression is None:
            return None
        return cached_compile(self.compile_cache, expression, relation.columns, self.functions)


class Operator:
    """Base class for physical operators."""

    #: Optimizer annotations: estimated output rows and cumulative cost of
    #: this subtree.  Set by the cost-based planner; ``None`` under the
    #: heuristic strategy (whose EXPLAIN output is unchanged).
    estimated_rows: Optional[float] = None
    estimated_cost: Optional[float] = None
    #: Feedback fingerprint of the join-graph node this operator computes
    #: (:mod:`repro.sql.optimizer.feedback`); the executor's observation
    #: pass records the operator's actual output rows under this key.
    #: ``None`` when feedback-driven re-optimization is off or the operator
    #: is outside the join pipeline.
    feedback_key: Optional[Tuple] = None

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        raise NotImplementedError

    def children(self) -> Sequence["Operator"]:
        return ()

    def describe(self) -> str:
        """One-line description used in EXPLAIN-style output."""
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        return explain_plan(self, indent=indent)


def explain_plan(
    plan: Operator,
    actuals: Optional[Dict[int, Tuple[int, int]]] = None,
    indent: int = 0,
) -> str:
    """Render a plan tree, one operator per line, with its annotations.

    Each line is ``describe()`` plus, when the optimizer annotated the
    operator, ``(est rows=N cost=C)``.  ``actuals`` (from EXPLAIN ANALYZE)
    maps ``id(operator)`` to ``(executions, total output rows)`` and adds
    ``[actual rows=R loops=L]`` so estimates can be read against reality;
    operators carrying an estimate additionally print ``q=N.NN`` — the
    per-operator q-error (the larger of actual/estimated and
    estimated/actual, +1-smoothed) — so a mis-planned node is visible from
    the output alone.
    """
    line = "  " * indent + plan.describe()
    if plan.estimated_rows is not None:
        cost = "" if plan.estimated_cost is None else f" cost={plan.estimated_cost:.1f}"
        line += f"  (est rows={_format_rows(plan.estimated_rows)}{cost})"
    if actuals is not None:
        loops, total_rows = actuals.get(id(plan), (0, 0))
        line += f"  [actual rows={total_rows} loops={loops}]"
        if plan.estimated_rows is not None:
            actual = total_rows / max(1, loops)
            line += f" q={q_error(plan.estimated_rows, actual):.2f}"
    lines = [line]
    for child in plan.children():
        lines.append(explain_plan(child, actuals, indent + 1))
    return "\n".join(lines)


def _format_rows(estimate: float) -> str:
    """Row estimates print as integers (they are counts, not measurements)."""
    return str(int(round(estimate)))


def q_error(estimated: float, actual: float) -> float:
    """The +1-smoothed q-error of an estimate (1.0 is a perfect estimate).

    The same smoothing :meth:`ExecutionStats.record_estimation` applies, so
    the values EXPLAIN ANALYZE prints line up with the counters it bumps.
    """
    smoothing = 1.0
    return max(
        (actual + smoothing) / (estimated + smoothing),
        (estimated + smoothing) / (actual + smoothing),
    )


@dataclass
class ScanOp(Operator):
    """Full scan of a base table under a binding name."""

    table_name: str
    binding_name: str

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        table = context.catalog.resolve_table(self.table_name)
        relation = Relation.from_table(table, self.binding_name)
        context.stats.rows_scanned += len(relation.rows)
        return relation

    def describe(self) -> str:
        alias = f" AS {self.binding_name}" if self.binding_name != self.table_name else ""
        return f"Scan({self.table_name}{alias})"


#: Sentinel: an index probe value that can never match any stored row.
_NO_MATCH = object()


def _indexable_literal(value: Any, dtype) -> bool:
    """True when a hash probe for ``value`` matches the filter semantics.

    The interpreter compares with :func:`~repro.sql.evaluator._compare`,
    which coerces numeric strings; a hash lookup must reach the same rows.
    Combinations where the two could diverge (numbers probing string
    columns, string literals probing dates/bools) must stay on the
    scan+filter path.  Used by the planner to admit index scans and
    re-checked by :class:`IndexScanOp` against the table it actually
    resolves, in case a cached plan meets a different schema.
    """
    import datetime

    from repro.relational.types import DataType

    if value is None:
        return True  # NULL equality matches nothing on either path
    if dtype is DataType.INT or dtype is DataType.FLOAT:
        # Numeric strings are normalized at probe time; non-numeric strings
        # can never equal a rendered number, matching the filter's verdict.
        return isinstance(value, (int, float, str))
    if dtype is DataType.STRING:
        return isinstance(value, str)
    if dtype is DataType.BOOL:
        return isinstance(value, (bool, int))
    if dtype is DataType.DATE:
        return isinstance(value, datetime.date)
    return False


def _index_probe_value(value: Any, dtype) -> Any:
    """Normalize an equality-key value for a hash-index probe.

    Mirrors the interpreter's :func:`~repro.sql.evaluator._normalize_pair`
    coercions for the cases :func:`_indexable_literal` admits: numeric
    strings probe numeric columns, everything incompatible becomes
    :data:`_NO_MATCH` — exactly the rows a filter comparison would reject.
    """
    from repro.relational.types import DataType

    if value is None:
        return _NO_MATCH  # NULL equality is never true
    if dtype in (DataType.INT, DataType.FLOAT) and isinstance(value, str):
        try:
            return float(value) if ("." in value or "e" in value.lower()) else int(value)
        except ValueError:
            return _NO_MATCH
    return value


@dataclass
class IndexScanOp(Operator):
    """Equality lookup on a table's secondary hash index.

    ``key_values`` are plan-time constants (the planner only selects this
    operator for literal equality predicates).  The index is created on
    first use via :meth:`Table.ensure_index` and maintained incrementally by
    the table afterwards.
    """

    table_name: str
    binding_name: str
    key_columns: Tuple[str, ...]
    key_values: Tuple[Any, ...]

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        table = context.catalog.resolve_table(self.table_name)
        columns = [
            ColumnInfo(name=name, qualifier=self.binding_name)
            for name in table.schema.column_names
        ]
        # The planner admitted these key values against the schema it saw; a
        # shared plan cache may hand this plan a same-named table with a
        # different schema, so re-validate before trusting hash equality.
        if not all(
            table.schema.has_column(name)
            and _indexable_literal(value, table.schema.column(name).dtype)
            for name, value in zip(self.key_columns, self.key_values)
        ):
            return self._filtered_scan(context, table, columns)
        table.ensure_index(self.key_columns)
        probe: List[Any] = []
        for name, value in zip(self.key_columns, self.key_values):
            value = _index_probe_value(value, table.schema.column(name).dtype)
            if value is _NO_MATCH:
                return Relation(columns, [])
            probe.append(value)
        context.stats.index_lookups += 1
        rows = table.index_lookup(self.key_columns, tuple(probe))
        context.stats.index_hits += len(rows)
        context.stats.rows_scanned += len(rows)
        return Relation(columns, list(rows))

    def _filtered_scan(self, context: ExecutionContext, table, columns) -> Relation:
        """Scan + compare fallback with the interpreter's equality semantics."""
        from repro.sql.evaluator import _compare

        positions = [
            table.schema.column_position(name) if table.schema.has_column(name) else None
            for name in self.key_columns
        ]
        if any(position is None for position in positions):
            raise SQLExecutionError(
                f"index scan key columns {self.key_columns!r} missing from "
                f"table {self.table_name!r}"
            )
        rows = [
            row
            for row in table.rows
            if all(
                _compare("=", row[position], value) is True
                for position, value in zip(positions, self.key_values)
            )
        ]
        context.stats.rows_scanned += len(table.rows)
        return Relation(columns, rows)

    def describe(self) -> str:
        alias = f" AS {self.binding_name}" if self.binding_name != self.table_name else ""
        keys = ", ".join(
            f"{column}={value!r}" for column, value in zip(self.key_columns, self.key_values)
        )
        return f"IndexScan({self.table_name}{alias} ON {keys})"


@dataclass
class ValuesOp(Operator):
    """A constant relation; with no columns and one row it models SELECT-without-FROM."""

    columns: Tuple[ColumnInfo, ...] = ()
    rows: Tuple[Tuple[Any, ...], ...] = ((),)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        return Relation(self.columns, list(self.rows))

    def describe(self) -> str:
        return f"Values({len(self.rows)} rows)"


@dataclass
class FilterOp(Operator):
    """Select rows of the child satisfying a predicate."""

    child: Operator
    predicate: Expression

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        relation = self.child.execute(context, outer_scope)
        rows = relation.rows
        fn = context.compiled(self.predicate, relation)
        if fn is not None:
            context.stats.compiled_evals += len(rows)
            kept = [row for row in rows if fn(row) is True]
        else:
            predicate = self.predicate
            evaluate = context.evaluator.evaluate
            kept = [
                row
                for row in rows
                if evaluate(predicate, RowScope(relation, row, outer_scope)) is True
            ]
        return Relation(relation.columns, kept)

    def describe(self) -> str:
        return f"Filter({self.predicate.to_sql()})"


@dataclass
class ProjectOp(Operator):
    """Compute the output columns of a SELECT list."""

    child: Operator
    items: Tuple[Union[SelectItem, Star], ...]

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        relation = self.child.execute(context, outer_scope)
        columns, extractors, needs_scope, n_compiled = _projection_plan(
            self.items, relation, context
        )
        context.stats.compiled_evals += n_compiled * len(relation.rows)
        rows = []
        for row in relation.rows:
            scope = RowScope(relation, row, outer_scope) if needs_scope else None
            rows.append(tuple(extract(context, scope, row) for extract in extractors))
        return Relation(columns, rows)

    def describe(self) -> str:
        return "Project(" + ", ".join(item.to_sql() for item in self.items) + ")"


def _projection_plan(
    items: Sequence[Union[SelectItem, Star]], relation: Relation, context: ExecutionContext
) -> Tuple[List[ColumnInfo], List[Callable], bool, int]:
    """Expand stars and build per-output-column extraction callables.

    Returns (columns, extractors, needs_scope, n_compiled): ``needs_scope``
    is True when at least one extractor still needs a per-row
    :class:`RowScope` (interpreter fallback); ``n_compiled`` counts the
    select expressions served by compiled closures.
    """
    columns: List[ColumnInfo] = []
    extractors: List[Callable] = []
    needs_scope = False
    n_compiled = 0

    def add_passthrough(index: int, column: ColumnInfo) -> None:
        columns.append(column)
        extractors.append(lambda context, scope, row, i=index: row[i])

    position = 0
    for item in items:
        if isinstance(item, Star):
            if item.qualifier is None:
                indices = range(len(relation.columns))
            else:
                indices = relation.qualifier_columns(item.qualifier)
                if not indices:
                    raise SQLExecutionError(
                        f"unknown table alias {item.qualifier!r} in select list"
                    )
            for index in indices:
                source = relation.columns[index]
                add_passthrough(index, ColumnInfo(name=source.name, qualifier=None))
            continue
        expression = item.expression
        name = item.alias or _default_column_name(expression, position)
        columns.append(ColumnInfo(name=name, qualifier=None))
        fn = context.compiled(expression, relation)
        if fn is not None:
            n_compiled += 1
            extractors.append(lambda context, scope, row, f=fn: f(row))
        else:
            needs_scope = True
            extractors.append(
                lambda context, scope, row, expr=expression: context.evaluator.evaluate(expr, scope)
            )
        position += 1
    return columns, extractors, needs_scope, n_compiled


def _default_column_name(expression: Expression, position: int) -> str:
    if isinstance(expression, ColumnRef):
        return expression.name
    if isinstance(expression, FunctionCall):
        return expression.name.lower()
    return f"col{position + 1}"


def _tuple_evaluator(
    context: ExecutionContext,
    keys: Tuple[Expression, ...],
    relation: Relation,
    outer_scope: Optional[RowScope],
) -> Tuple[Callable[[Tuple[Any, ...]], Tuple[Any, ...]], bool]:
    """A row -> key-tuple function; compiled per key expression when possible.

    Returns (function, fully_compiled).
    """
    fns = [context.compiled(expr, relation) for expr in keys]
    if all(fn is not None for fn in fns):
        compiled = tuple(fns)

        def compiled_key(row):
            return tuple(fn(row) for fn in compiled)

        return compiled_key, True

    evaluate = context.evaluator.evaluate
    pairs = tuple(zip(fns, keys))

    def mixed_key(row):
        scope = RowScope(relation, row, outer_scope)
        return tuple(
            fn(row) if fn is not None else evaluate(expr, scope) for fn, expr in pairs
        )

    return mixed_key, False


@dataclass
class NestedLoopJoinOp(Operator):
    """Nested-loop join supporting CROSS, INNER and LEFT outer joins."""

    left: Operator
    right: Operator
    join_type: str = "CROSS"  # CROSS | INNER | LEFT
    condition: Optional[Expression] = None

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        left_relation = self.left.execute(context, outer_scope)
        right_relation = self.right.execute(context, outer_scope)
        columns = tuple(left_relation.columns) + tuple(right_relation.columns)
        combined = Relation(columns, [])
        null_right = (None,) * right_relation.arity
        condition_fn = None
        if self.join_type != "CROSS" and self.condition is not None:
            condition_fn = context.compiled(self.condition, combined)
        rows: List[Tuple[Any, ...]] = []
        for left_row in left_relation.rows:
            matched = False
            for right_row in right_relation.rows:
                context.stats.join_probes += 1
                candidate = left_row + right_row
                if self.join_type == "CROSS":
                    accept = True
                elif condition_fn is not None:
                    context.stats.compiled_evals += 1
                    accept = condition_fn(candidate) is True
                else:
                    scope = RowScope(combined, candidate, outer_scope)
                    accept = context.predicate(self.condition, scope)
                if accept:
                    rows.append(candidate)
                    matched = True
            if self.join_type == "LEFT" and not matched:
                rows.append(left_row + null_right)
        context.stats.rows_joined += len(rows)
        return Relation(columns, rows)

    def describe(self) -> str:
        condition = f" ON {self.condition.to_sql()}" if self.condition else ""
        return f"NestedLoopJoin[{self.join_type}]{condition}"


@dataclass
class HashJoinOp(Operator):
    """Equi-join using a hash table built on the right input.

    ``left_keys`` / ``right_keys`` are expressions evaluated against the left
    and right inputs respectively; ``residual`` is an optional extra
    predicate applied to joined rows.
    """

    left: Operator
    right: Operator
    left_keys: Tuple[Expression, ...]
    right_keys: Tuple[Expression, ...]
    join_type: str = "INNER"  # INNER | LEFT
    residual: Optional[Expression] = None

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        left_relation = self.left.execute(context, outer_scope)
        right_relation = self.right.execute(context, outer_scope)
        columns = tuple(left_relation.columns) + tuple(right_relation.columns)
        combined = Relation(columns, [])
        null_right = (None,) * right_relation.arity

        # Build phase over the right input.
        right_key, right_compiled = _tuple_evaluator(
            context, self.right_keys, right_relation, outer_scope
        )
        if right_compiled:
            context.stats.compiled_evals += len(right_relation.rows) * len(self.right_keys)
        build: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        for right_row in right_relation.rows:
            key = right_key(right_row)
            if any(value is None for value in key):
                continue
            build.setdefault(key, []).append(right_row)

        left_key, left_compiled = _tuple_evaluator(
            context, self.left_keys, left_relation, outer_scope
        )
        if left_compiled:
            context.stats.compiled_evals += len(left_relation.rows) * len(self.left_keys)
        residual_fn = (
            context.compiled(self.residual, combined) if self.residual is not None else None
        )
        rows: List[Tuple[Any, ...]] = []
        for left_row in left_relation.rows:
            key = left_key(left_row)
            matches = [] if any(value is None for value in key) else build.get(key, [])
            matched = False
            for right_row in matches:
                context.stats.join_probes += 1
                candidate = left_row + right_row
                if self.residual is None:
                    accept = True
                elif residual_fn is not None:
                    context.stats.compiled_evals += 1
                    accept = residual_fn(candidate) is True
                else:
                    joined_scope = RowScope(combined, candidate, outer_scope)
                    accept = context.predicate(self.residual, joined_scope)
                if accept:
                    rows.append(candidate)
                    matched = True
            if self.join_type == "LEFT" and not matched:
                rows.append(left_row + null_right)
        context.stats.rows_joined += len(rows)
        return Relation(columns, rows)

    def describe(self) -> str:
        keys = ", ".join(
            f"{l.to_sql()}={r.to_sql()}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"HashJoin[{self.join_type}]({keys})"


@dataclass
class IndexNestedLoopJoinOp(Operator):
    """Inner equi-join probing a base table's secondary hash index per left row.

    The right side never materialises a full scan: for every left row the
    join key is evaluated (compiled when possible) and looked up in the
    index on ``right_columns``, which :meth:`Table.ensure_index` creates on
    first use.  Probe semantics match :class:`HashJoinOp` (raw hash
    equality, NULL keys never match).
    """

    left: Operator
    table_name: str
    binding_name: str
    left_keys: Tuple[Expression, ...]
    right_columns: Tuple[str, ...]
    residual: Optional[Expression] = None

    def children(self) -> Sequence[Operator]:
        return (self.left,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        left_relation = self.left.execute(context, outer_scope)
        table = context.catalog.resolve_table(self.table_name)
        table.ensure_index(self.right_columns)
        right_columns = tuple(
            ColumnInfo(name=name, qualifier=self.binding_name)
            for name in table.schema.column_names
        )
        columns = tuple(left_relation.columns) + right_columns
        combined = Relation(columns, [])
        left_key, left_compiled = _tuple_evaluator(
            context, self.left_keys, left_relation, outer_scope
        )
        if left_compiled:
            context.stats.compiled_evals += len(left_relation.rows) * len(self.left_keys)
        residual_fn = (
            context.compiled(self.residual, combined) if self.residual is not None else None
        )
        rows: List[Tuple[Any, ...]] = []
        for left_row in left_relation.rows:
            key = left_key(left_row)
            if any(value is None for value in key):
                continue
            context.stats.index_lookups += 1
            matches = table.index_lookup(self.right_columns, key)
            context.stats.index_hits += len(matches)
            for right_row in matches:
                context.stats.join_probes += 1
                candidate = left_row + right_row
                if self.residual is None:
                    accept = True
                elif residual_fn is not None:
                    context.stats.compiled_evals += 1
                    accept = residual_fn(candidate) is True
                else:
                    scope = RowScope(combined, candidate, outer_scope)
                    accept = context.predicate(self.residual, scope)
                if accept:
                    rows.append(candidate)
        context.stats.rows_joined += len(rows)
        return Relation(columns, rows)

    def describe(self) -> str:
        alias = f" AS {self.binding_name}" if self.binding_name != self.table_name else ""
        keys = ", ".join(
            f"{expr.to_sql()}={column}"
            for expr, column in zip(self.left_keys, self.right_columns)
        )
        return f"IndexNestedLoopJoin({self.table_name}{alias} ON {keys})"


@dataclass
class UnionOp(Operator):
    """UNION / UNION ALL of two inputs; plain UNION removes duplicates."""

    left: Operator
    right: Operator
    all: bool = False

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        left_relation = self.left.execute(context, outer_scope)
        right_relation = self.right.execute(context, outer_scope)
        if left_relation.arity != right_relation.arity:
            raise SQLExecutionError(
                "UNION branches have different arities: "
                f"{left_relation.arity} vs {right_relation.arity}"
            )
        rows = list(left_relation.rows) + list(right_relation.rows)
        if not self.all:
            rows = _dedupe(rows)
        return Relation(left_relation.columns, rows)

    def describe(self) -> str:
        return "UnionAll" if self.all else "Union"


@dataclass
class DistinctOp(Operator):
    """Remove duplicate rows."""

    child: Operator

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        relation = self.child.execute(context, outer_scope)
        return Relation(relation.columns, _dedupe(relation.rows))

    def describe(self) -> str:
        return "Distinct"


@dataclass
class SortOp(Operator):
    """ORDER BY implementation (stable sort, NULLs last for ascending)."""

    child: Operator
    order_by: Tuple[OrderItem, ...]

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        relation = self.child.execute(context, outer_scope)
        rows = list(relation.rows)
        # Apply sort keys from the last to the first to keep stability.
        for item in reversed(self.order_by):
            fn = context.compiled(item.expression, relation)
            if fn is not None:
                context.stats.compiled_evals += len(rows)

                def sort_key(row, fn=fn):
                    value = fn(row)
                    return (value is None, _orderable(value))

            else:
                def sort_key(row, expr=item.expression):
                    scope = RowScope(relation, row, outer_scope)
                    value = context.evaluator.evaluate(expr, scope)
                    return (value is None, _orderable(value))

            rows.sort(key=sort_key, reverse=item.descending)
        return Relation(relation.columns, rows)

    def describe(self) -> str:
        return "Sort(" + ", ".join(item.to_sql() for item in self.order_by) + ")"


@dataclass
class LimitOp(Operator):
    """Keep at most ``limit`` rows."""

    child: Operator
    limit: int

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        relation = self.child.execute(context, outer_scope)
        return Relation(relation.columns, relation.rows[: self.limit])

    def describe(self) -> str:
        return f"Limit({self.limit})"


@dataclass
class AggregateOp(Operator):
    """GROUP BY + aggregate evaluation.

    Each select item is evaluated once per group: aggregate function calls
    are computed over the group's rows, other expressions over the group's
    first row (which is well-defined for grouping columns).
    """

    child: Operator
    group_by: Tuple[Expression, ...]
    items: Tuple[SelectItem, ...]
    having: Optional[Expression] = None

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        relation = self.child.execute(context, outer_scope)

        groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        if self.group_by:
            group_key, compiled = _tuple_evaluator(
                context, self.group_by, relation, outer_scope
            )
            if compiled:
                context.stats.compiled_evals += len(relation.rows) * len(self.group_by)
            for row in relation.rows:
                groups.setdefault(group_key(row), []).append(row)
        else:
            # A global aggregate always produces exactly one group, possibly empty.
            groups[()] = list(relation.rows)

        columns = [
            ColumnInfo(name=item.alias or _default_column_name(item.expression, index))
            for index, item in enumerate(self.items)
        ]
        output_rows: List[Tuple[Any, ...]] = []
        for key, group_rows in groups.items():
            if self.having is not None:
                value = _evaluate_aggregate_expression(
                    context, self.having, relation, group_rows, outer_scope
                )
                if value is not True:
                    continue
            output_rows.append(
                tuple(
                    _evaluate_aggregate_expression(
                        context, item.expression, relation, group_rows, outer_scope
                    )
                    for item in self.items
                )
            )
        return Relation(columns, output_rows)

    def describe(self) -> str:
        by = ", ".join(expr.to_sql() for expr in self.group_by)
        return f"Aggregate(group by {by})" if by else "Aggregate(global)"


@dataclass
class SubqueryScanOp(Operator):
    """A derived table: execute a planned subquery and re-qualify its columns."""

    plan: Operator
    binding_name: str

    def children(self) -> Sequence[Operator]:
        return (self.plan,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        relation = self.plan.execute(context, outer_scope)
        columns = [
            ColumnInfo(name=column.name, qualifier=self.binding_name)
            for column in relation.columns
        ]
        return Relation(columns, relation.rows)

    def describe(self) -> str:
        return f"SubqueryScan({self.binding_name})"


# ---------------------------------------------------------------------------
# Aggregate expression evaluation
# ---------------------------------------------------------------------------


def _evaluate_aggregate_expression(
    context: ExecutionContext,
    expression: Expression,
    relation: Relation,
    group_rows: List[Tuple[Any, ...]],
    outer_scope: Optional[RowScope],
) -> Any:
    """Evaluate an expression in grouping context."""
    if isinstance(expression, FunctionCall) and expression.is_aggregate:
        return _compute_aggregate(context, expression, relation, group_rows, outer_scope)
    if isinstance(expression, (ColumnRef, Star)) or not _contains_aggregate(expression):
        if not group_rows:
            return None
        scope = RowScope(relation, group_rows[0], outer_scope)
        return context.evaluator.evaluate(expression, scope)
    # Composite expression containing aggregates, e.g. SUM(x) / COUNT(x).
    if isinstance(expression, FunctionCall):
        arguments = [
            _evaluate_aggregate_expression(context, arg, relation, group_rows, outer_scope)
            for arg in expression.arguments
        ]
        return context.functions.call(expression.name, arguments)
    from repro.sql.ast import BinaryOp as _BinaryOp
    from repro.sql.ast import UnaryOp as _UnaryOp

    if isinstance(expression, _BinaryOp):
        left = _evaluate_aggregate_expression(
            context, expression.left, relation, group_rows, outer_scope
        )
        right = _evaluate_aggregate_expression(
            context, expression.right, relation, group_rows, outer_scope
        )
        from repro.sql.ast import Literal as _Literal

        rewritten = _BinaryOp(expression.operator, _Literal(left), _Literal(right))
        return context.evaluator.evaluate(rewritten, None)
    if isinstance(expression, _UnaryOp):
        operand = _evaluate_aggregate_expression(
            context, expression.operand, relation, group_rows, outer_scope
        )
        from repro.sql.ast import Literal as _Literal

        rewritten = _UnaryOp(expression.operator, _Literal(operand))
        return context.evaluator.evaluate(rewritten, None)
    raise SQLExecutionError(
        f"unsupported aggregate expression: {expression.to_sql()}"
    )


def _compute_aggregate(
    context: ExecutionContext,
    call: FunctionCall,
    relation: Relation,
    group_rows: List[Tuple[Any, ...]],
    outer_scope: Optional[RowScope],
) -> Any:
    name = call.name.lower()
    argument = call.arguments[0] if call.arguments else None
    if argument is None or isinstance(argument, Star):
        # COUNT(*): every row counts; no per-row evaluation needed.
        values: List[Any] = [1] * len(group_rows)
        non_null = values
    else:
        fn = context.compiled(argument, relation)
        if fn is not None:
            context.stats.compiled_evals += len(group_rows)
            values = [fn(row) for row in group_rows]
        else:
            values = [
                context.evaluator.evaluate(argument, RowScope(relation, row, outer_scope))
                for row in group_rows
            ]
        non_null = [value for value in values if value is not None]
    if call.distinct:
        non_null = _dedupe_values(non_null)
    if name == "count":
        return len(non_null)
    if not non_null:
        return None
    if name == "sum":
        return sum(non_null)
    if name == "avg":
        return sum(non_null) / len(non_null)
    if name == "min":
        return min(non_null)
    if name == "max":
        return max(non_null)
    raise SQLExecutionError(f"unknown aggregate function {call.name!r}")  # pragma: no cover


def _contains_aggregate(expression: Expression) -> bool:
    return any(
        isinstance(node, FunctionCall) and node.is_aggregate for node in expression.walk()
    )


# ---------------------------------------------------------------------------
# Small helpers
# ---------------------------------------------------------------------------


def _hashable(value: Any) -> Any:
    return value


def _dedupe(rows: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
    seen = set()
    unique: List[Tuple[Any, ...]] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            unique.append(row)
    return unique


def _dedupe_values(values: List[Any]) -> List[Any]:
    seen = set()
    unique: List[Any] = []
    for value in values:
        if value not in seen:
            seen.add(value)
            unique.append(value)
    return unique


def _orderable(value: Any) -> Any:
    """A sort key usable across the value types the substrate stores."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return int(value)
    return value
