"""Physical operators for SQL execution.

Operators form a tree; each node's :meth:`execute` produces a
:class:`~repro.sql.relation.Relation`.  The operator set covers what Hilda
programs need (scans, selections, projections, nested-loop / hash joins,
left outer joins, unions, distinct, grouping/aggregation, sorting, limits)
plus derived tables.

Operators receive an :class:`ExecutionContext` that carries the catalog,
function registry, evaluator and per-query statistics.  ``outer_scope`` is
the row scope of an enclosing query for correlated subqueries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SQLExecutionError
from repro.sql.ast import (
    AGGREGATE_FUNCTIONS,
    ColumnRef,
    Expression,
    FunctionCall,
    OrderItem,
    SelectItem,
    Star,
)
from repro.sql.evaluator import Evaluator, RowScope
from repro.sql.relation import ColumnInfo, Relation

__all__ = [
    "ExecutionContext",
    "ExecutionStats",
    "Operator",
    "ScanOp",
    "ValuesOp",
    "FilterOp",
    "ProjectOp",
    "NestedLoopJoinOp",
    "HashJoinOp",
    "UnionOp",
    "DistinctOp",
    "SortOp",
    "LimitOp",
    "AggregateOp",
    "SubqueryScanOp",
]


@dataclass
class ExecutionStats:
    """Counters collected while executing a query (used by benchmarks)."""

    rows_scanned: int = 0
    rows_joined: int = 0
    join_probes: int = 0
    operators_executed: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        self.rows_scanned += other.rows_scanned
        self.rows_joined += other.rows_joined
        self.join_probes += other.join_probes
        self.operators_executed += other.operators_executed


class ExecutionContext:
    """Everything an operator needs to run."""

    def __init__(self, catalog, functions, subquery_executor, stats: Optional[ExecutionStats] = None):
        self.catalog = catalog
        self.functions = functions
        self.stats = stats or ExecutionStats()
        self.evaluator = Evaluator(functions, subquery_executor)

    def predicate(self, expression: Optional[Expression], scope: Optional[RowScope]) -> bool:
        if expression is None:
            return True
        return self.evaluator.evaluate_predicate(expression, scope)


class Operator:
    """Base class for physical operators."""

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        raise NotImplementedError

    def children(self) -> Sequence["Operator"]:
        return ()

    def describe(self) -> str:
        """One-line description used in EXPLAIN-style output."""
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


@dataclass
class ScanOp(Operator):
    """Full scan of a base table under a binding name."""

    table_name: str
    binding_name: str

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        table = context.catalog.resolve_table(self.table_name)
        relation = Relation.from_table(table, self.binding_name)
        context.stats.rows_scanned += len(relation.rows)
        return relation

    def describe(self) -> str:
        alias = f" AS {self.binding_name}" if self.binding_name != self.table_name else ""
        return f"Scan({self.table_name}{alias})"


@dataclass
class ValuesOp(Operator):
    """A constant relation; with no columns and one row it models SELECT-without-FROM."""

    columns: Tuple[ColumnInfo, ...] = ()
    rows: Tuple[Tuple[Any, ...], ...] = ((),)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        return Relation(self.columns, list(self.rows))

    def describe(self) -> str:
        return f"Values({len(self.rows)} rows)"


@dataclass
class FilterOp(Operator):
    """Select rows of the child satisfying a predicate."""

    child: Operator
    predicate: Expression

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        relation = self.child.execute(context, outer_scope)
        kept = [
            row
            for row in relation.rows
            if context.predicate(self.predicate, RowScope(relation, row, outer_scope))
        ]
        return Relation(relation.columns, kept)

    def describe(self) -> str:
        return f"Filter({self.predicate.to_sql()})"


@dataclass
class ProjectOp(Operator):
    """Compute the output columns of a SELECT list."""

    child: Operator
    items: Tuple[Union[SelectItem, Star], ...]

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        relation = self.child.execute(context, outer_scope)
        columns, extractors = _projection_plan(self.items, relation)
        rows = []
        for row in relation.rows:
            scope = RowScope(relation, row, outer_scope)
            rows.append(tuple(extract(context, scope, row) for extract in extractors))
        return Relation(columns, rows)

    def describe(self) -> str:
        return "Project(" + ", ".join(item.to_sql() for item in self.items) + ")"


def _projection_plan(
    items: Sequence[Union[SelectItem, Star]], relation: Relation
) -> Tuple[List[ColumnInfo], List[Callable]]:
    """Expand stars and build per-output-column extraction callables."""
    columns: List[ColumnInfo] = []
    extractors: List[Callable] = []

    def add_passthrough(index: int, column: ColumnInfo) -> None:
        columns.append(column)
        extractors.append(lambda context, scope, row, i=index: row[i])

    position = 0
    for item in items:
        if isinstance(item, Star):
            if item.qualifier is None:
                indices = range(len(relation.columns))
            else:
                indices = relation.qualifier_columns(item.qualifier)
                if not indices:
                    raise SQLExecutionError(
                        f"unknown table alias {item.qualifier!r} in select list"
                    )
            for index in indices:
                source = relation.columns[index]
                add_passthrough(index, ColumnInfo(name=source.name, qualifier=None))
            continue
        expression = item.expression
        name = item.alias or _default_column_name(expression, position)
        columns.append(ColumnInfo(name=name, qualifier=None))
        extractors.append(
            lambda context, scope, row, expr=expression: context.evaluator.evaluate(expr, scope)
        )
        position += 1
    return columns, extractors


def _default_column_name(expression: Expression, position: int) -> str:
    if isinstance(expression, ColumnRef):
        return expression.name
    if isinstance(expression, FunctionCall):
        return expression.name.lower()
    return f"col{position + 1}"


@dataclass
class NestedLoopJoinOp(Operator):
    """Nested-loop join supporting CROSS, INNER and LEFT outer joins."""

    left: Operator
    right: Operator
    join_type: str = "CROSS"  # CROSS | INNER | LEFT
    condition: Optional[Expression] = None

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        left_relation = self.left.execute(context, outer_scope)
        right_relation = self.right.execute(context, outer_scope)
        columns = tuple(left_relation.columns) + tuple(right_relation.columns)
        combined = Relation(columns, [])
        null_right = (None,) * right_relation.arity
        rows: List[Tuple[Any, ...]] = []
        for left_row in left_relation.rows:
            matched = False
            for right_row in right_relation.rows:
                context.stats.join_probes += 1
                candidate = left_row + right_row
                scope = RowScope(combined, candidate, outer_scope)
                if self.join_type == "CROSS" or context.predicate(self.condition, scope):
                    rows.append(candidate)
                    matched = True
            if self.join_type == "LEFT" and not matched:
                rows.append(left_row + null_right)
        context.stats.rows_joined += len(rows)
        return Relation(columns, rows)

    def describe(self) -> str:
        condition = f" ON {self.condition.to_sql()}" if self.condition else ""
        return f"NestedLoopJoin[{self.join_type}]{condition}"


@dataclass
class HashJoinOp(Operator):
    """Equi-join using a hash table built on the right input.

    ``left_keys`` / ``right_keys`` are expressions evaluated against the left
    and right inputs respectively; ``residual`` is an optional extra
    predicate applied to joined rows.
    """

    left: Operator
    right: Operator
    left_keys: Tuple[Expression, ...]
    right_keys: Tuple[Expression, ...]
    join_type: str = "INNER"  # INNER | LEFT
    residual: Optional[Expression] = None

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        left_relation = self.left.execute(context, outer_scope)
        right_relation = self.right.execute(context, outer_scope)
        columns = tuple(left_relation.columns) + tuple(right_relation.columns)
        combined = Relation(columns, [])
        null_right = (None,) * right_relation.arity

        # Build phase over the right input.
        build: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        for right_row in right_relation.rows:
            scope = RowScope(right_relation, right_row, outer_scope)
            key = tuple(context.evaluator.evaluate(expr, scope) for expr in self.right_keys)
            if any(value is None for value in key):
                continue
            build.setdefault(key, []).append(right_row)

        rows: List[Tuple[Any, ...]] = []
        for left_row in left_relation.rows:
            scope = RowScope(left_relation, left_row, outer_scope)
            key = tuple(context.evaluator.evaluate(expr, scope) for expr in self.left_keys)
            matches = [] if any(value is None for value in key) else build.get(key, [])
            matched = False
            for right_row in matches:
                context.stats.join_probes += 1
                candidate = left_row + right_row
                joined_scope = RowScope(combined, candidate, outer_scope)
                if context.predicate(self.residual, joined_scope):
                    rows.append(candidate)
                    matched = True
            if self.join_type == "LEFT" and not matched:
                rows.append(left_row + null_right)
        context.stats.rows_joined += len(rows)
        return Relation(columns, rows)

    def describe(self) -> str:
        keys = ", ".join(
            f"{l.to_sql()}={r.to_sql()}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"HashJoin[{self.join_type}]({keys})"


@dataclass
class UnionOp(Operator):
    """UNION / UNION ALL of two inputs; plain UNION removes duplicates."""

    left: Operator
    right: Operator
    all: bool = False

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        left_relation = self.left.execute(context, outer_scope)
        right_relation = self.right.execute(context, outer_scope)
        if left_relation.arity != right_relation.arity:
            raise SQLExecutionError(
                "UNION branches have different arities: "
                f"{left_relation.arity} vs {right_relation.arity}"
            )
        rows = list(left_relation.rows) + list(right_relation.rows)
        if not self.all:
            rows = _dedupe(rows)
        return Relation(left_relation.columns, rows)

    def describe(self) -> str:
        return "UnionAll" if self.all else "Union"


@dataclass
class DistinctOp(Operator):
    """Remove duplicate rows."""

    child: Operator

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        relation = self.child.execute(context, outer_scope)
        return Relation(relation.columns, _dedupe(relation.rows))

    def describe(self) -> str:
        return "Distinct"


@dataclass
class SortOp(Operator):
    """ORDER BY implementation (stable sort, NULLs last for ascending)."""

    child: Operator
    order_by: Tuple[OrderItem, ...]

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        relation = self.child.execute(context, outer_scope)
        rows = list(relation.rows)
        # Apply sort keys from the last to the first to keep stability.
        for item in reversed(self.order_by):
            def sort_key(row, expr=item.expression):
                scope = RowScope(relation, row, outer_scope)
                value = context.evaluator.evaluate(expr, scope)
                return (value is None, _orderable(value))

            rows.sort(key=sort_key, reverse=item.descending)
        return Relation(relation.columns, rows)

    def describe(self) -> str:
        return "Sort(" + ", ".join(item.to_sql() for item in self.order_by) + ")"


@dataclass
class LimitOp(Operator):
    """Keep at most ``limit`` rows."""

    child: Operator
    limit: int

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        relation = self.child.execute(context, outer_scope)
        return Relation(relation.columns, relation.rows[: self.limit])

    def describe(self) -> str:
        return f"Limit({self.limit})"


@dataclass
class AggregateOp(Operator):
    """GROUP BY + aggregate evaluation.

    Each select item is evaluated once per group: aggregate function calls
    are computed over the group's rows, other expressions over the group's
    first row (which is well-defined for grouping columns).
    """

    child: Operator
    group_by: Tuple[Expression, ...]
    items: Tuple[SelectItem, ...]
    having: Optional[Expression] = None

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        relation = self.child.execute(context, outer_scope)

        groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        if self.group_by:
            for row in relation.rows:
                scope = RowScope(relation, row, outer_scope)
                key = tuple(
                    _hashable(context.evaluator.evaluate(expr, scope)) for expr in self.group_by
                )
                groups.setdefault(key, []).append(row)
        else:
            # A global aggregate always produces exactly one group, possibly empty.
            groups[()] = list(relation.rows)

        columns = [
            ColumnInfo(name=item.alias or _default_column_name(item.expression, index))
            for index, item in enumerate(self.items)
        ]
        output_rows: List[Tuple[Any, ...]] = []
        for key, group_rows in groups.items():
            if self.having is not None:
                value = _evaluate_aggregate_expression(
                    context, self.having, relation, group_rows, outer_scope
                )
                if value is not True:
                    continue
            output_rows.append(
                tuple(
                    _evaluate_aggregate_expression(
                        context, item.expression, relation, group_rows, outer_scope
                    )
                    for item in self.items
                )
            )
        return Relation(columns, output_rows)

    def describe(self) -> str:
        by = ", ".join(expr.to_sql() for expr in self.group_by)
        return f"Aggregate(group by {by})" if by else "Aggregate(global)"


@dataclass
class SubqueryScanOp(Operator):
    """A derived table: execute a planned subquery and re-qualify its columns."""

    plan: Operator
    binding_name: str

    def children(self) -> Sequence[Operator]:
        return (self.plan,)

    def execute(self, context: ExecutionContext, outer_scope: Optional[RowScope]) -> Relation:
        context.stats.operators_executed += 1
        relation = self.plan.execute(context, outer_scope)
        columns = [
            ColumnInfo(name=column.name, qualifier=self.binding_name)
            for column in relation.columns
        ]
        return Relation(columns, relation.rows)

    def describe(self) -> str:
        return f"SubqueryScan({self.binding_name})"


# ---------------------------------------------------------------------------
# Aggregate expression evaluation
# ---------------------------------------------------------------------------


def _evaluate_aggregate_expression(
    context: ExecutionContext,
    expression: Expression,
    relation: Relation,
    group_rows: List[Tuple[Any, ...]],
    outer_scope: Optional[RowScope],
) -> Any:
    """Evaluate an expression in grouping context."""
    if isinstance(expression, FunctionCall) and expression.is_aggregate:
        return _compute_aggregate(context, expression, relation, group_rows, outer_scope)
    if isinstance(expression, (ColumnRef, Star)) or not _contains_aggregate(expression):
        if not group_rows:
            return None
        scope = RowScope(relation, group_rows[0], outer_scope)
        return context.evaluator.evaluate(expression, scope)
    # Composite expression containing aggregates, e.g. SUM(x) / COUNT(x).
    if isinstance(expression, FunctionCall):
        arguments = [
            _evaluate_aggregate_expression(context, arg, relation, group_rows, outer_scope)
            for arg in expression.arguments
        ]
        return context.functions.call(expression.name, arguments)
    from repro.sql.ast import BinaryOp as _BinaryOp
    from repro.sql.ast import UnaryOp as _UnaryOp

    if isinstance(expression, _BinaryOp):
        left = _evaluate_aggregate_expression(
            context, expression.left, relation, group_rows, outer_scope
        )
        right = _evaluate_aggregate_expression(
            context, expression.right, relation, group_rows, outer_scope
        )
        from repro.sql.ast import Literal as _Literal

        rewritten = _BinaryOp(expression.operator, _Literal(left), _Literal(right))
        return context.evaluator.evaluate(rewritten, None)
    if isinstance(expression, _UnaryOp):
        operand = _evaluate_aggregate_expression(
            context, expression.operand, relation, group_rows, outer_scope
        )
        from repro.sql.ast import Literal as _Literal

        rewritten = _UnaryOp(expression.operator, _Literal(operand))
        return context.evaluator.evaluate(rewritten, None)
    raise SQLExecutionError(
        f"unsupported aggregate expression: {expression.to_sql()}"
    )


def _compute_aggregate(
    context: ExecutionContext,
    call: FunctionCall,
    relation: Relation,
    group_rows: List[Tuple[Any, ...]],
    outer_scope: Optional[RowScope],
) -> Any:
    name = call.name.lower()
    argument = call.arguments[0] if call.arguments else Star()
    values: List[Any] = []
    for row in group_rows:
        scope = RowScope(relation, row, outer_scope)
        values.append(context.evaluator.evaluate(argument, scope))
    if isinstance(argument, Star):
        non_null = values
    else:
        non_null = [value for value in values if value is not None]
    if call.distinct:
        non_null = _dedupe_values(non_null)
    if name == "count":
        return len(non_null)
    if not non_null:
        return None
    if name == "sum":
        return sum(non_null)
    if name == "avg":
        return sum(non_null) / len(non_null)
    if name == "min":
        return min(non_null)
    if name == "max":
        return max(non_null)
    raise SQLExecutionError(f"unknown aggregate function {call.name!r}")  # pragma: no cover


def _contains_aggregate(expression: Expression) -> bool:
    return any(
        isinstance(node, FunctionCall) and node.is_aggregate for node in expression.walk()
    )


# ---------------------------------------------------------------------------
# Small helpers
# ---------------------------------------------------------------------------


def _hashable(value: Any) -> Any:
    return value


def _dedupe(rows: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
    seen = set()
    unique: List[Tuple[Any, ...]] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            unique.append(row)
    return unique


def _dedupe_values(values: List[Any]) -> List[Any]:
    seen = set()
    unique: List[Any] = []
    for value in values:
        if value not in seen:
            seen.add(value)
            unique.append(value)
    return unique


def _orderable(value: Any) -> Any:
    """A sort key usable across the value types the substrate stores."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return int(value)
    return value
