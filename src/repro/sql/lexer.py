"""Lexer for the SQL dialect used by Hilda programs.

The dialect follows standard SQL with two accommodations for the paper's
examples: string literals may be written with either single or double
quotes (the paper writes ``"admin"``), and identifiers may be any mix of
letters, digits and underscores.
"""

from __future__ import annotations

from typing import List

from repro.errors import SQLSyntaxError
from repro.sql.tokens import KEYWORDS, Token, TokenType

__all__ = ["tokenize"]

_OPERATOR_STARTS = "=<>!+-*/%"
_PUNCTUATION = "(),.;"


def tokenize(text: str) -> List[Token]:
    """Convert SQL text into a list of tokens ending with an EOF token."""
    tokens: List[Token] = []
    position = 0
    line = 1
    column = 1
    length = len(text)

    def error(message: str) -> SQLSyntaxError:
        return SQLSyntaxError(message, line, column)

    while position < length:
        char = text[position]

        # Whitespace -------------------------------------------------------
        if char in " \t\r":
            position += 1
            column += 1
            continue
        if char == "\n":
            position += 1
            line += 1
            column = 1
            continue

        # Comments ---------------------------------------------------------
        if char == "-" and text.startswith("--", position):
            end = text.find("\n", position)
            if end == -1:
                position = length
            else:
                position = end
            continue
        if char == "/" and text.startswith("/*", position):
            end = text.find("*/", position + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = text[position : end + 2]
            line += skipped.count("\n")
            position = end + 2
            column = 1
            continue

        start_line, start_column = line, column

        # String literals ----------------------------------------------------
        if char in ("'", '"'):
            value, consumed = _read_string(text, position, char)
            if consumed == 0:
                raise error("unterminated string literal")
            tokens.append(Token(TokenType.STRING, value, start_line, start_column))
            position += consumed
            column += consumed
            continue

        # Numbers -------------------------------------------------------------
        if char.isdigit():
            number, consumed = _read_number(text, position)
            tokens.append(Token(TokenType.NUMBER, number, start_line, start_column))
            position += consumed
            column += consumed
            continue

        # Identifiers / keywords ------------------------------------------------
        if char.isalpha() or char == "_":
            end = position
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[position:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start_line, start_column))
            else:
                tokens.append(Token(TokenType.IDENT, word, start_line, start_column))
            column += end - position
            position = end
            continue

        # Operators -----------------------------------------------------------
        if char in _OPERATOR_STARTS:
            two = text[position : position + 2]
            if two in ("<=", ">=", "<>", "!=", "=="):
                tokens.append(Token(TokenType.OPERATOR, two, start_line, start_column))
                position += 2
                column += 2
            else:
                tokens.append(Token(TokenType.OPERATOR, char, start_line, start_column))
                position += 1
                column += 1
            continue

        # Punctuation -----------------------------------------------------------
        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, char, start_line, start_column))
            position += 1
            column += 1
            continue

        raise error(f"unexpected character {char!r}")

    tokens.append(Token(TokenType.EOF, None, line, column))
    return tokens


def _read_string(text: str, start: int, quote: str) -> tuple:
    """Read a quoted string starting at ``start``; returns (value, chars consumed)."""
    position = start + 1
    length = len(text)
    parts: List[str] = []
    while position < length:
        char = text[position]
        if char == quote:
            # Doubled quote is an escaped quote character.
            if position + 1 < length and text[position + 1] == quote:
                parts.append(quote)
                position += 2
                continue
            return "".join(parts), position - start + 1
        parts.append(char)
        position += 1
    return "", 0


def _read_number(text: str, start: int) -> tuple:
    """Read an integer or float literal; returns (value, chars consumed)."""
    position = start
    length = len(text)
    while position < length and text[position].isdigit():
        position += 1
    is_float = False
    if (
        position < length
        and text[position] == "."
        and position + 1 < length
        and text[position + 1].isdigit()
    ):
        is_float = True
        position += 1
        while position < length and text[position].isdigit():
            position += 1
    literal = text[start:position]
    value = float(literal) if is_float else int(literal)
    return value, position - start
