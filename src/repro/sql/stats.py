"""Execution counters shared by the evaluator, operators and executor.

:class:`ExecutionStats` lives in its own module so the evaluator (which
counts per-node interpreter dispatches) does not have to import the operator
module that imports it.  ``repro.sql.operators`` re-exports the class, so
existing imports keep working.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["ExecutionStats", "CacheStats", "EstimationStats", "MaintenanceStats"]


@dataclass
class ExecutionStats:
    """Counters collected while executing a query (used by benchmarks).

    ``interpreted_evals`` counts AST-node dispatches through the tree-walking
    :class:`~repro.sql.evaluator.Evaluator`; ``compiled_evals`` counts row
    evaluations served by compiled closures instead.  ``index_lookups`` /
    ``index_hits`` count secondary-index probes and the rows they returned.

    The ``estimation_*`` counters are filled by ``EXPLAIN ANALYZE``
    (:meth:`~repro.sql.executor.SQLExecutor.explain` with ``analyze=True``):
    every operator carrying a cost-based row estimate is compared against
    the rows it actually produced, and counts as an under- or over-estimate
    when its q-error (the larger of actual/estimated and estimated/actual)
    exceeds 2.
    """

    rows_scanned: int = 0
    rows_joined: int = 0
    join_probes: int = 0
    operators_executed: int = 0
    compiled_evals: int = 0
    interpreted_evals: int = 0
    index_lookups: int = 0
    index_hits: int = 0
    #: Operators whose estimates EXPLAIN ANALYZE checked against actual rows.
    estimation_checks: int = 0
    #: Of those, how many under-/over-estimated by more than a q-error of 2.
    estimation_underestimates: int = 0
    estimation_overestimates: int = 0
    #: Incremental view maintenance (docs/caching.md § Incremental
    #: maintenance): cached activation results patched in place by a delta
    #: program, version misses that bailed out to full recomputation, and
    #: the source delta rows propagated through delta programs.
    maintenance_patches: int = 0
    maintenance_bailouts: int = 0
    maintenance_delta_rows: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        self.rows_scanned += other.rows_scanned
        self.rows_joined += other.rows_joined
        self.join_probes += other.join_probes
        self.operators_executed += other.operators_executed
        self.compiled_evals += other.compiled_evals
        self.interpreted_evals += other.interpreted_evals
        self.index_lookups += other.index_lookups
        self.index_hits += other.index_hits
        self.estimation_checks += other.estimation_checks
        self.estimation_underestimates += other.estimation_underestimates
        self.estimation_overestimates += other.estimation_overestimates
        self.maintenance_patches += other.maintenance_patches
        self.maintenance_bailouts += other.maintenance_bailouts
        self.maintenance_delta_rows += other.maintenance_delta_rows

    def record_estimation(self, estimated: float, actual: float) -> None:
        """Record one estimate-vs-actual comparison (EXPLAIN ANALYZE)."""
        self.estimation_checks += 1
        q_error_floor = 1.0  # +1 smoothing keeps empty results comparable
        under = (actual + q_error_floor) / (estimated + q_error_floor)
        over = (estimated + q_error_floor) / (actual + q_error_floor)
        if under > 2.0:
            self.estimation_underestimates += 1
        elif over > 2.0:
            self.estimation_overestimates += 1

    def as_dict(self) -> dict:
        """A plain-dict view (benchmark JSON artifacts)."""
        return asdict(self)


@dataclass
class EstimationStats:
    """Engine-scoped estimate-vs-actual totals (docs/optimizer.md).

    Replaces the old process-global counter dict: each engine accumulates
    its own totals on its :class:`~repro.sql.executor.SQLCaches` (executors
    are short-lived per Hilda context, so per-executor
    :class:`ExecutionStats` counters vanish with them), forked cluster
    workers count independently, and :meth:`reset` is the explicit hook
    benchmarks use between phases.  ``checks`` counts every
    estimate-vs-actual comparison made by EXPLAIN ANALYZE and the feedback
    observation pass; ``underestimates`` / ``overestimates`` count the
    comparisons off by more than a q-error of 2; ``replans`` counts
    feedback-driven plan invalidations (mutation is plain int arithmetic
    under the GIL, matching the other informational counters).
    """

    checks: int = 0
    underestimates: int = 0
    overestimates: int = 0
    replans: int = 0

    def add(self, checks: int, underestimates: int, overestimates: int) -> None:
        """Accumulate one instrumented execution's estimation counters."""
        self.checks += checks
        self.underestimates += underestimates
        self.overestimates += overestimates

    def reset(self) -> None:
        self.checks = 0
        self.underestimates = 0
        self.overestimates = 0
        self.replans = 0

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class MaintenanceStats:
    """Engine-wide incremental-maintenance counters (docs/caching.md).

    ``patched`` counts activation-cache entries repaired in place by a delta
    program on a version miss; ``bailouts`` counts the misses where the
    delta path gave up (uncovered deltas, unsupported shape, cost bound)
    and fell back to full recomputation; ``delta_rows`` is the total number
    of source delta rows propagated through delta programs;
    ``results_unchanged`` counts reactivations that adopted a subtree
    because its *results* were proven unchanged even though its input
    tables' versions moved.
    """

    patched: int = 0
    bailouts: int = 0
    delta_rows: int = 0
    results_unchanged: int = 0

    def reset(self) -> None:
        self.patched = 0
        self.bailouts = 0
        self.delta_rows = 0
        self.results_unchanged = 0

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class CacheStats:
    """Hit/miss/evict counters for one cache (observability of invalidation).

    ``invalidations`` counts the misses caused by a *stale* entry (the key
    was present but its dependency versions no longer matched), as opposed to
    plain misses on absent keys; ``evictions`` counts entries dropped by the
    LRU bound.  Used by the engine's activation-query cache and the
    renderer's fragment cache (see ``docs/caching.md``).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 on an untouched cache)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def as_dict(self) -> dict:
        data = asdict(self)
        data["hit_rate"] = self.hit_rate
        return data
