"""The SQL executor: the public entry point of the SQL engine.

:class:`SQLExecutor` parses, plans and runs queries and DML statements
against a :class:`~repro.relational.database.Catalog`.  Three caches back
the hot path, bundled in :class:`SQLCaches` so the Hilda runtime (which
builds a short-lived executor per instance context) can share them across
executors:

* the **AST cache** maps SQL text to parsed statements;
* the **plan cache** maps parsed queries to physical plans;
* the **compile cache** maps (expression, row layout) pairs to the compiled
  closures produced by :mod:`repro.sql.compile`.

A shared :class:`SQLCaches` must only be used by executors with the same
``optimize`` / ``auto_index`` settings and the same function registry,
since plans and closures bake those decisions in.  Catalogs served by a
shared cache should also agree on the schemas of same-named tables: plans
are keyed by query identity, so a plan built against one schema is reused
against the others (resolution happens by name at execution time, and
:class:`~repro.sql.operators.IndexScanOp` re-validates its keys against
the table it actually resolves).  The Hilda runtime satisfies this because
each declaration's queries are distinct AST objects that always run in
identically-shaped contexts.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.config import EngineConfig
from repro.errors import SQLExecutionError, UnknownTableError
from repro.relational.database import Catalog
from repro.relational.functions import FunctionRegistry, default_registry
from repro.sql.ast import (
    DeleteStatement,
    Expression,
    InsertStatement,
    Query,
    SelectQuery,
    Statement,
    UnionQuery,
    UpdateStatement,
)
from repro.sql.compile import cached_compile
from repro.sql.evaluator import Evaluator, RowScope
from repro.sql.operators import ExecutionContext, ExecutionStats, Operator
from repro.sql.parser import parse_query, parse_statement
from repro.sql.planner import Planner, tables_read
from repro.sql.relation import ColumnInfo, Relation

__all__ = ["SQLExecutor", "SQLCaches"]

QueryLike = Union[str, SelectQuery, UnionQuery]


class SQLCaches:
    """Parse/plan/compile caches shareable across executors (see module doc).

    The caches are shared by every executor the Hilda engine builds, across
    all concurrently-served sessions, so mutation is guarded by ``lock``:
    lookups and publications are brief critical sections while the actual
    parse/plan/compile work happens outside the lock (two threads may
    duplicate work on a cold cache; the last publication wins, which is
    harmless because entries for one key are interchangeable).
    """

    __slots__ = ("asts", "plans", "compiled", "read_sets", "lock")

    def __init__(self) -> None:
        self.asts: Dict[str, Statement] = {}
        #: id(query) -> (query, plan); the AST is stored to pin its identity.
        self.plans: Dict[int, Tuple[Query, Operator]] = {}
        #: (id(expression), columns) -> (expression, closure-or-None).
        self.compiled: Dict[Any, Tuple[Expression, Optional[Callable]]] = {}
        #: id(plan) -> (plan, table read set); the plan is stored to pin its
        #: identity.  Read sets feed dependency-tracked cache invalidation.
        self.read_sets: Dict[int, Tuple[Operator, frozenset]] = {}
        self.lock = threading.Lock()


class SQLExecutor:
    """Executes SQL against a catalog of tables.

    Parameters
    ----------
    catalog:
        Any object implementing the :class:`Catalog` protocol (a
        :class:`~repro.relational.database.Database` or a layered catalog
        built by the Hilda runtime).
    functions:
        Scalar function registry; defaults to the process-wide registry.
    config:
        A typed :class:`~repro.config.EngineConfig`; the executor reads its
        planner/compiler switches.  ``optimize`` builds hash joins for
        equality join predicates (nested loops otherwise), ``auto_index``
        lets the planner answer equality predicates and equi-join keys with
        secondary hash indexes created on first use (declared indexes are
        always considered), and ``compile_expressions`` compiles per-row
        expressions to closures over the row layout instead of running the
        tree-walking evaluator.
    caches:
        A shared :class:`SQLCaches`; a private one is created when omitted.
    **legacy_options:
        The pre-config keyword arguments (``optimize=...``,
        ``auto_index=...``, ``compile_expressions=...``) are still accepted
        and merged onto ``config``, each emitting a ``DeprecationWarning``
        once per process.  See ``docs/api.md``.
    """

    #: Legacy kwargs -> the EngineConfig fields replacing them.
    LEGACY_KWARGS = {
        "optimize": "optimize",
        "auto_index": "auto_index",
        "compile_expressions": "compile_expressions",
    }

    def __init__(
        self,
        catalog: Catalog,
        functions: Optional[FunctionRegistry] = None,
        config: Optional[EngineConfig] = None,
        caches: Optional[SQLCaches] = None,
        **legacy_options: Any,
    ) -> None:
        config = EngineConfig.from_legacy(
            config, legacy_options, owner="SQLExecutor", allowed=self.LEGACY_KWARGS
        )
        self.config = config
        self.catalog = catalog
        self.functions = functions or default_registry()
        self.optimize = config.optimize
        self.auto_index = config.auto_index
        self.compile_expressions = config.compile_expressions
        self.stats = ExecutionStats()
        self.caches = caches if caches is not None else SQLCaches()
        self._ast_cache = self.caches.asts
        self._plan_cache = self.caches.plans
        self._compile_cache = self.caches.compiled

    # -- queries --------------------------------------------------------------

    def execute_query(
        self, query: QueryLike, outer_scope: Optional[RowScope] = None
    ) -> Relation:
        """Execute a SELECT/UNION query and return the result relation."""
        ast = self._parse_query(query)
        plan = self._plan(ast)
        context = self._context()
        return plan.execute(context, outer_scope)

    def query_rows(self, query: QueryLike) -> List[Tuple[Any, ...]]:
        """Execute a query and return its rows as tuples."""
        return self.execute_query(query).as_tuples()

    def query_dicts(self, query: QueryLike) -> List[Dict[str, Any]]:
        """Execute a query and return its rows as dictionaries."""
        return self.execute_query(query).as_dicts()

    def query_scalar(self, query: QueryLike) -> Any:
        """Execute a query and return the first column of its first row."""
        return self.execute_query(query).scalar()

    def explain(self, query: QueryLike) -> str:
        """Render the physical plan chosen for a query, plus its table read set."""
        plan = self._plan(self._parse_query(query))
        reads = sorted(self._plan_read_set(plan))
        footprint = ", ".join(reads) if reads else "(none)"
        return plan.explain() + f"\nTables read: {footprint}"

    def read_set(self, query: QueryLike) -> frozenset:
        """The names of the tables a query reads (its dependency footprint).

        Derived from the physical plan (including subquery scans, index
        operators and expression subqueries) and cached per plan, so after
        the first call this is a dictionary lookup.  The Hilda runtime
        records this footprint for every executed activation query and keys
        its caches on the version vector of exactly these tables.
        """
        return self._plan_read_set(self._plan(self._parse_query(query)))

    def _plan_read_set(self, plan: Operator) -> frozenset:
        key = id(plan)
        with self.caches.lock:
            entry = self.caches.read_sets.get(key)
        if entry is None:
            names = tables_read(plan, plan_subquery=self._plan)
            with self.caches.lock:
                self.caches.read_sets[key] = (plan, names)
            return names
        return entry[1]

    # -- statements -------------------------------------------------------------

    def execute(self, statement: Union[str, Statement]) -> Union[Relation, int]:
        """Execute any supported statement.

        SELECT returns a :class:`Relation`; DML statements return the number
        of affected rows.
        """
        ast = self._parse_statement(statement)
        if isinstance(ast, (SelectQuery, UnionQuery)):
            return self.execute_query(ast)
        if isinstance(ast, InsertStatement):
            return self._execute_insert(ast)
        if isinstance(ast, DeleteStatement):
            return self._execute_delete(ast)
        if isinstance(ast, UpdateStatement):
            return self._execute_update(ast)
        raise SQLExecutionError(f"unsupported statement {type(ast).__name__}")

    # -- DML ------------------------------------------------------------------------

    def _execute_insert(self, statement: InsertStatement) -> int:
        table = self.catalog.resolve_table(statement.table)
        evaluator = self._bare_evaluator()
        inserted = 0
        if statement.query is not None:
            relation = self.execute_query(statement.query)
            rows = relation.as_tuples()
        else:
            rows = [
                tuple(evaluator.evaluate(value, None) for value in row)
                for row in statement.rows
            ]
        for row in rows:
            if statement.columns:
                mapping = dict(zip(statement.columns, row))
                table.insert_mapping(mapping)
            else:
                table.insert(row)
            inserted += 1
        return inserted

    def _execute_delete(self, statement: DeleteStatement) -> int:
        table = self.catalog.resolve_table(statement.table)
        if statement.where is None:
            removed = len(table)
            table.clear()
            return removed
        binding = statement.alias or statement.table
        columns = _table_columns(table, binding)
        predicate = self._row_predicate(statement.where, columns, len(table))
        return table.delete_where(predicate)

    def _execute_update(self, statement: UpdateStatement) -> int:
        table = self.catalog.resolve_table(statement.table)
        binding = statement.alias or statement.table
        columns = _table_columns(table, binding)
        if statement.where is None:
            predicate = lambda row: True  # noqa: E731 - trivial match-all
        else:
            predicate = self._row_predicate(statement.where, columns, len(table))
        positions = {
            column: table.schema.column_position(column)
            for column, _ in statement.assignments
        }
        assignment_fns = [
            (positions[column], expression, self._compiled(expression, columns))
            for column, expression in statement.assignments
        ]
        scope_relation = Relation(columns, ())
        evaluator = self._bare_evaluator()

        def updater(row: Tuple[Any, ...]) -> List[Any]:
            values = list(row)
            scope: Optional[RowScope] = None
            for position, expression, fn in assignment_fns:
                if fn is not None:
                    self.stats.compiled_evals += 1
                    values[position] = fn(row)
                else:
                    if scope is None:
                        scope = RowScope(scope_relation, row, None)
                    values[position] = evaluator.evaluate(expression, scope)
            return values

        return table.update_where(predicate, updater)

    def _row_predicate(
        self, where: Expression, columns: Tuple[ColumnInfo, ...], n_rows: int
    ) -> Callable[[Tuple[Any, ...]], bool]:
        """A row -> bool predicate, compiled against the table layout if possible."""
        fn = self._compiled(where, columns)
        if fn is not None:
            self.stats.compiled_evals += n_rows
            return lambda row: fn(row) is True
        scope_relation = Relation(columns, ())
        evaluator = self._bare_evaluator()
        return lambda row: (
            evaluator.evaluate(where, RowScope(scope_relation, row, None)) is True
        )

    # -- internals ------------------------------------------------------------------------

    def _parse_query(self, query: QueryLike) -> Query:
        if isinstance(query, str):
            with self.caches.lock:
                cached = self._ast_cache.get(query)
            if cached is None:
                cached = parse_query(query)
                with self.caches.lock:
                    self._ast_cache[query] = cached
            if not isinstance(cached, (SelectQuery, UnionQuery)):
                raise SQLExecutionError("statement is not a query")
            return cached
        return query

    def _parse_statement(self, statement: Union[str, Statement]) -> Statement:
        if isinstance(statement, str):
            with self.caches.lock:
                cached = self._ast_cache.get(statement)
            if cached is None:
                cached = parse_statement(statement)
                with self.caches.lock:
                    self._ast_cache[statement] = cached
            return cached
        return statement

    def _plan(self, query: Query) -> Operator:
        key = id(query)
        with self.caches.lock:
            entry = self._plan_cache.get(key)
        if entry is None:
            plan = Planner(
                self.catalog, optimize=self.optimize, auto_index=self.auto_index
            ).plan(query)
            with self.caches.lock:
                self._plan_cache[key] = (query, plan)
            return plan
        return entry[1]

    def _compiled(
        self, expression: Expression, columns: Tuple[ColumnInfo, ...]
    ) -> Optional[Callable]:
        if not self.compile_expressions:
            return None
        return cached_compile(self._compile_cache, expression, columns, self.functions)

    def _context(self) -> ExecutionContext:
        return ExecutionContext(
            catalog=self.catalog,
            functions=self.functions,
            subquery_executor=self._execute_subquery,
            stats=self.stats,
            compile_cache=self._compile_cache,
            compile_expressions=self.compile_expressions,
        )

    def _execute_subquery(self, query: Query, outer_scope: Optional[RowScope]) -> Relation:
        plan = self._plan(query)
        context = self._context()
        return plan.execute(context, outer_scope)

    def _bare_evaluator(self) -> Evaluator:
        return Evaluator(self.functions, self._execute_subquery, stats=self.stats)

    def reset_stats(self) -> ExecutionStats:
        """Replace and return the statistics accumulator (benchmark helper)."""
        previous = self.stats
        self.stats = ExecutionStats()
        return previous


def _table_columns(table, binding: str) -> Tuple[ColumnInfo, ...]:
    """The column layout of a base table under a binding name."""
    return tuple(
        ColumnInfo(name=name, qualifier=binding) for name in table.schema.column_names
    )
