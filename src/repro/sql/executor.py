"""The SQL executor: the public entry point of the SQL engine.

:class:`SQLExecutor` parses, plans and runs queries and DML statements
against a :class:`~repro.relational.database.Catalog`.  Parsed ASTs and
plans are cached per SQL text so the Hilda runtime, which re-evaluates the
same activation and input queries on every reactivation, does not re-parse
them each time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import SQLExecutionError, UnknownTableError
from repro.relational.database import Catalog
from repro.relational.functions import FunctionRegistry, default_registry
from repro.sql.ast import (
    DeleteStatement,
    InsertStatement,
    Query,
    SelectQuery,
    Statement,
    UnionQuery,
    UpdateStatement,
)
from repro.sql.evaluator import Evaluator, RowScope
from repro.sql.operators import ExecutionContext, ExecutionStats, Operator
from repro.sql.parser import parse_query, parse_statement
from repro.sql.planner import Planner
from repro.sql.relation import Relation

__all__ = ["SQLExecutor"]

QueryLike = Union[str, SelectQuery, UnionQuery]


class SQLExecutor:
    """Executes SQL against a catalog of tables.

    Parameters
    ----------
    catalog:
        Any object implementing the :class:`Catalog` protocol (a
        :class:`~repro.relational.database.Database` or a layered catalog
        built by the Hilda runtime).
    functions:
        Scalar function registry; defaults to the process-wide registry.
    optimize:
        When True (default) the planner builds hash joins for equality join
        predicates; when False every join is a nested loop, which is what
        the engine ablation benchmark compares against.
    """

    def __init__(
        self,
        catalog: Catalog,
        functions: Optional[FunctionRegistry] = None,
        optimize: bool = True,
    ) -> None:
        self.catalog = catalog
        self.functions = functions or default_registry()
        self.optimize = optimize
        self.stats = ExecutionStats()
        self._ast_cache: Dict[str, Statement] = {}
        self._plan_cache: Dict[int, Operator] = {}

    # -- queries --------------------------------------------------------------

    def execute_query(
        self, query: QueryLike, outer_scope: Optional[RowScope] = None
    ) -> Relation:
        """Execute a SELECT/UNION query and return the result relation."""
        ast = self._parse_query(query)
        plan = self._plan(ast)
        context = self._context()
        return plan.execute(context, outer_scope)

    def query_rows(self, query: QueryLike) -> List[Tuple[Any, ...]]:
        """Execute a query and return its rows as tuples."""
        return self.execute_query(query).as_tuples()

    def query_dicts(self, query: QueryLike) -> List[Dict[str, Any]]:
        """Execute a query and return its rows as dictionaries."""
        return self.execute_query(query).as_dicts()

    def query_scalar(self, query: QueryLike) -> Any:
        """Execute a query and return the first column of its first row."""
        return self.execute_query(query).scalar()

    def explain(self, query: QueryLike) -> str:
        """Render the physical plan chosen for a query."""
        return self._plan(self._parse_query(query)).explain()

    # -- statements -------------------------------------------------------------

    def execute(self, statement: Union[str, Statement]) -> Union[Relation, int]:
        """Execute any supported statement.

        SELECT returns a :class:`Relation`; DML statements return the number
        of affected rows.
        """
        ast = self._parse_statement(statement)
        if isinstance(ast, (SelectQuery, UnionQuery)):
            return self.execute_query(ast)
        if isinstance(ast, InsertStatement):
            return self._execute_insert(ast)
        if isinstance(ast, DeleteStatement):
            return self._execute_delete(ast)
        if isinstance(ast, UpdateStatement):
            return self._execute_update(ast)
        raise SQLExecutionError(f"unsupported statement {type(ast).__name__}")

    # -- DML ------------------------------------------------------------------------

    def _execute_insert(self, statement: InsertStatement) -> int:
        table = self.catalog.resolve_table(statement.table)
        evaluator = self._bare_evaluator()
        inserted = 0
        if statement.query is not None:
            relation = self.execute_query(statement.query)
            rows = relation.as_tuples()
        else:
            rows = [
                tuple(evaluator.evaluate(value, None) for value in row)
                for row in statement.rows
            ]
        for row in rows:
            if statement.columns:
                mapping = dict(zip(statement.columns, row))
                table.insert_mapping(mapping)
            else:
                table.insert(row)
            inserted += 1
        return inserted

    def _execute_delete(self, statement: DeleteStatement) -> int:
        table = self.catalog.resolve_table(statement.table)
        if statement.where is None:
            removed = len(table)
            table.clear()
            return removed
        binding = statement.alias or statement.table
        relation = Relation.from_table(table, binding)
        evaluator = self._bare_evaluator()
        keep = []
        removed = 0
        for row in table.rows:
            scope = RowScope(relation, row, None)
            if evaluator.evaluate_predicate(statement.where, scope):
                removed += 1
            else:
                keep.append(row)
        table.replace(keep)
        return removed

    def _execute_update(self, statement: UpdateStatement) -> int:
        table = self.catalog.resolve_table(statement.table)
        binding = statement.alias or statement.table
        relation = Relation.from_table(table, binding)
        evaluator = self._bare_evaluator()
        positions = {
            column: table.schema.column_position(column)
            for column, _ in statement.assignments
        }
        updated = 0
        new_rows = []
        for row in table.rows:
            scope = RowScope(relation, row, None)
            if statement.where is None or evaluator.evaluate_predicate(statement.where, scope):
                values = list(row)
                for column, expression in statement.assignments:
                    values[positions[column]] = evaluator.evaluate(expression, scope)
                new_rows.append(tuple(values))
                updated += 1
            else:
                new_rows.append(row)
        table.replace(new_rows)
        return updated

    # -- internals ------------------------------------------------------------------------

    def _parse_query(self, query: QueryLike) -> Query:
        if isinstance(query, str):
            cached = self._ast_cache.get(query)
            if cached is None:
                cached = parse_query(query)
                self._ast_cache[query] = cached
            if not isinstance(cached, (SelectQuery, UnionQuery)):
                raise SQLExecutionError("statement is not a query")
            return cached
        return query

    def _parse_statement(self, statement: Union[str, Statement]) -> Statement:
        if isinstance(statement, str):
            cached = self._ast_cache.get(statement)
            if cached is None:
                cached = parse_statement(statement)
                self._ast_cache[statement] = cached
            return cached
        return statement

    def _plan(self, query: Query) -> Operator:
        key = id(query)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = Planner(self.catalog, optimize=self.optimize).plan(query)
            self._plan_cache[key] = plan
        return plan

    def _context(self) -> ExecutionContext:
        return ExecutionContext(
            catalog=self.catalog,
            functions=self.functions,
            subquery_executor=self._execute_subquery,
            stats=self.stats,
        )

    def _execute_subquery(self, query: Query, outer_scope: Optional[RowScope]) -> Relation:
        plan = self._plan(query)
        context = self._context()
        return plan.execute(context, outer_scope)

    def _bare_evaluator(self) -> Evaluator:
        return Evaluator(self.functions, self._execute_subquery)

    def reset_stats(self) -> ExecutionStats:
        """Replace and return the statistics accumulator (benchmark helper)."""
        previous = self.stats
        self.stats = ExecutionStats()
        return previous
