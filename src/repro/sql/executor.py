"""The SQL executor: the public entry point of the SQL engine.

:class:`SQLExecutor` parses, plans and runs queries and DML statements
against a :class:`~repro.relational.database.Catalog`.  Three caches back
the hot path, bundled in :class:`SQLCaches` so the Hilda runtime (which
builds a short-lived executor per instance context) can share them across
executors:

* the **AST cache** maps SQL text to parsed statements;
* the **plan cache** maps parsed queries to physical plans;
* the **compile cache** maps (expression, row layout) pairs to the compiled
  closures produced by :mod:`repro.sql.compile`.

A shared :class:`SQLCaches` must only be used by executors with the same
``optimize`` / ``auto_index`` / optimizer-strategy settings and the same
function registry,
since plans and closures bake those decisions in.  Catalogs served by a
shared cache should also agree on the schemas of same-named tables: plans
are keyed by query identity, so a plan built against one schema is reused
against the others (resolution happens by name at execution time, and
:class:`~repro.sql.operators.IndexScanOp` re-validates its keys against
the table it actually resolves).  The Hilda runtime satisfies this because
each declaration's queries are distinct AST objects that always run in
identically-shaped contexts.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.config import EngineConfig
from repro.errors import SQLExecutionError, UnknownTableError
from repro.relational.database import Catalog
from repro.relational.functions import FunctionRegistry, default_registry
from repro.relational.statistics import size_class as stats_size_class
from repro.sql.ast import (
    DeleteStatement,
    Expression,
    InsertStatement,
    Query,
    SelectQuery,
    Statement,
    UnionQuery,
    UpdateStatement,
)
from repro.sql.compile import cached_compile
from repro.sql.evaluator import Evaluator, RowScope
from repro.sql.operators import (
    ExecutionContext,
    ExecutionStats,
    Operator,
    explain_plan,
    q_error,
)
from repro.sql.delta import describe_maintenance
from repro.sql.optimizer.feedback import FeedbackCache
from repro.sql.parser import parse_query, parse_statement
from repro.sql.stats import EstimationStats
from repro.sql.planner import Planner, tables_read
from repro.sql.relation import ColumnInfo, Relation

__all__ = ["SQLExecutor", "SQLCaches"]

QueryLike = Union[str, SelectQuery, UnionQuery]


class SQLCaches:
    """Parse/plan/compile caches shareable across executors (see module doc).

    The caches are shared by every executor the Hilda engine builds, across
    all concurrently-served sessions, so mutation is guarded by ``lock``:
    lookups and publications are brief critical sections while the actual
    parse/plan/compile work happens outside the lock (two threads may
    duplicate work on a cold cache; the last publication wins, which is
    harmless because entries for one key are interchangeable).
    """

    __slots__ = (
        "asts",
        "plans",
        "compiled",
        "read_sets",
        "live_plans",
        "feedback",
        "estimation",
        "lock",
    )

    def __init__(self) -> None:
        self.asts: Dict[str, Statement] = {}
        #: id(query) -> (query, [(stats fingerprint, plan), ...]); the AST
        #: is stored to pin its identity.  A fingerprint is the ``(table
        #: name, size class)`` pairs the cost-based planner consulted (None
        #: under the heuristic strategy, which matches unconditionally): on
        #: every cache hit the executor re-resolves those tables and uses
        #: the entry whose size classes are current, planning a fresh one
        #: when none is — so plans re-optimize when the data distribution
        #: shifts (docs/optimizer.md § "Plan caching and stats epochs").
        #: One entry is kept per observed fingerprint (bounded, oldest
        #: evicted): layered Hilda catalogs resolve the same query against
        #: differently-sized same-named tables per context, and each size
        #: shape keeps its own plan instead of thrashing a single slot.
        self.plans: Dict[int, Tuple[Query, List[Tuple[Optional[Tuple], Operator]]]] = {}
        #: (id(expression), columns) -> (expression, closure-or-None).
        self.compiled: Dict[Any, Tuple[Expression, Optional[Callable]]] = {}
        #: id(plan) -> (plan, table read set); the plan is stored to pin its
        #: identity.  Read sets feed dependency-tracked cache invalidation.
        self.read_sets: Dict[int, Tuple[Operator, frozenset]] = {}
        #: ids of plans currently published in ``plans``.  Read sets are
        #: cached only for live plans, so a thread that computed one for a
        #: concurrently evicted plan cannot re-pin it after its cleanup.
        self.live_plans: set = set()
        #: Observed true cardinalities per plan-node fingerprint, feeding
        #: feedback-driven re-optimization (docs/optimizer.md).  Engine-
        #: scoped like the plan cache it corrects; internally locked.
        self.feedback = FeedbackCache()
        #: Engine-scoped estimate-vs-actual totals (EXPLAIN ANALYZE and the
        #: feedback observation pass), surfaced in benchmark artifacts.
        self.estimation = EstimationStats()
        self.lock = threading.Lock()


class SQLExecutor:
    """Executes SQL against a catalog of tables.

    Parameters
    ----------
    catalog:
        Any object implementing the :class:`Catalog` protocol (a
        :class:`~repro.relational.database.Database` or a layered catalog
        built by the Hilda runtime).
    functions:
        Scalar function registry; defaults to the process-wide registry.
    config:
        A typed :class:`~repro.config.EngineConfig`; the executor reads its
        planner/compiler switches.  ``optimize`` builds hash joins for
        equality join predicates (nested loops otherwise), ``auto_index``
        lets the planner answer equality predicates and equi-join keys with
        secondary hash indexes created on first use (declared indexes are
        always considered), and ``compile_expressions`` compiles per-row
        expressions to closures over the row layout instead of running the
        tree-walking evaluator.
    caches:
        A shared :class:`SQLCaches`; a private one is created when omitted.
    scatter:
        Optional cross-shard read provider (docs/cluster.md).  An object
        with ``overlay_for(ast, read_names) -> Optional[dict]`` returning
        merged replacement tables for queries that must read beyond the
        local shard; queries it declines run purely locally.  None (the
        default) outside cluster workers.
    **legacy_options:
        The pre-config keyword arguments (``optimize=...``,
        ``auto_index=...``, ``compile_expressions=...``) are still accepted
        and merged onto ``config``, each emitting a ``DeprecationWarning``
        once per process.  See ``docs/api.md``.
    """

    #: Legacy kwargs -> the EngineConfig fields replacing them.
    LEGACY_KWARGS = {
        "optimize": "optimize",
        "auto_index": "auto_index",
        "compile_expressions": "compile_expressions",
    }

    def __init__(
        self,
        catalog: Catalog,
        functions: Optional[FunctionRegistry] = None,
        config: Optional[EngineConfig] = None,
        caches: Optional[SQLCaches] = None,
        scatter: Optional[Any] = None,
        **legacy_options: Any,
    ) -> None:
        config = EngineConfig.from_legacy(
            config, legacy_options, owner="SQLExecutor", allowed=self.LEGACY_KWARGS
        )
        self.config = config
        self.catalog = catalog
        self.functions = functions or default_registry()
        self.optimize = config.optimize
        self.auto_index = config.auto_index
        self.compile_expressions = config.compile_expressions
        self.optimizer_config = config.optimizer
        self.stats = ExecutionStats()
        self.scatter = scatter
        self.caches = caches if caches is not None else SQLCaches()
        self._ast_cache = self.caches.asts
        self._plan_cache = self.caches.plans
        self._compile_cache = self.caches.compiled

    # -- queries --------------------------------------------------------------

    def execute_query(
        self, query: QueryLike, outer_scope: Optional[RowScope] = None
    ) -> Relation:
        """Execute a SELECT/UNION query and return the result relation."""
        ast = self._parse_query(query)
        plan, fingerprint = self._plan_entry(ast)
        if (
            self.optimizer_config.feedback
            and self.optimizer_config.strategy == "cost"
            and self.scatter is None
        ):
            # Feedback-driven re-optimization: the first execution per
            # (query, stats fingerprint) runs instrumented and records true
            # per-node cardinalities (docs/optimizer.md § "Feedback-driven
            # re-optimization").
            token = (id(ast), fingerprint)
            if self.caches.feedback.mark_observed(token):
                return self._observed_execution(ast, token, fingerprint, outer_scope)
        overlay = None
        if self.scatter is not None:
            # Cluster hook: a query reading beyond the local shard executes
            # against an overlay catalog whose named tables were merged from
            # every shard's scan (scatter-gather); running the *whole* plan
            # over the merged contents re-applies joins/ORDER BY/LIMIT with
            # single-process semantics (docs/cluster.md).
            overlay = self.scatter.overlay_for(ast, self._plan_read_set(plan))
        context = self._context(overlay)
        return plan.execute(context, outer_scope)

    def _observed_execution(
        self,
        ast: Query,
        token: Tuple,
        fingerprint: Optional[Tuple],
        outer_scope: Optional[RowScope],
    ) -> Relation:
        """Execute an instrumented private plan and feed the feedback loop.

        The cached plan must stay pristine (it is shared across threads and
        instrumentation rebinds ``execute``), so observation plans a fresh
        private copy — the same plan the cache holds, since both saw the
        same statistics.  After executing it, every join-pipeline operator's
        actual cardinality is recorded in the engine's
        :class:`~repro.sql.optimizer.feedback.FeedbackCache`; when the worst
        per-node q-error exceeds ``OptimizerConfig.reopt_q_error`` *and* the
        observation taught the cache something new, the cached plan entry is
        invalidated so the next execution re-plans with corrected estimates
        (and is observed again — the loop ends when observations stop
        changing recorded cardinalities).
        """
        feedback = self.caches.feedback
        plan = self._make_planner().plan(ast)
        actuals: Dict[int, Tuple[int, int]] = {}
        _instrument_plan(plan, actuals)
        try:
            result = plan.execute(self._context(), outer_scope)
        except Exception:
            # Let the next execution claim the observation instead of
            # permanently skipping this plan-cache entry.
            feedback.forget_observation(token)
            raise
        checks = self.stats.estimation_checks
        under = self.stats.estimation_underestimates
        over = self.stats.estimation_overestimates
        learned = False
        worst_q_error = 1.0
        for operator, (loops, total_rows) in _collect_estimates(plan, actuals):
            actual = total_rows / max(1, loops)
            self.stats.record_estimation(operator.estimated_rows, actual)
            if operator.feedback_key is not None:
                learned |= feedback.record(operator.feedback_key, actual)
                worst_q_error = max(
                    worst_q_error, q_error(operator.estimated_rows, actual)
                )
        self.caches.estimation.add(
            self.stats.estimation_checks - checks,
            self.stats.estimation_underestimates - under,
            self.stats.estimation_overestimates - over,
        )
        if learned and worst_q_error > self.optimizer_config.reopt_q_error:
            self._invalidate_plan(ast, fingerprint)
            feedback.forget_observation(token)
            self.caches.estimation.replans += 1
        return result

    def _invalidate_plan(self, query: Query, fingerprint: Optional[Tuple]) -> None:
        """Drop one (query, stats fingerprint) plan-cache entry."""
        key = id(query)
        with self.caches.lock:
            entry = self._plan_cache.get(key)
            if entry is None:
                return
            kept: List[Tuple[Optional[Tuple], Operator]] = []
            for entry_fingerprint, plan in entry[1]:
                if entry_fingerprint == fingerprint:
                    self._drop_plan_locked(plan)
                else:
                    kept.append((entry_fingerprint, plan))
            if kept:
                self._plan_cache[key] = (entry[0], kept)
            else:
                self._plan_cache.pop(key, None)

    def query_rows(self, query: QueryLike) -> List[Tuple[Any, ...]]:
        """Execute a query and return its rows as tuples."""
        return self.execute_query(query).as_tuples()

    def query_dicts(self, query: QueryLike) -> List[Dict[str, Any]]:
        """Execute a query and return its rows as dictionaries."""
        return self.execute_query(query).as_dicts()

    def query_scalar(self, query: QueryLike) -> Any:
        """Execute a query and return the first column of its first row."""
        return self.execute_query(query).scalar()

    def explain(self, query: QueryLike, analyze: bool = False) -> str:
        """Render the physical plan chosen for a query, plus its table read set.

        Under the cost-based optimizer each operator line carries its
        estimated output rows and cumulative cost.  With ``analyze=True``
        the plan is also *executed* and every line additionally reports the
        rows the operator actually produced and how often it ran, while the
        ``estimation_*`` counters of :attr:`stats` record how many
        estimates were off by more than a q-error of 2 (EXPLAIN ANALYZE).
        The trailing ``Tables read:`` line is deterministically sorted.
        """
        if analyze:
            return self._explain_analyze(self._parse_query(query))
        plan = self._plan(self._parse_query(query))
        return explain_plan(plan) + self._footprint_line(plan)

    def _footprint_line(self, plan: Operator) -> str:
        reads = sorted(self._plan_read_set(plan))
        footprint = ", ".join(reads) if reads else "(none)"
        return f"\nTables read: {footprint}"

    def _explain_analyze(self, ast: Query) -> str:
        """EXPLAIN ANALYZE: execute an instrumented private copy of the plan.

        The plan is built fresh (never published to the shared cache)
        because instrumentation rebinds each operator's ``execute``; cached
        plans are shared across threads and must stay pristine.
        """
        plan = self._make_planner().plan(ast)
        # Footprint computed before instrumentation and without touching
        # caches.read_sets: this plan is throwaway and must not be pinned
        # there (the cache has no eviction for never-again-seen plans).
        reads = sorted(tables_read(plan, plan_subquery=self._plan))
        footprint = ", ".join(reads) if reads else "(none)"
        maintenance = describe_maintenance(ast, plan, frozenset(reads))
        actuals: Dict[int, Tuple[int, int]] = {}
        _instrument_plan(plan, actuals)
        checks = self.stats.estimation_checks
        under = self.stats.estimation_underestimates
        over = self.stats.estimation_overestimates
        plan.execute(self._context(), None)
        for operator, (loops, total_rows) in _collect_estimates(plan, actuals):
            actual = total_rows / max(1, loops)
            self.stats.record_estimation(operator.estimated_rows, actual)
            if operator.feedback_key is not None:
                # EXPLAIN ANALYZE piggybacks on the same instrumentation the
                # observation pass uses, so it teaches the feedback cache too.
                self.caches.feedback.record(operator.feedback_key, actual)
        self.caches.estimation.add(
            self.stats.estimation_checks - checks,
            self.stats.estimation_underestimates - under,
            self.stats.estimation_overestimates - over,
        )
        estimation = (
            f"Estimation: {self.stats.estimation_checks - checks} checked, "
            f"{self.stats.estimation_underestimates - under} underestimated, "
            f"{self.stats.estimation_overestimates - over} overestimated "
            "(q-error > 2)"
        )
        return (
            explain_plan(plan, actuals=actuals)
            + f"\n{estimation}"
            + f"\nMaintenance: {maintenance}"
            + f"\nTables read: {footprint}"
        )

    def read_set(self, query: QueryLike) -> frozenset:
        """The names of the tables a query reads (its dependency footprint).

        Derived from the physical plan (including subquery scans, index
        operators and expression subqueries) and cached per plan, so after
        the first call this is a dictionary lookup.  The Hilda runtime
        records this footprint for every executed activation query and keys
        its caches on the version vector of exactly these tables.
        """
        return self._plan_read_set(self._plan(self._parse_query(query)))

    def _plan_read_set(self, plan: Operator) -> frozenset:
        key = id(plan)
        with self.caches.lock:
            entry = self.caches.read_sets.get(key)
        if entry is None:
            names = tables_read(plan, plan_subquery=self._plan)
            with self.caches.lock:
                # Publish only while the plan is still in the plan cache: a
                # concurrent eviction has already popped this slot, and
                # re-inserting would pin the dead plan tree forever.
                if key in self.caches.live_plans:
                    self.caches.read_sets[key] = (plan, names)
            return names
        return entry[1]

    # -- statements -------------------------------------------------------------

    def execute(self, statement: Union[str, Statement]) -> Union[Relation, int]:
        """Execute any supported statement.

        SELECT returns a :class:`Relation`; DML statements return the number
        of affected rows.
        """
        ast = self._parse_statement(statement)
        if isinstance(ast, (SelectQuery, UnionQuery)):
            return self.execute_query(ast)
        if isinstance(ast, InsertStatement):
            return self._execute_insert(ast)
        if isinstance(ast, DeleteStatement):
            return self._execute_delete(ast)
        if isinstance(ast, UpdateStatement):
            return self._execute_update(ast)
        raise SQLExecutionError(f"unsupported statement {type(ast).__name__}")

    # -- DML ------------------------------------------------------------------------

    def _execute_insert(self, statement: InsertStatement) -> int:
        table = self.catalog.resolve_table(statement.table)
        evaluator = self._bare_evaluator()
        inserted = 0
        if statement.query is not None:
            relation = self.execute_query(statement.query)
            rows = relation.as_tuples()
        else:
            rows = [
                tuple(evaluator.evaluate(value, None) for value in row)
                for row in statement.rows
            ]
        for row in rows:
            if statement.columns:
                mapping = dict(zip(statement.columns, row))
                table.insert_mapping(mapping)
            else:
                table.insert(row)
            inserted += 1
        return inserted

    def _execute_delete(self, statement: DeleteStatement) -> int:
        table = self.catalog.resolve_table(statement.table)
        if statement.where is None:
            removed = len(table)
            table.clear()
            return removed
        binding = statement.alias or statement.table
        columns = _table_columns(table, binding)
        predicate = self._row_predicate(statement.where, columns, len(table))
        return table.delete_where(predicate)

    def _execute_update(self, statement: UpdateStatement) -> int:
        table = self.catalog.resolve_table(statement.table)
        binding = statement.alias or statement.table
        columns = _table_columns(table, binding)
        if statement.where is None:
            predicate = lambda row: True  # noqa: E731 - trivial match-all
        else:
            predicate = self._row_predicate(statement.where, columns, len(table))
        positions = {
            column: table.schema.column_position(column)
            for column, _ in statement.assignments
        }
        assignment_fns = [
            (positions[column], expression, self._compiled(expression, columns))
            for column, expression in statement.assignments
        ]
        scope_relation = Relation(columns, ())
        evaluator = self._bare_evaluator()

        def updater(row: Tuple[Any, ...]) -> List[Any]:
            values = list(row)
            scope: Optional[RowScope] = None
            for position, expression, fn in assignment_fns:
                if fn is not None:
                    self.stats.compiled_evals += 1
                    values[position] = fn(row)
                else:
                    if scope is None:
                        scope = RowScope(scope_relation, row, None)
                    values[position] = evaluator.evaluate(expression, scope)
            return values

        return table.update_where(predicate, updater)

    def _row_predicate(
        self, where: Expression, columns: Tuple[ColumnInfo, ...], n_rows: int
    ) -> Callable[[Tuple[Any, ...]], bool]:
        """A row -> bool predicate, compiled against the table layout if possible."""
        fn = self._compiled(where, columns)
        if fn is not None:
            self.stats.compiled_evals += n_rows
            return lambda row: fn(row) is True
        scope_relation = Relation(columns, ())
        evaluator = self._bare_evaluator()
        return lambda row: (
            evaluator.evaluate(where, RowScope(scope_relation, row, None)) is True
        )

    # -- internals ------------------------------------------------------------------------

    def _parse_query(self, query: QueryLike) -> Query:
        if isinstance(query, str):
            with self.caches.lock:
                cached = self._ast_cache.get(query)
            if cached is None:
                cached = parse_query(query)
                with self.caches.lock:
                    self._ast_cache[query] = cached
            if not isinstance(cached, (SelectQuery, UnionQuery)):
                raise SQLExecutionError("statement is not a query")
            return cached
        return query

    def _parse_statement(self, statement: Union[str, Statement]) -> Statement:
        if isinstance(statement, str):
            with self.caches.lock:
                cached = self._ast_cache.get(statement)
            if cached is None:
                cached = parse_statement(statement)
                with self.caches.lock:
                    self._ast_cache[statement] = cached
            return cached
        return statement

    def _make_planner(self) -> Planner:
        """The planner for the configured optimizer strategy."""
        if self.optimizer_config.strategy == "cost":
            from repro.sql.optimizer import CostBasedPlanner

            return CostBasedPlanner(
                self.catalog,
                optimize=self.optimize,
                auto_index=self.auto_index,
                config=self.optimizer_config,
                feedback=self.caches.feedback
                if self.optimizer_config.feedback
                else None,
            )
        return Planner(self.catalog, optimize=self.optimize, auto_index=self.auto_index)

    #: Plans kept per query: one per distinct stats fingerprint (size
    #: shape) seen recently; beyond this the oldest entry is evicted.
    MAX_PLANS_PER_QUERY = 4

    def _plan(self, query: Query) -> Operator:
        return self._plan_entry(query)[0]

    def _plan_entry(self, query: Query) -> Tuple[Operator, Optional[Tuple]]:
        """The cached-or-fresh plan plus the stats fingerprint keying it."""
        key = id(query)
        with self.caches.lock:
            entry = self._plan_cache.get(key)
            candidates = list(entry[1]) if entry is not None else []
        # Fingerprint validation resolves tables through this executor's
        # catalog; it runs outside the shared lock so a layered-catalog
        # walk never blocks other executors' cache hits.
        for fingerprint, plan in candidates:
            if self._fingerprint_current(fingerprint):
                return plan, fingerprint
        planner = self._make_planner()
        plan = planner.plan(query)
        fingerprint = getattr(planner, "stats_fingerprint", None) or None
        if fingerprint is not None:
            fingerprint = tuple(sorted(fingerprint.items()))
        with self.caches.lock:
            entry = self._plan_cache.get(key)
            plans = list(entry[1]) if entry is not None else []
            # Planning happened outside the lock: another thread may have
            # published this fingerprint already.  Replace its slot rather
            # than appending a duplicate that would crowd out (and FIFO-
            # evict) plans for genuinely different size shapes.
            for index, (existing_fingerprint, existing_plan) in enumerate(plans):
                if existing_fingerprint == fingerprint:
                    plans[index] = (fingerprint, plan)
                    self._drop_plan_locked(existing_plan)
                    break
            else:
                plans.append((fingerprint, plan))
            while len(plans) > self.MAX_PLANS_PER_QUERY:
                _, evicted = plans.pop(0)
                self._drop_plan_locked(evicted)
            self.caches.live_plans.add(id(plan))
            self._plan_cache[key] = (query, plans)
        return plan, fingerprint

    def _drop_plan_locked(self, plan: Operator) -> None:
        """Forget a superseded plan's cache footprint (caller holds the lock)."""
        self.caches.live_plans.discard(id(plan))
        self.caches.read_sets.pop(id(plan), None)

    def _fingerprint_current(self, fingerprint: Optional[Tuple]) -> bool:
        """True while every table a cached plan depends on keeps its size class.

        The size class is a pure function of the row count
        (:func:`~repro.relational.statistics.size_class`), so validation is
        O(1) per table and never forces the statistics rebuild that
        whole-table replacement defers.  A name that no longer resolves
        (layered Hilda catalogs differ per instance context) counts as
        current: name-based plan sharing across contexts is the established
        contract, and re-planning there would thrash the cache.
        """
        if not fingerprint:
            return True
        for table_name, recorded_class in fingerprint:
            try:
                table = self.catalog.resolve_table(table_name)
            except UnknownTableError:
                continue
            if stats_size_class(len(table)) != recorded_class:
                return False
        return True

    def _compiled(
        self, expression: Expression, columns: Tuple[ColumnInfo, ...]
    ) -> Optional[Callable]:
        if not self.compile_expressions:
            return None
        return cached_compile(self._compile_cache, expression, columns, self.functions)

    def _context(self, overlay: Optional[Dict[str, Any]] = None) -> ExecutionContext:
        if overlay:
            catalog: Catalog = _OverlayCatalog(self.catalog, overlay)

            def subquery_executor(
                query: Query, outer_scope: Optional[RowScope], _overlay=overlay
            ) -> Relation:
                # Subqueries of a scatter-gathered query read the same
                # merged tables as the enclosing plan.
                return self._plan(query).execute(self._context(_overlay), outer_scope)

        else:
            catalog = self.catalog
            subquery_executor = self._execute_subquery
        return ExecutionContext(
            catalog=catalog,
            functions=self.functions,
            subquery_executor=subquery_executor,
            stats=self.stats,
            compile_cache=self._compile_cache,
            compile_expressions=self.compile_expressions,
        )

    def _execute_subquery(self, query: Query, outer_scope: Optional[RowScope]) -> Relation:
        plan = self._plan(query)
        context = self._context()
        return plan.execute(context, outer_scope)

    def _bare_evaluator(self) -> Evaluator:
        return Evaluator(self.functions, self._execute_subquery, stats=self.stats)

    def reset_stats(self) -> ExecutionStats:
        """Replace and return the statistics accumulator (benchmark helper)."""
        previous = self.stats
        self.stats = ExecutionStats()
        return previous


class _OverlayCatalog(Catalog):
    """A catalog whose named tables are shadowed by scatter-gathered merges.

    Physical plans resolve base tables *by name at execution time*, so
    swapping the catalog under an already-planned query is all it takes to
    run it over merged cross-shard contents (docs/cluster.md).
    """

    __slots__ = ("_base", "_overlay")

    def __init__(self, base: Catalog, overlay: Dict[str, Any]) -> None:
        self._base = base
        self._overlay = overlay

    def resolve_table(self, name: str):
        table = self._overlay.get(name)
        if table is not None:
            return table
        return self._base.resolve_table(name)

    def table_names(self) -> List[str]:
        names = list(self._base.table_names())
        names.extend(name for name in self._overlay if name not in names)
        return names


def _instrument_plan(plan: Operator, actuals: Dict[int, Tuple[int, int]]) -> None:
    """Shadow each operator's ``execute`` to record (loops, total rows).

    Only ever applied to a plan private to one EXPLAIN ANALYZE call: the
    shadowing instance attribute would leak counts (and a dead dict) if the
    plan were shared.
    """
    original = plan.execute

    def recording_execute(context, outer_scope, _original=original, _node=plan):
        relation = _original(context, outer_scope)
        loops, total_rows = actuals.get(id(_node), (0, 0))
        actuals[id(_node)] = (loops + 1, total_rows + len(relation.rows))
        return relation

    plan.execute = recording_execute  # type: ignore[method-assign]
    for child in plan.children():
        _instrument_plan(child, actuals)


def _collect_estimates(plan: Operator, actuals: Dict[int, Tuple[int, int]]):
    """Yield (operator, actual) pairs for operators carrying an estimate."""
    if plan.estimated_rows is not None and id(plan) in actuals:
        yield plan, actuals[id(plan)]
    for child in plan.children():
        yield from _collect_estimates(child, actuals)


def _table_columns(table, binding: str) -> Tuple[ColumnInfo, ...]:
    """The column layout of a base table under a binding name."""
    return tuple(
        ColumnInfo(name=name, qualifier=binding) for name in table.schema.column_names
    )
