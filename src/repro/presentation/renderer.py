"""Recursive HTML rendering of activation trees.

This is the runtime analogue of the generated ``toHTML`` methods described
in Section 6.1 of the paper: the page for a session is produced by rendering
the root AUnit instance, which recursively renders its child instances.

For a User-Defined AUnit the renderer uses the program's PUnit when one is
declared (substituting each ``<punit activator=...>`` placeholder with the
concatenated renderings of the child instances created by that activator) or
falls back to a generic layout.  Basic AUnit instances are rendered by their
default Basic PUnits (:mod:`repro.presentation.default_punits`).

The renderer optionally caches rendered fragments — the "entire HTML pages
or fragments ... can be cached" optimization of Section 6.2.  Under
dependency tracking (the default) a fragment is keyed on the instance's
**transitive dependency fingerprint**: a structural hash over the subtree's
instance IDs and the version stamps of every table the subtree renders
from.  A write bumps only the versions of the tables it touches and delta
reactivation keeps unaffected subtrees' table objects alive, so a write to
``grades`` no longer evicts cached pages that only read ``courses`` — the
fingerprints of untouched subtrees are simply unchanged.  The coarse mode
(``dependency_tracking=False``) reproduces the old behaviour of keying on
the engine-global state version.  The cache is LRU-bounded; see
``docs/caching.md``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from repro.config import DEFAULT_FRAGMENT_CACHE_SIZE
from repro.hilda.ast import PUnitDecl, PUnitInclude
from repro.hilda.punit_parser import split_template
from repro.presentation.default_punits import DEFAULT_ACTION_URL, render_basic_instance
from repro.presentation.html import escape, tag
from repro.sql.stats import CacheStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import HildaEngine
    from repro.runtime.instance import AUnitInstance

__all__ = ["PageRenderer", "RenderStats"]


class RenderStats(CacheStats):
    """Fragment-cache counters plus the number of fragments actually rendered.

    ``cache_hits`` / ``cache_misses`` / ``cache_evictions`` alias the
    :class:`~repro.sql.stats.CacheStats` counters under the names the
    benchmarks historically used.
    """

    def __init__(self) -> None:
        super().__init__()
        self.fragments_rendered = 0

    @property
    def cache_hits(self) -> int:
        return self.hits

    @property
    def cache_misses(self) -> int:
        return self.misses

    @property
    def cache_evictions(self) -> int:
        return self.evictions

    def reset(self) -> None:
        super().reset()
        self.fragments_rendered = 0

    def as_dict(self) -> dict:
        data = super().as_dict()
        data["fragments_rendered"] = self.fragments_rendered
        return data


class PageRenderer:
    """Renders activation (sub)trees to HTML.

    Parameters
    ----------
    cache_fragments:
        Cache rendered fragments between requests (Section 6.2).
    dependency_tracking:
        Key cached fragments on the subtree's dependency fingerprint instead
        of the engine-global state version.  Defaults to the engine's own
        ``dependency_tracking`` setting so renderer and engine agree on the
        invalidation model.
    fragment_cache_size:
        Bound on the fragment cache in entries (LRU eviction past the
        bound; None = unbounded).
    """

    def __init__(
        self,
        engine: "HildaEngine",
        action_url: str = DEFAULT_ACTION_URL,
        cache_fragments: bool = False,
        dependency_tracking: Optional[bool] = None,
        fragment_cache_size: Optional[int] = DEFAULT_FRAGMENT_CACHE_SIZE,
    ) -> None:
        self.engine = engine
        self.program = engine.program
        self.action_url = action_url
        self.cache_fragments = cache_fragments
        self.dependency_tracking = (
            engine.dependency_tracking if dependency_tracking is None else dependency_tracking
        )
        self.fragment_cache_size = fragment_cache_size
        self.stats = RenderStats()
        self._fragment_cache: "OrderedDict[Tuple, str]" = OrderedDict()
        #: Guards the fragment cache and its hit/miss counters when several
        #: request threads render concurrently (see docs/concurrency.md).
        self._cache_lock = threading.Lock()

    # -- public API -------------------------------------------------------------

    def render_session(self, session_id: str) -> str:
        """Render the full page for one session.

        The whole render happens under the engine's read lock so a
        concurrent operation cannot reactivate the forest (or rewrite the
        tables the page is reading) midway through the page.
        """
        self.engine.session_tree(session_id)  # rebuild first if stale (lazy mode)
        with self.engine.read_locked():
            root = self.engine.forest.root_for_session(session_id)
            body = self.render_instance(root)
        return (
            "<!DOCTYPE html>\n"
            + tag(
                "html",
                tag("head", tag("title", escape(f"Hilda - {self.program.root_name}")))
                + tag("body", body),
            )
        )

    def render_instance(
        self,
        instance: "AUnitInstance",
        punit_name: Optional[str] = None,
        _memo: Optional[Dict[int, int]] = None,
    ) -> str:
        """Render one AUnit instance (and its subtree) to an HTML fragment."""
        if self.cache_fragments:
            if _memo is None:
                _memo = {}
            if self.dependency_tracking:
                stamp = self._fingerprint(instance, _memo)
            else:
                stamp = self.engine.state_version
            cache_key = (instance.instance_id, punit_name, stamp)
            with self._cache_lock:
                cached = self._fragment_cache.get(cache_key)
                if cached is not None:
                    self._fragment_cache.move_to_end(cache_key)
                    self.stats.hits += 1
                    return cached
                self.stats.misses += 1

        fragment = self._render_fragment(instance, punit_name, _memo)

        if self.cache_fragments:
            with self._cache_lock:
                self._fragment_cache[cache_key] = fragment
                self._fragment_cache.move_to_end(cache_key)
                if self.fragment_cache_size is not None:
                    while len(self._fragment_cache) > self.fragment_cache_size:
                        self._fragment_cache.popitem(last=False)
                        self.stats.evictions += 1
        return fragment

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._fragment_cache.clear()

    # -- internals -----------------------------------------------------------------

    def _render_fragment(
        self,
        instance: "AUnitInstance",
        punit_name: Optional[str],
        memo: Optional[Dict[int, int]],
    ) -> str:
        self.stats.fragments_rendered += 1
        if instance.is_basic:
            return render_basic_instance(instance, self.action_url)
        punit = self._punit_for(instance, punit_name)
        if punit is not None:
            return self._render_with_punit(instance, punit, memo)
        return self._render_default(instance, memo)

    def _fingerprint(self, instance: "AUnitInstance", memo: Dict[int, int]) -> int:
        """A structural hash over everything this instance's fragment reads.

        Covers, transitively: instance identity (ID, declaration, activator,
        activation tuple, returned flag) and the version stamps of the
        instance's input/local/output tables, plus the fingerprints of its
        children.  A write anywhere below changes some table version (or the
        child set), so fragments can only be reused while their whole
        subtree is untouched — which delta reactivation makes the common
        case for sessions a write did not affect.  ``memo`` deduplicates the
        recursion within one render pass.
        """
        key = id(instance)
        cached = memo.get(key)
        if cached is not None:
            return cached
        versions = tuple(
            table.version
            for tables in (instance.input_tables, instance.local_tables, instance.output_tables)
            for table in tables.values()
        )
        fingerprint = hash(
            (
                instance.instance_id,
                instance.decl.name,
                instance.activator_name,
                instance.activation_tuple,
                instance.returned,
                versions,
                tuple(self._fingerprint(child, memo) for child in instance.children),
            )
        )
        memo[key] = fingerprint
        return fingerprint

    def _punit_for(
        self, instance: "AUnitInstance", punit_name: Optional[str]
    ) -> Optional[PUnitDecl]:
        if punit_name:
            named = self.program.punit(punit_name)
            if named is not None:
                return named
        return self.program.default_punit_for(instance.decl.name)

    def _render_with_punit(
        self,
        instance: "AUnitInstance",
        punit: PUnitDecl,
        memo: Optional[Dict[int, int]],
    ) -> str:
        parts = []
        for piece in split_template(punit.template):
            if isinstance(piece, PUnitInclude):
                parts.append(self._render_activator_children(instance, piece, memo))
            else:
                parts.append(piece)
        return "".join(parts)

    def _render_activator_children(
        self,
        instance: "AUnitInstance",
        include: PUnitInclude,
        memo: Optional[Dict[int, int]],
    ) -> str:
        children = [
            child for child in instance.children if child.activator_name == include.activator
        ]
        rendered = [
            self.render_instance(child, include.punit_name, _memo=memo)
            for child in children
        ]
        return "\n".join(rendered)

    def _render_default(
        self, instance: "AUnitInstance", memo: Optional[Dict[int, int]]
    ) -> str:
        """Generic layout for AUnits without a PUnit: children grouped by activator."""
        sections = [tag("h2", escape(instance.decl.name))]
        for activator in instance.decl.activators:
            children = [
                child
                for child in instance.children
                if child.activator_name == activator.name
            ]
            if not children:
                continue
            rendered_children = "\n".join(
                self.render_instance(child, _memo=memo) for child in children
            )
            sections.append(
                tag(
                    "section",
                    tag("h3", escape(activator.name)) + rendered_children,
                    **{"class": "hilda-activator", "data-activator": activator.name},
                )
            )
        return tag(
            "div",
            "".join(sections),
            **{"class": "hilda-aunit", "data-aunit": instance.decl.name,
               "data-instance": instance.instance_id},
        )
