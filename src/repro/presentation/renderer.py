"""Recursive HTML rendering of activation trees.

This is the runtime analogue of the generated ``toHTML`` methods described
in Section 6.1 of the paper: the page for a session is produced by rendering
the root AUnit instance, which recursively renders its child instances.

For a User-Defined AUnit the renderer uses the program's PUnit when one is
declared (substituting each ``<punit activator=...>`` placeholder with the
concatenated renderings of the child instances created by that activator) or
falls back to a generic layout.  Basic AUnit instances are rendered by their
default Basic PUnits (:mod:`repro.presentation.default_punits`).

The renderer optionally caches rendered fragments per (instance id, engine
state version) — the "entire HTML pages or fragments ... can be cached"
optimization of Section 6.2; the caching benchmark compares hit rates and
times under a read-mostly workload.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from repro.hilda.ast import PUnitDecl, PUnitInclude
from repro.hilda.punit_parser import split_template
from repro.presentation.default_punits import DEFAULT_ACTION_URL, render_basic_instance
from repro.presentation.html import escape, tag

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import HildaEngine
    from repro.runtime.instance import AUnitInstance

__all__ = ["PageRenderer", "RenderStats"]


class RenderStats:
    """Counters for the fragment cache (benchmark instrumentation)."""

    def __init__(self) -> None:
        self.fragments_rendered = 0
        self.cache_hits = 0
        self.cache_misses = 0

    def reset(self) -> None:
        self.fragments_rendered = 0
        self.cache_hits = 0
        self.cache_misses = 0


class PageRenderer:
    """Renders activation (sub)trees to HTML."""

    def __init__(
        self,
        engine: "HildaEngine",
        action_url: str = DEFAULT_ACTION_URL,
        cache_fragments: bool = False,
    ) -> None:
        self.engine = engine
        self.program = engine.program
        self.action_url = action_url
        self.cache_fragments = cache_fragments
        self.stats = RenderStats()
        self._fragment_cache: Dict[Tuple[int, int], str] = {}
        #: Guards the fragment cache and its hit/miss counters when several
        #: request threads render concurrently (see docs/concurrency.md).
        self._cache_lock = threading.Lock()

    # -- public API -------------------------------------------------------------

    def render_session(self, session_id: str) -> str:
        """Render the full page for one session.

        The whole render happens under the engine's read lock so a
        concurrent operation cannot reactivate the forest (or rewrite the
        tables the page is reading) midway through the page.
        """
        self.engine.session_tree(session_id)  # rebuild first if stale (lazy mode)
        with self.engine.read_locked():
            root = self.engine.forest.root_for_session(session_id)
            body = self.render_instance(root)
        return (
            "<!DOCTYPE html>\n"
            + tag(
                "html",
                tag("head", tag("title", escape(f"Hilda - {self.program.root_name}")))
                + tag("body", body),
            )
        )

    def render_instance(self, instance: "AUnitInstance", punit_name: Optional[str] = None) -> str:
        """Render one AUnit instance (and its subtree) to an HTML fragment."""
        cache_key = (instance.instance_id, self.engine.state_version)
        if self.cache_fragments:
            with self._cache_lock:
                cached = self._fragment_cache.get(cache_key)
                if cached is not None:
                    self.stats.cache_hits += 1
                    return cached
                self.stats.cache_misses += 1

        self.stats.fragments_rendered += 1
        if instance.is_basic:
            fragment = render_basic_instance(instance, self.action_url)
        else:
            punit = self._punit_for(instance, punit_name)
            if punit is not None:
                fragment = self._render_with_punit(instance, punit)
            else:
                fragment = self._render_default(instance)

        if self.cache_fragments:
            with self._cache_lock:
                self._fragment_cache[cache_key] = fragment
        return fragment

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._fragment_cache.clear()

    # -- internals -----------------------------------------------------------------

    def _punit_for(
        self, instance: "AUnitInstance", punit_name: Optional[str]
    ) -> Optional[PUnitDecl]:
        if punit_name:
            named = self.program.punit(punit_name)
            if named is not None:
                return named
        return self.program.default_punit_for(instance.decl.name)

    def _render_with_punit(self, instance: "AUnitInstance", punit: PUnitDecl) -> str:
        parts = []
        for piece in split_template(punit.template):
            if isinstance(piece, PUnitInclude):
                parts.append(self._render_activator_children(instance, piece))
            else:
                parts.append(piece)
        return "".join(parts)

    def _render_activator_children(
        self, instance: "AUnitInstance", include: PUnitInclude
    ) -> str:
        children = [
            child for child in instance.children if child.activator_name == include.activator
        ]
        rendered = [self.render_instance(child, include.punit_name) for child in children]
        return "\n".join(rendered)

    def _render_default(self, instance: "AUnitInstance") -> str:
        """Generic layout for AUnits without a PUnit: children grouped by activator."""
        sections = [tag("h2", escape(instance.decl.name))]
        for activator in instance.decl.activators:
            children = [
                child
                for child in instance.children
                if child.activator_name == activator.name
            ]
            if not children:
                continue
            rendered_children = "\n".join(self.render_instance(child) for child in children)
            sections.append(
                tag(
                    "section",
                    tag("h3", escape(activator.name)) + rendered_children,
                    **{"class": "hilda-activator", "data-activator": activator.name},
                )
            )
        return tag(
            "div",
            "".join(sections),
            **{"class": "hilda-aunit", "data-aunit": instance.decl.name,
               "data-instance": instance.instance_id},
        )
