"""Presentation layer: PUnit-driven recursive HTML rendering of activation
trees (``docs/architecture.md`` § "repro.presentation")."""

from repro.presentation.default_punits import DEFAULT_ACTION_URL, render_basic_instance
from repro.presentation.html import escape, render_form, render_table, tag
from repro.presentation.renderer import PageRenderer, RenderStats

__all__ = [
    "DEFAULT_ACTION_URL",
    "PageRenderer",
    "RenderStats",
    "escape",
    "render_basic_instance",
    "render_form",
    "render_table",
    "tag",
]
