"""Default PUnits for Basic AUnits.

Hilda associates one or more Basic PUnits with each Basic AUnit
(Section 3.4); when a program does not specify one, the compiler falls back
to a default presentation.  These defaults render each Basic AUnit kind as
a small HTML fragment whose form fields follow the naming convention the
web substrate's form decoder expects:

* every returnable Basic AUnit renders a ``<form>`` with a hidden
  ``instance_id`` field;
* data entry fields are named ``c1 .. cn`` matching the Basic AUnit's output
  columns;
* SelectRow renders one form per selectable row, with the row's values in
  hidden fields.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List

from repro.presentation.html import escape, hidden_field, render_form, render_table, tag

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.instance import AUnitInstance

__all__ = ["render_basic_instance", "DEFAULT_ACTION_URL"]

#: The URL Basic AUnit forms post to inside the web container.
DEFAULT_ACTION_URL = "/action"


def render_basic_instance(instance: "AUnitInstance", action_url: str = DEFAULT_ACTION_URL) -> str:
    """Render a Basic AUnit instance with its default PUnit."""
    kind = instance.decl.basic_kind
    renderer = _RENDERERS.get(kind or "")
    if renderer is None:  # pragma: no cover - defensive
        return tag("div", escape(f"[{instance.decl.name}]"), **{"class": "hilda-basic"})
    return renderer(instance, action_url)


def _input_rows(instance: "AUnitInstance") -> List:
    table = instance.input_tables.get("input")
    return list(table.rows) if table is not None else []


def _input_columns(instance: "AUnitInstance") -> List[str]:
    table = instance.input_tables.get("input")
    return list(table.schema.column_names) if table is not None else []


def _output_columns(instance: "AUnitInstance") -> List[str]:
    schema = instance.decl.output_schema.get("output")
    return list(schema.column_names) if schema is not None else []


def _render_show_row(instance: "AUnitInstance", action_url: str) -> str:
    rows = _input_rows(instance)
    cells = "".join(tag("span", escape(value), **{"class": "hilda-cell"}) for value in (rows[0] if rows else ()))
    return tag("div", cells, **{"class": "hilda-showrow", "data-instance": instance.instance_id})


def _render_show_table(instance: "AUnitInstance", action_url: str) -> str:
    return tag(
        "div",
        render_table(_input_columns(instance), _input_rows(instance)),
        **{"class": "hilda-showtable", "data-instance": instance.instance_id},
    )


def _render_get_row(instance: "AUnitInstance", action_url: str) -> str:
    fields = "".join(
        tag("label", escape(name) + tag("input", type="text", name=name))
        for name in _output_columns(instance)
    )
    form = render_form(action_url, fields, submit_label="Add", instance_id=instance.instance_id)
    return tag("div", form, **{"class": "hilda-getrow"})


def _render_update_row(instance: "AUnitInstance", action_url: str) -> str:
    rows = _input_rows(instance)
    current = rows[0] if rows else ()
    fields = []
    for position, name in enumerate(_output_columns(instance)):
        value = current[position] if position < len(current) else ""
        fields.append(
            tag("label", escape(name) + tag("input", type="text", name=name, value=value))
        )
    form = render_form(
        action_url, "".join(fields), submit_label="Update", instance_id=instance.instance_id
    )
    return tag("div", form, **{"class": "hilda-updaterow"})


def _render_select_row(instance: "AUnitInstance", action_url: str) -> str:
    columns = _output_columns(instance)
    forms = []
    for row in _input_rows(instance):
        cells = "".join(tag("span", escape(value), **{"class": "hilda-cell"}) for value in row)
        hidden = "".join(
            hidden_field(name, value) for name, value in zip(columns, row)
        )
        forms.append(
            tag(
                "li",
                cells
                + render_form(
                    action_url, hidden, submit_label="Select", instance_id=instance.instance_id
                ),
            )
        )
    return tag("ul", "".join(forms), **{"class": "hilda-selectrow"})


def _render_submit(instance: "AUnitInstance", action_url: str) -> str:
    form = render_form(action_url, "", submit_label="Submit", instance_id=instance.instance_id)
    return tag("div", form, **{"class": "hilda-submit"})


_RENDERERS: Dict[str, Callable] = {
    "ShowRow": _render_show_row,
    "ShowTable": _render_show_table,
    "GetRow": _render_get_row,
    "UpdateRow": _render_update_row,
    "SelectRow": _render_select_row,
    "SubmitBasic": _render_submit,
}
