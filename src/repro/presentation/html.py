"""Minimal HTML construction helpers used by the presentation layer."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.relational.types import format_value

__all__ = ["escape", "tag", "render_table", "render_form", "hidden_field"]


def escape(value: Any) -> str:
    """HTML-escape a value (NULL renders as an empty string)."""
    if value is None:
        return ""
    text = value if isinstance(value, str) else format_value(value)
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def tag(element: str, content: str = "", **attributes: Any) -> str:
    """Render ``<element attr="...">content</element>`` (void elements omit content)."""
    rendered_attributes = "".join(
        f' {key.rstrip("_")}="{escape(value)}"' for key, value in attributes.items() if value is not None
    )
    if element in ("input", "br", "hr", "img"):
        return f"<{element}{rendered_attributes}>"
    return f"<{element}{rendered_attributes}>{content}</{element}>"


def render_table(
    column_names: Sequence[str], rows: Iterable[Sequence[Any]], css_class: str = "hilda-table"
) -> str:
    """Render rows as an HTML table with a header."""
    header = "".join(tag("th", escape(name)) for name in column_names)
    body_rows = []
    for row in rows:
        cells = "".join(tag("td", escape(value)) for value in row)
        body_rows.append(tag("tr", cells))
    return tag(
        "table",
        tag("thead", tag("tr", header)) + tag("tbody", "".join(body_rows)),
        **{"class": css_class},
    )


def hidden_field(name: str, value: Any) -> str:
    return tag("input", type="hidden", name=name, value=value)


def render_form(
    action: str,
    fields: str,
    submit_label: str = "Submit",
    instance_id: Optional[int] = None,
    css_class: str = "hilda-form",
) -> str:
    """Render a POST form targeting the application container's action URL."""
    hidden = hidden_field("instance_id", instance_id) if instance_id is not None else ""
    submit = tag("input", type="submit", value=submit_label)
    return tag(
        "form",
        hidden + fields + submit,
        method="post",
        action=action,
        **{"class": css_class},
    )
