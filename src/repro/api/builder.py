"""A fluent, Python-native authoring DSL for Hilda programs.

The paper's thesis is that a whole data-driven web application is one
declarative program.  The Hilda *text* format is one way to write that
program; this module is another: plain Python that constructs the very
same AST (:mod:`repro.hilda.ast`) the parser produces and resolves it
through the same pipeline (:func:`repro.hilda.program.resolve_declaration`
— inheritance flattening, root designation, static validation).  A
builder-authored application is therefore interchangeable with a
source-parsed one everywhere: engine, renderer, compiler and the
partitioning analysis all see identical declarations, which the round-trip
property test in ``tests/api/test_roundtrip_minicms.py`` pins down to
byte-identical pages.

The vocabulary mirrors the Hilda grammar::

    from repro.api import AppBuilder, aunit, table, handler

    guestbook = aunit("Guestbook", root=True)
    guestbook.input(table("user", name="string"))
    guestbook.persist(table("entry", eid="int key", author="string",
                            message="string"))

    show = guestbook.activator("ActShowEntries", "ShowTable(string, string)")
    show.input_query("ShowTable.input",
                     "SELECT E.author, E.message FROM entry E")

    post = guestbook.activator("ActPostEntry", "GetRow(string)")
    post.handler("PostEntry").do("entry", '''
        SELECT E.eid, E.author, E.message FROM entry E
        UNION
        SELECT genkey(), U.name, O.c1 FROM user U, GetRow.output O
    ''')

    program = AppBuilder().add(guestbook).build()

Every misuse raises :class:`repro.errors.BuilderError` naming the AUnit /
activator / handler being built.  See ``docs/api.md`` for the complete
DSL reference.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import BuilderError, ReproError
from repro.hilda.ast import (
    ActivatorDecl,
    ActivatorExtension,
    Assignment,
    AUnitDecl,
    ChildRef,
    HandlerDecl,
    ProgramDecl,
    PUnitDecl,
    QueryBlock,
)
from repro.hilda.basic_aunits import is_basic_aunit
from repro.hilda.program import HildaProgram, resolve_declaration
from repro.hilda.punit_parser import parse_punit_template
from repro.relational.schema import Column, Schema, TableSchema
from repro.relational.types import DataType, parse_type_name
from repro.sql.ast import Query
from repro.sql.parser import parse_query

__all__ = [
    "ActivatorBuilder",
    "AppBuilder",
    "AUnitBuilder",
    "ExtensionBuilder",
    "HandlerBuilder",
    "assign",
    "aunit",
    "child_ref",
    "condition",
    "handler",
    "punit",
    "query",
    "return_handler",
    "table",
]


# ---------------------------------------------------------------------------
# Leaf helpers: tables, queries, child references
# ---------------------------------------------------------------------------


def _parse_column(spec: str, table_name: str, name: Optional[str] = None) -> Tuple[Column, bool]:
    """Parse ``"name:type [key]"`` (positional) or ``"type [key]"`` (named)."""
    where = f"table {table_name!r}"
    text = spec.strip()
    if name is None:
        if ":" not in text:
            raise BuilderError(
                f"{where}: positional column {spec!r} must be written 'name:type' "
                "(optionally followed by 'key')"
            )
        name, _, text = text.partition(":")
        name = name.strip()
        text = text.strip()
    parts = text.split()
    if not parts:
        raise BuilderError(f"{where}: column {name!r} is missing its type")
    is_key = False
    if len(parts) == 2 and parts[1].lower() == "key":
        is_key = True
    elif len(parts) != 1:
        raise BuilderError(
            f"{where}: column {name!r} has trailing tokens {parts[1:]!r} "
            "(expected just a type, optionally followed by 'key')"
        )
    try:
        dtype = parse_type_name(parts[0])
    except ReproError as exc:
        raise BuilderError(f"{where}: column {name!r}: {exc}") from exc
    return Column(name=name, dtype=dtype), is_key


def table(
    name: str,
    /,
    *columns: Union[str, Column],
    key: Sequence[str] = (),
    **named_columns: str,
) -> TableSchema:
    """Declare a table schema the way a Hilda ``schema`` block does.

    Columns may be positional ``"name:type"`` strings (append ``key`` to
    mark a key column, e.g. ``"eid:int key"``), :class:`Column` objects, or
    keyword arguments ``name="type"`` / ``name="type key"``.  ``key=``
    names key columns explicitly instead of (or in addition to) the inline
    markers.
    """
    if not isinstance(name, str) or not name:
        raise BuilderError(f"table name must be a non-empty string, got {name!r}")
    parsed: List[Column] = []
    # A bare string is the natural spelling for a single-column key; don't
    # let list("eid") explode it into characters.
    key_columns: List[str] = [key] if isinstance(key, str) else list(key)
    for spec in columns:
        if isinstance(spec, Column):
            parsed.append(spec)
            continue
        if not isinstance(spec, str):
            raise BuilderError(
                f"table {name!r}: columns must be 'name:type' strings or Column "
                f"objects, got {spec!r}"
            )
        column, is_key = _parse_column(spec, name)
        parsed.append(column)
        if is_key:
            key_columns.append(column.name)
    for column_name, spec in named_columns.items():
        column, is_key = _parse_column(str(spec), name, name=column_name)
        parsed.append(column)
        if is_key:
            key_columns.append(column.name)
    if not parsed:
        raise BuilderError(f"table {name!r} must declare at least one column")
    known = {column.name for column in parsed}
    unknown = [column for column in key_columns if column not in known]
    if unknown:
        raise BuilderError(f"table {name!r}: key column(s) {unknown} are not declared")
    return TableSchema(name, parsed, primary_key=key_columns or None)


def _parse_sql(sql: str, location: str) -> Query:
    # Catch broadly, like the text parser does around its query blocks: any
    # parse failure must surface as a named BuilderError.
    try:
        return parse_query(sql)
    except Exception as exc:
        raise BuilderError(f"{location}: invalid SQL: {exc}") from exc


def query(sql: str, location: str = "query") -> QueryBlock:
    """Parse a SQL string into the :class:`QueryBlock` the AST stores."""
    if isinstance(sql, QueryBlock):
        return sql
    if not isinstance(sql, str):
        raise BuilderError(f"{location}: expected a SQL string, got {sql!r}")
    return QueryBlock(text=sql, query=_parse_sql(sql, location))


def condition(sql: str, location: str = "condition") -> QueryBlock:
    """A handler condition: alias of :func:`query`, reads like the grammar."""
    return query(sql, location)


def assign(target: str, sql: str, location: str = "assignment") -> Assignment:
    """``target :- SELECT ...`` — one assignment of an action/input query."""
    if not isinstance(target, str) or not target:
        raise BuilderError(f"{location}: assignment target must be a non-empty string")
    return Assignment(target=target, query=query(sql, f"{location}[{target}]"))


def child_ref(spec: Union[str, ChildRef], *type_args: Union[str, DataType]) -> ChildRef:
    """Resolve an activator's child: ``"CourseAdmin"``, ``"GetRow(string)"``
    or ``child_ref("GetRow", "string")``."""
    if isinstance(spec, ChildRef):
        if type_args:
            raise BuilderError("cannot combine a ChildRef with extra type arguments")
        return spec
    if not isinstance(spec, str) or not spec.strip():
        raise BuilderError(f"child AUnit reference must be a non-empty string, got {spec!r}")
    text = spec.strip()
    inline: List[str] = []
    if "(" in text:
        if not text.endswith(")"):
            raise BuilderError(f"malformed child reference {spec!r} (missing ')')")
        text, _, args = text[:-1].partition("(")
        text = text.strip()
        inline = [piece.strip() for piece in args.split(",") if piece.strip()]
        if type_args:
            raise BuilderError(
                f"child reference {spec!r} already has inline type arguments; "
                "do not pass extra ones"
            )
    resolved: List[DataType] = []
    for arg in list(inline) + list(type_args):
        resolved.append(arg if isinstance(arg, DataType) else parse_type_name(str(arg)))
    return ChildRef(name=text, type_args=tuple(resolved))


def punit(name: str, for_aunit: str, template: str) -> PUnitDecl:
    """Declare a Presentation Unit: HTML with ``<punit activator=...>`` tags."""
    for label, value in (("PUnit name", name), ("AUnit name", for_aunit)):
        if not isinstance(value, str) or not value:
            raise BuilderError(f"punit: {label} must be a non-empty string, got {value!r}")
    if not isinstance(template, str):
        raise BuilderError(f"punit {name!r}: the template must be a string")
    includes = parse_punit_template(template)
    return PUnitDecl(name=name, aunit_name=for_aunit, template=template, includes=includes)


# ---------------------------------------------------------------------------
# Handlers
# ---------------------------------------------------------------------------


class HandlerBuilder:
    """Builds one :class:`HandlerDecl` (condition + assignments)."""

    def __init__(self, name: Optional[str] = None, is_return: bool = False) -> None:
        self.name = name
        self.is_return = is_return
        self._condition: Optional[QueryBlock] = None
        self._actions: List[Assignment] = []
        #: Set when the handler is attached to an activator (error context).
        self._owner: str = ""

    def _location(self) -> str:
        name = self.name or "<anonymous handler>"
        return f"{self._owner}.{name}" if self._owner else name

    def when(self, sql: str) -> "HandlerBuilder":
        """Set the handler condition (at most one, like the grammar)."""
        if self._condition is not None:
            raise BuilderError(f"handler {self._location()} already has a condition")
        self._condition = condition(sql, f"{self._location()}.condition")
        return self

    def do(self, target: str, sql: str) -> "HandlerBuilder":
        """Append one ``target :- SELECT ...`` assignment to the action."""
        self._actions.append(assign(target, sql, self._location()))
        return self

    #: The grammar calls the assignment list an "action".
    action = do

    def build(self, position: int = 0) -> HandlerDecl:
        name = self.name or f"handler_{position + 1}"
        return HandlerDecl(
            name=name,
            is_return=self.is_return,
            condition=self._condition,
            actions=list(self._actions),
        )


def handler(name: Optional[str] = None) -> HandlerBuilder:
    """A non-return handler (may write local and persistent tables)."""
    return HandlerBuilder(name, is_return=False)


def return_handler(name: Optional[str] = None) -> HandlerBuilder:
    """A return handler (may write output and persistent tables)."""
    return HandlerBuilder(name, is_return=True)


def _attach_handler(
    location: str,
    handlers: List[HandlerBuilder],
    name_or_builder: Union[str, HandlerBuilder, None],
    is_return: bool,
) -> HandlerBuilder:
    """Attach a handler to an activator/extension with uniform validation:
    a prebuilt builder's return-ness must match the attaching method, and
    anything else must be a name (or None)."""
    if isinstance(name_or_builder, HandlerBuilder):
        built = name_or_builder
        if built.is_return != is_return:
            kind = "return_handler" if built.is_return else "handler"
            raise BuilderError(
                f"{location}: cannot attach a {kind} via "
                f"{'return_handler' if is_return else 'handler'}(...)"
            )
    elif name_or_builder is None or isinstance(name_or_builder, str):
        built = HandlerBuilder(name_or_builder, is_return=is_return)
    else:
        raise BuilderError(
            f"{location}: handler(...) takes a name or a "
            f"handler()/return_handler() builder, got {name_or_builder!r}"
        )
    built._owner = location
    handlers.append(built)
    return built


# ---------------------------------------------------------------------------
# Activators and activator extensions
# ---------------------------------------------------------------------------


class ActivatorBuilder:
    """Builds one :class:`ActivatorDecl` of an AUnit."""

    def __init__(
        self,
        name: str,
        child: Union[str, ChildRef],
        *type_args: Union[str, DataType],
        owner: str = "",
    ) -> None:
        if not isinstance(name, str) or not name:
            raise BuilderError(f"activator name must be a non-empty string, got {name!r}")
        self.name = name
        self.child = child_ref(child, *type_args)
        self._owner = owner
        self._activation_schema: Optional[TableSchema] = None
        self._activation_query: Optional[QueryBlock] = None
        self._input_query: List[Assignment] = []
        self._filters: List[QueryBlock] = []
        self._handlers: List[HandlerBuilder] = []

    def _location(self) -> str:
        return f"{self._owner}.{self.name}" if self._owner else self.name

    def activation(self, schema: TableSchema, sql: str) -> "ActivatorBuilder":
        """Declare the activation schema and query together (one child
        instance is activated per result tuple)."""
        if self._activation_query is not None:
            raise BuilderError(f"activator {self._location()} already has an activation query")
        if not isinstance(schema, TableSchema):
            raise BuilderError(
                f"activator {self._location()}: the activation schema must be a "
                f"table(...) declaration, got {schema!r}"
            )
        self._activation_schema = schema
        self._activation_query = query(sql, f"{self._location()}.activation_query")
        return self

    def filter(self, sql: str) -> "ActivatorBuilder":
        """Add an activation filter (the inheritance mechanism of Figure 12)."""
        self._filters.append(query(sql, f"{self._location()}.filter"))
        return self

    def input_query(self, target: str, sql: str) -> "ActivatorBuilder":
        """Append one assignment feeding the child's input tables."""
        self._input_query.append(assign(target, sql, f"{self._location()}.input_query"))
        return self

    def handler(
        self, name_or_builder: Union[str, HandlerBuilder, None] = None
    ) -> HandlerBuilder:
        """Attach a non-return handler; returns it for ``.when()`` / ``.do()``."""
        return self._attach(name_or_builder, is_return=False)

    def return_handler(
        self, name_or_builder: Union[str, HandlerBuilder, None] = None
    ) -> HandlerBuilder:
        """Attach a return handler; returns it for ``.when()`` / ``.do()``."""
        return self._attach(name_or_builder, is_return=True)

    def _attach(
        self, name_or_builder: Union[str, HandlerBuilder, None], is_return: bool
    ) -> HandlerBuilder:
        return _attach_handler(
            f"activator {self._location()}", self._handlers, name_or_builder, is_return
        )

    def build(self) -> ActivatorDecl:
        if (self._activation_schema is None) != (self._activation_query is None):
            raise BuilderError(
                f"activator {self._location()}: activation schema and activation "
                "query must be specified together"
            )
        return ActivatorDecl(
            name=self.name,
            child=self.child,
            activation_schema=self._activation_schema,
            activation_query=self._activation_query,
            input_query=list(self._input_query),
            handlers=[built.build(position) for position, built in enumerate(self._handlers)],
            activation_filters=list(self._filters),
        )


class ExtensionBuilder:
    """Builds one ``extend activator Base { ... }`` block (Figure 12)."""

    def __init__(self, base_name: str, owner: str = "") -> None:
        if not isinstance(base_name, str) or not base_name:
            raise BuilderError(
                f"extended activator name must be a non-empty string, got {base_name!r}"
            )
        self.base_name = base_name
        self._owner = owner
        self._filter: Optional[QueryBlock] = None
        self._handlers: List[HandlerBuilder] = []

    def _location(self) -> str:
        prefix = f"{self._owner}." if self._owner else ""
        return f"{prefix}extend({self.base_name})"

    def filter(self, sql: str) -> "ExtensionBuilder":
        """Set the activation filter ANDed onto the base activation query."""
        if self._filter is not None:
            raise BuilderError(f"{self._location()} already has an activation filter")
        self._filter = query(sql, f"{self._location()}.filter")
        return self

    def handler(self, name_or_builder: Union[str, HandlerBuilder, None] = None) -> HandlerBuilder:
        return self._attach(name_or_builder, is_return=False)

    def return_handler(
        self, name_or_builder: Union[str, HandlerBuilder, None] = None
    ) -> HandlerBuilder:
        return self._attach(name_or_builder, is_return=True)

    def _attach(
        self, name_or_builder: Union[str, HandlerBuilder, None], is_return: bool
    ) -> HandlerBuilder:
        return _attach_handler(
            self._location(), self._handlers, name_or_builder, is_return
        )

    def build(self) -> ActivatorExtension:
        return ActivatorExtension(
            base_name=self.base_name,
            activation_filter=self._filter,
            handlers=[built.build(position) for position, built in enumerate(self._handlers)],
        )


# ---------------------------------------------------------------------------
# AUnits
# ---------------------------------------------------------------------------


class AUnitBuilder:
    """Builds one :class:`AUnitDecl` the way an ``aunit { ... }`` block does."""

    def __init__(self, name: str, root: bool = False, extends: Optional[str] = None) -> None:
        if not isinstance(name, str) or not name:
            raise BuilderError(f"AUnit name must be a non-empty string, got {name!r}")
        if is_basic_aunit(name):
            raise BuilderError(
                f"AUnit {name!r}: Basic AUnit names are reserved; reference them "
                "as activator children instead"
            )
        self.name = name
        self.is_root = root
        self._extends = extends
        self._synchronized = False
        self._input: List[TableSchema] = []
        self._output: List[TableSchema] = []
        self._inout: List[TableSchema] = []
        self._persist: List[TableSchema] = []
        self._local: List[TableSchema] = []
        self._persist_query: List[Assignment] = []
        self._local_query: List[Assignment] = []
        self._activators: List[ActivatorBuilder] = []
        self._extensions: List[ExtensionBuilder] = []

    # -- schemas ---------------------------------------------------------------

    def _tables(self, kind: str, tables: Sequence[TableSchema], into: List[TableSchema]) -> "AUnitBuilder":
        for schema in tables:
            if not isinstance(schema, TableSchema):
                raise BuilderError(
                    f"AUnit {self.name!r}: {kind} schema entries must be table(...) "
                    f"declarations, got {schema!r}"
                )
            into.append(schema)
        return self

    def input(self, *tables: TableSchema) -> "AUnitBuilder":
        """Add tables to the input schema (filled by the parent activator)."""
        return self._tables("input", tables, self._input)

    def output(self, *tables: TableSchema) -> "AUnitBuilder":
        """Add tables to the output schema (written by return handlers)."""
        return self._tables("output", tables, self._output)

    def inout(self, *tables: TableSchema) -> "AUnitBuilder":
        """Add tables readable as ``in.X`` and writable as ``out.X``."""
        return self._tables("inout", tables, self._inout)

    def persist(self, *tables: TableSchema) -> "AUnitBuilder":
        """Add tables to the persistent schema (shared by every instance)."""
        return self._tables("persist", tables, self._persist)

    def local(self, *tables: TableSchema) -> "AUnitBuilder":
        """Add tables to the local (per-instance) schema."""
        return self._tables("local", tables, self._local)

    # -- initialization queries ---------------------------------------------------

    def persist_init(self, target: str, sql: str) -> "AUnitBuilder":
        """Append one assignment to the persist query (runs once per type)."""
        self._persist_query.append(
            assign(target, sql, f"{self.name}.persist_query")
        )
        return self

    def local_init(self, target: str, sql: str) -> "AUnitBuilder":
        """Append one assignment to the local query (runs at activation)."""
        self._local_query.append(assign(target, sql, f"{self.name}.local_query"))
        return self

    # -- modifiers --------------------------------------------------------------

    def synchronized(self, value: bool = True) -> "AUnitBuilder":
        """Re-initialise local state on every reactivation (Definition 8)."""
        self._synchronized = bool(value)
        return self

    def root(self, value: bool = True) -> "AUnitBuilder":
        """Mark this AUnit as the program's root."""
        self.is_root = bool(value)
        return self

    def extends(self, base_name: str) -> "AUnitBuilder":
        """Inherit from ``base_name`` (Figure 12)."""
        if not isinstance(base_name, str) or not base_name:
            raise BuilderError(
                f"AUnit {self.name!r}: extends() needs the base AUnit's name"
            )
        self._extends = base_name
        return self

    # -- members ----------------------------------------------------------------

    def activator(
        self,
        name: str,
        child: Union[str, ChildRef],
        *type_args: Union[str, DataType],
    ) -> ActivatorBuilder:
        """Add an activator; returns its builder for fluent completion."""
        built = ActivatorBuilder(name, child, *type_args, owner=self.name)
        self._activators.append(built)
        return built

    def extend_activator(self, base_name: str) -> ExtensionBuilder:
        """Extend an inherited activator (filter + extra handlers)."""
        built = ExtensionBuilder(base_name, owner=self.name)
        self._extensions.append(built)
        return built

    # -- build ------------------------------------------------------------------

    def _merge(self, kind: str, tables: Sequence[TableSchema]) -> Schema:
        schema = Schema()
        for declared in tables:
            try:
                schema.add(declared)
            except ReproError as exc:
                raise BuilderError(f"AUnit {self.name!r} ({kind} schema): {exc}") from exc
        return schema

    def build(self) -> AUnitDecl:
        input_schema = self._merge("input", self._input)
        output_schema = self._merge("output", self._output)
        inout_names: List[str] = []
        # ``inout`` expands exactly the way the parser expands it: the tables
        # appear in both input and output, and their names are recorded.
        for declared in self._inout:
            try:
                input_schema.add(declared)
                output_schema.add(declared)
            except ReproError as exc:
                raise BuilderError(f"AUnit {self.name!r} (inout schema): {exc}") from exc
            inout_names.append(declared.name)
        seen = set()
        for activator in self._activators:
            if activator.name in seen:
                raise BuilderError(
                    f"AUnit {self.name!r}: duplicate activator {activator.name!r}"
                )
            seen.add(activator.name)
        return AUnitDecl(
            name=self.name,
            input_schema=input_schema,
            output_schema=output_schema,
            inout_tables=tuple(inout_names),
            persist_schema=self._merge("persist", self._persist),
            persist_query=list(self._persist_query),
            local_schema=self._merge("local", self._local),
            local_query=list(self._local_query),
            activators=[activator.build() for activator in self._activators],
            extends=self._extends,
            activator_extensions=[extension.build() for extension in self._extensions],
            is_root=self.is_root,
            synchronized=self._synchronized,
        )


def aunit(name: str, root: bool = False, extends: Optional[str] = None) -> AUnitBuilder:
    """Start declaring a User-Defined AUnit."""
    return AUnitBuilder(name, root=root, extends=extends)


# ---------------------------------------------------------------------------
# The application builder
# ---------------------------------------------------------------------------


class AppBuilder:
    """Collects AUnits and PUnits into a resolvable Hilda program.

    ``build()`` hands the assembled :class:`ProgramDecl` to the same
    :func:`~repro.hilda.program.resolve_declaration` pipeline the text
    parser feeds, so the result is a first-class
    :class:`~repro.hilda.program.HildaProgram`.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name
        self._aunits: List[AUnitBuilder] = []
        self._punits: List[PUnitDecl] = []
        self._root: Optional[str] = None

    # -- declaring --------------------------------------------------------------

    def aunit(
        self, name: str, root: bool = False, extends: Optional[str] = None
    ) -> AUnitBuilder:
        """Declare an AUnit in place; returns its builder."""
        built = AUnitBuilder(name, root=root, extends=extends)
        return self._register(built)

    def add(self, *units: Union[AUnitBuilder, PUnitDecl]) -> "AppBuilder":
        """Attach already-built :func:`aunit` / :func:`punit` declarations."""
        for unit in units:
            if isinstance(unit, AUnitBuilder):
                self._register(unit)
            elif isinstance(unit, PUnitDecl):
                self._punits.append(unit)
            else:
                raise BuilderError(
                    f"AppBuilder.add() takes aunit(...) builders and punit(...) "
                    f"declarations, got {unit!r}"
                )
        return self

    def punit(self, name: str, for_aunit: str, template: str) -> "AppBuilder":
        """Declare a Presentation Unit for an AUnit."""
        self._punits.append(punit(name, for_aunit, template))
        return self

    def root(self, name: str) -> "AppBuilder":
        """Designate the root AUnit by name (alternative to ``root=True``)."""
        if not isinstance(name, str) or not name:
            raise BuilderError("AppBuilder.root() needs the root AUnit's name")
        self._root = name
        return self

    def _register(self, built: AUnitBuilder) -> AUnitBuilder:
        if any(existing.name == built.name for existing in self._aunits):
            raise BuilderError(f"duplicate AUnit {built.name!r} in the application")
        self._aunits.append(built)
        return built

    # -- building ---------------------------------------------------------------

    def declaration(self) -> ProgramDecl:
        """The unresolved :class:`ProgramDecl`, exactly as a parse would yield."""
        declaration = ProgramDecl()
        for builder in self._aunits:
            decl = builder.build()
            if decl.is_root:
                if declaration.root_name is not None and declaration.root_name != decl.name:
                    raise BuilderError(
                        f"multiple root AUnits: {declaration.root_name!r} and {decl.name!r}"
                    )
                declaration.root_name = decl.name
            declaration.aunits.append(decl)
        if self._root is not None:
            if declaration.root_name is not None and declaration.root_name != self._root:
                raise BuilderError(
                    f"multiple root AUnits: {declaration.root_name!r} and {self._root!r}"
                )
            declaration.root_name = self._root
        declaration.punits.extend(self._punits)
        return declaration

    def build(self, validate: bool = True) -> HildaProgram:
        """Resolve (flatten inheritance, designate the root) and validate."""
        return resolve_declaration(
            self.declaration(),
            root=self._root,
            validate=validate,
            source=None,
        )
