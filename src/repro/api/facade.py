"""The unified entry point: from *any* program description to a served app.

:func:`build_program`, :func:`build_app` and :func:`serve` accept a Hilda
program in every form the library understands — Hilda source text, an
:class:`~repro.api.builder.AppBuilder`, an unresolved
:class:`~repro.hilda.ast.ProgramDecl`, or an already-resolved
:class:`~repro.hilda.program.HildaProgram` — and take the typed
configuration objects of :mod:`repro.config` instead of keyword sprawl::

    from repro.api import build_app, serve, EngineConfig, ServerConfig

    app = build_app(GUESTBOOK_SOURCE, engine_config=EngineConfig(auto_index=True))
    serve(app, ServerConfig(port=8080, verbose=True))

Errors raised here are always :class:`repro.errors.ReproError` subclasses
(``BuilderError`` for unusable inputs, ``ConfigError`` for bad configs,
the language's own errors for invalid programs) — never bare
``ValueError``/``KeyError`` — which ``tests/api/test_facade_errors.py``
sweeps for.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.api.builder import AppBuilder
from repro.config import CacheConfig, EngineConfig, ServerConfig, SessionConfig
from repro.errors import BuilderError
from repro.hilda.ast import ProgramDecl
from repro.hilda.program import HildaProgram, load_program, resolve_declaration

__all__ = ["ProgramSource", "build_app", "build_program", "serve"]

#: Everything :func:`build_program` accepts.
ProgramSource = Union[str, AppBuilder, ProgramDecl, HildaProgram]


def build_program(
    source: ProgramSource,
    root: Optional[str] = None,
    validate: bool = True,
) -> HildaProgram:
    """Resolve any program description into a :class:`HildaProgram`.

    * ``str`` — Hilda source text, parsed with the language front end;
    * :class:`AppBuilder` — a Python-authored program, built in place;
    * :class:`ProgramDecl` — an unresolved declaration (e.g. an AST you
      constructed or transformed yourself);
    * :class:`HildaProgram` — returned as-is (``root``/``validate`` must
      then be left at their defaults, since the program is already
      resolved).
    """
    if isinstance(source, HildaProgram):
        if root is not None:
            raise BuilderError(
                "build_program(): cannot re-root an already-resolved HildaProgram; "
                "pass the source text or builder instead"
            )
        return source
    if isinstance(source, AppBuilder):
        program_root = root if root is not None else source._root
        return resolve_declaration(source.declaration(), root=program_root, validate=validate)
    if isinstance(source, ProgramDecl):
        return resolve_declaration(source, root=root, validate=validate)
    if isinstance(source, str):
        return load_program(source, root=root, validate=validate)
    raise BuilderError(
        "build_program() takes Hilda source text, an AppBuilder, a ProgramDecl "
        f"or a HildaProgram, got {type(source).__name__}"
    )


def build_app(
    source: ProgramSource,
    *,
    engine: Optional[Any] = None,
    engine_config: Optional[EngineConfig] = None,
    cache: Optional[CacheConfig] = None,
    sessions: Optional[SessionConfig] = None,
    functions: Optional[Any] = None,
    root: Optional[str] = None,
    validate: bool = True,
):
    """Build the three-tier web application for any program description.

    Returns a ready-to-serve
    :class:`~repro.web.container.HildaApplication`: engine, page renderer
    and cookie-session manager wired together under the given typed
    configs (``cache`` defaults to the server policy — activation-query
    and fragment caching on, dependency-tracked invalidation).
    """
    from repro.web.container import HildaApplication

    program = build_program(source, root=root, validate=validate)
    return HildaApplication(
        program,
        engine=engine,
        config=engine_config,
        cache=cache,
        sessions=sessions,
        functions=functions,
    )


def serve(
    source: Union[ProgramSource, Any],
    config: Optional[ServerConfig] = None,
    **build_options: Any,
) -> None:
    """Serve any program description (or a built application) over HTTP.

    Blocks the calling thread (Ctrl-C to stop).  ``config`` defaults to
    :meth:`ServerConfig.foreground` — port 8080 with request logging; for
    an embedded/ephemeral server construct
    :class:`~repro.web.server.ThreadedHildaServer` directly.
    ``build_options`` are forwarded to :func:`build_app` when ``source``
    is not already a :class:`~repro.web.container.HildaApplication`.

    A ``config`` whose :class:`~repro.config.ClusterConfig` selects the
    ``fork`` process model serves the program from N shard worker processes
    behind a session-affinity router instead of one in-process engine
    (``docs/cluster.md``); ``source`` must then be a program description —
    workers build their own engines after forking, so an already-built
    application cannot be mounted.
    """
    from repro.web.container import HildaApplication
    from repro.web.server import serve as _serve

    resolved = config if config is not None else ServerConfig.foreground()
    cluster = resolved.cluster
    if cluster is not None and cluster.process_model == "fork":
        _serve_cluster(source, resolved, build_options)
        return
    if isinstance(source, HildaApplication):
        if build_options:
            raise BuilderError(
                "serve(): build options are meaningless for an already-built "
                f"application: {sorted(build_options)}"
            )
        application = source
    else:
        application = build_app(source, **build_options)
    _serve(application, config=resolved)


def _serve_cluster(
    source: Union[ProgramSource, Any], config: ServerConfig, build_options: Any
) -> None:
    """Foreground fork-model cluster serving (the ``serve(cluster=...)`` path)."""
    from repro.cluster.server import ClusterServer
    from repro.web.container import HildaApplication

    if isinstance(source, HildaApplication):
        raise BuilderError(
            "serve(): a fork-model cluster builds one engine per worker "
            "process; pass the program description, not a built application"
        )
    unsupported = set(build_options) - {"engine_config", "cache", "sessions", "root", "validate"}
    if unsupported:
        raise BuilderError(
            "serve(): cluster mode supports engine_config/cache/sessions/"
            f"root/validate build options only, got {sorted(unsupported)}"
        )
    program = build_program(
        source,
        root=build_options.get("root"),
        validate=build_options.get("validate", True),
    )
    server = ClusterServer(
        program,
        cluster=config.cluster,
        server_config=config,
        engine_config=build_options.get("engine_config"),
        cache=build_options.get("cache"),
        sessions=build_options.get("sessions"),
    )
    print(
        f"Serving {program.root_name} on a {config.cluster.workers}-worker cluster"
    )
    server.serve_forever()
