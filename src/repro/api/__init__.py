"""``repro.api`` — Hilda as a library: authoring DSL, typed configs, facade.

This package is the recommended entry point to the reproduction (see
``docs/api.md``).  It bundles three things:

* the **fluent builder DSL** (:mod:`repro.api.builder`) — author a Hilda
  application in plain Python (:class:`AppBuilder`, :func:`aunit`,
  :func:`table`, :func:`handler`, ...) and get the very same AST the text
  parser produces;
* the **typed configuration objects** (:mod:`repro.config`) —
  :class:`EngineConfig`, :class:`CacheConfig`, :class:`StorageConfig`,
  :class:`SessionConfig`, :class:`ServerConfig` replace the keyword sprawl
  of the runtime constructors (old kwargs still work, with a one-time
  ``DeprecationWarning`` each);
* the **facade** (:mod:`repro.api.facade`) — :func:`build_program`,
  :func:`build_app` and :func:`serve` accept source text, a builder, a
  declaration or a resolved program interchangeably.

The public surface below is snapshot-checked by
``tools/check_api_surface.py`` against ``tools/api_surface.json``.
"""

from repro.api.builder import (
    ActivatorBuilder,
    AppBuilder,
    AUnitBuilder,
    ExtensionBuilder,
    HandlerBuilder,
    assign,
    aunit,
    child_ref,
    condition,
    handler,
    punit,
    query,
    return_handler,
    table,
)
from repro.api.facade import ProgramSource, build_app, build_program, serve
from repro.config import (
    CacheConfig,
    ClusterConfig,
    EngineConfig,
    OptimizerConfig,
    ServerConfig,
    SessionConfig,
    StorageConfig,
    reset_deprecation_warnings,
)
from repro.errors import BuilderError, ConfigError, ReproError
from repro.hilda.program import HildaProgram, load_program

__all__ = [
    "ActivatorBuilder",
    "AppBuilder",
    "AUnitBuilder",
    "BuilderError",
    "CacheConfig",
    "ClusterConfig",
    "ConfigError",
    "EngineConfig",
    "ExtensionBuilder",
    "HandlerBuilder",
    "HildaProgram",
    "OptimizerConfig",
    "ProgramSource",
    "ReproError",
    "ServerConfig",
    "SessionConfig",
    "StorageConfig",
    "assign",
    "aunit",
    "build_app",
    "build_program",
    "child_ref",
    "condition",
    "handler",
    "load_program",
    "punit",
    "query",
    "reset_deprecation_warnings",
    "return_handler",
    "serve",
    "table",
]
