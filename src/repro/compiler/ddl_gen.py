"""DDL generation for Hilda programs (Figure 14, left output of the compiler).

The generated scripts create one relational table per persistent-schema and
local-schema table of every reachable AUnit, named ``<AUnit>_<table>``.
Persistent tables hold shared application state; local tables hold
per-instance state keyed by an extra ``hilda_instance_id`` column, which is
how the paper's generated code stores local schemas "in the database"
(Section 6.1).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hilda.program import HildaProgram
from repro.relational.ddl import create_schema_script, create_table_statement, drop_schema_script
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType

__all__ = ["generate_ddl", "generate_drop_script", "physical_table_schemas"]


def physical_table_schemas(program: HildaProgram) -> List[TableSchema]:
    """The physical table schemas the generated application needs."""
    schemas: List[TableSchema] = []
    for aunit in program.reachable_aunits():
        for table in aunit.persist_schema:
            schemas.append(table.renamed(f"{aunit.name}_{table.name}"))
        for table in aunit.local_schema:
            columns = (Column("hilda_instance_id", DataType.INT),) + table.columns
            schemas.append(TableSchema(f"{aunit.name}_local_{table.name}", columns))
    return schemas


def generate_ddl(program: HildaProgram) -> str:
    """The CREATE TABLE script for a program."""
    header = (
        f"Hilda-generated schema for program rooted at {program.root_name}\n"
        "persistent tables: <AUnit>_<table>; local tables: <AUnit>_local_<table> "
        "(keyed by hilda_instance_id)"
    )
    return create_schema_script(physical_table_schemas(program), header=header)


def generate_drop_script(program: HildaProgram) -> str:
    """The DROP TABLE script (teardown) for a program."""
    return drop_schema_script(physical_table_schemas(program))
