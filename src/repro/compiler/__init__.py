"""The Hilda compiler (Figure 14): DDL scripts + generated servlet module,
plus the cross-layer optimization analyses of Section 6.2
(``docs/architecture.md`` § "repro.compiler")."""

from repro.compiler.artifacts import CompiledApplication, compile_program, compile_source
from repro.compiler.codegen import generate_module, servlet_class_name
from repro.compiler.ddl_gen import generate_ddl, generate_drop_script, physical_table_schemas
from repro.compiler.partitioning import (
    ConditionPlacement,
    PartitioningReport,
    PartitioningSimulator,
    analyse_program,
)

__all__ = [
    "CompiledApplication",
    "ConditionPlacement",
    "PartitioningReport",
    "PartitioningSimulator",
    "analyse_program",
    "compile_program",
    "compile_source",
    "generate_ddl",
    "generate_drop_script",
    "generate_module",
    "physical_table_schemas",
    "servlet_class_name",
]
