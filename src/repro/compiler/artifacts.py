"""Compilation artifacts: what the Hilda compiler produces (Figure 14).

:func:`compile_program` bundles the two outputs of the paper's compiler —
database creation scripts and application-server code — into a
:class:`CompiledApplication` that can be written to disk, imported, and run.
"""

from __future__ import annotations

import importlib.util
import sys
import types
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.compiler.codegen import generate_module
from repro.compiler.ddl_gen import generate_ddl, generate_drop_script
from repro.errors import CompilerError
from repro.hilda.program import HildaProgram, load_program

__all__ = ["CompiledApplication", "compile_program", "compile_source"]


@dataclass
class CompiledApplication:
    """The output of compiling one Hilda program."""

    program: HildaProgram
    ddl_script: str
    drop_script: str
    module_source: str
    module_name: str = "hilda_generated_app"

    # -- files ------------------------------------------------------------------

    def artifact_files(self) -> Dict[str, str]:
        """File name -> contents for every artifact."""
        return {
            "schema.sql": self.ddl_script,
            "drop_schema.sql": self.drop_script,
            f"{self.module_name}.py": self.module_source,
        }

    def write_to(self, directory: Union[str, Path]) -> Dict[str, Path]:
        """Write every artifact into ``directory``; returns the paths written."""
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        written: Dict[str, Path] = {}
        for name, contents in self.artifact_files().items():
            path = target / name
            path.write_text(contents, encoding="utf-8")
            written[name] = path
        return written

    # -- loading --------------------------------------------------------------------

    def load_module(self) -> types.ModuleType:
        """Import the generated servlet module (from its source, in memory)."""
        module = types.ModuleType(self.module_name)
        module.__dict__["__name__"] = self.module_name
        try:
            exec(compile(self.module_source, f"<generated {self.module_name}>", "exec"), module.__dict__)
        except Exception as exc:
            raise CompilerError(f"generated module failed to import: {exc}") from exc
        return module

    def build_application(self, **options):
        """Convenience: import the generated module and build its web application."""
        module = self.load_module()
        return module.build_application(**options)

    def build_engine(self, **options):
        """Convenience: import the generated module and build its engine."""
        module = self.load_module()
        return module.build_engine(**options)

    # -- metrics -----------------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Simple size metrics used by the compiler benchmark and EXPERIMENTS.md."""
        class_definitions = [
            line for line in self.module_source.splitlines() if line.startswith("class ")
        ]
        return {
            "aunits": len(self.program.reachable_aunits()),
            "ddl_statements": self.ddl_script.count("CREATE TABLE"),
            "module_lines": self.module_source.count("\n") + 1,
            # Exclude the shared HildaServlet base class.
            "servlet_classes": len(class_definitions) - 1,
        }


def compile_program(
    program: HildaProgram, module_name: str = "hilda_generated_app"
) -> CompiledApplication:
    """Compile a resolved Hilda program into its artifacts.

    Works for programs from either front end: text-loaded programs embed
    their original source in the generated module, Python-authored ones
    (the :mod:`repro.api` builder) embed an unparsed equivalent (see
    :mod:`repro.hilda.unparse`).
    """
    return CompiledApplication(
        program=program,
        ddl_script=generate_ddl(program),
        drop_script=generate_drop_script(program),
        module_source=generate_module(program),
        module_name=module_name,
    )


def compile_source(
    source: str, root: Optional[str] = None, module_name: str = "hilda_generated_app"
) -> CompiledApplication:
    """Parse, validate and compile a Hilda program from source text."""
    program = load_program(source, root=root)
    return compile_program(program, module_name=module_name)
