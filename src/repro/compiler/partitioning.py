"""Client/server code partitioning analysis (Section 6.2).

The paper observes that because Hilda programs are declarative, the compiler
can decide *where* to evaluate pieces of application logic.  The example
given is assignment creation: the release-date/due-date check touches only
the CreateAssignment instance's local state and the user's input, so it can
be evaluated in the browser, saving a server round trip whenever the check
fails.

:func:`analyse_program` classifies every handler condition as client-side
eligible (it reads only local tables, the child's output and the
``activationTuple``) or server-side required (it reads persistent or input
tables, which only the server has).  :class:`PartitioningSimulator` then
estimates the latency effect of the partitioning under a simple network
model, which the E12 benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hilda.ast import AUnitDecl, HandlerDecl, QueryBlock
from repro.hilda.program import HildaProgram

__all__ = [
    "ConditionPlacement",
    "PartitioningReport",
    "analyse_program",
    "PartitioningSimulator",
]


@dataclass
class ConditionPlacement:
    """Where one handler condition can be evaluated."""

    aunit: str
    activator: str
    handler: str
    client_side: bool
    referenced_tables: Tuple[str, ...]
    reason: str


@dataclass
class PartitioningReport:
    """The classification of every handler condition in a program."""

    placements: List[ConditionPlacement] = field(default_factory=list)

    @property
    def client_side(self) -> List[ConditionPlacement]:
        return [placement for placement in self.placements if placement.client_side]

    @property
    def server_side(self) -> List[ConditionPlacement]:
        return [placement for placement in self.placements if not placement.client_side]

    def summary(self) -> Dict[str, int]:
        return {
            "conditions": len(self.placements),
            "client_side": len(self.client_side),
            "server_side": len(self.server_side),
        }


def analyse_program(program: HildaProgram) -> PartitioningReport:
    """Classify every handler condition of every reachable AUnit."""
    report = PartitioningReport()
    for aunit in program.reachable_aunits():
        local_names = set(aunit.local_schema.table_names)
        persist_names = set(aunit.persist_schema.table_names)
        input_names = set(aunit.input_schema.table_names)
        for activator in aunit.activators:
            child_names = {activator.child.name}
            for handler in activator.handlers:
                if handler.condition is None:
                    continue
                placement = _classify_condition(
                    aunit.name,
                    activator.name,
                    handler,
                    handler.condition,
                    local_names=local_names,
                    persist_names=persist_names,
                    input_names=input_names,
                    child_names=child_names,
                )
                report.placements.append(placement)
    return report


def _classify_condition(
    aunit_name: str,
    activator_name: str,
    handler: HandlerDecl,
    condition: QueryBlock,
    local_names: Set[str],
    persist_names: Set[str],
    input_names: Set[str],
    child_names: Set[str],
) -> ConditionPlacement:
    referenced = tuple(sorted(set(condition.query.referenced_tables())))
    blocking: List[str] = []
    for table in referenced:
        base = table.split(".")[0]
        if table in local_names or base in local_names:
            continue
        if base in child_names or table == "activationTuple":
            continue
        if table.startswith("in.") or table in input_names or base in input_names:
            # Input tables were shipped to the client when the page was built,
            # so checks over them can also run client-side.
            continue
        if table in persist_names or base in persist_names:
            blocking.append(f"{table} is persistent (server only)")
        else:
            blocking.append(f"{table} is not available on the client")
    client_side = not blocking
    reason = (
        "reads only local/client-visible tables"
        if client_side
        else "; ".join(blocking)
    )
    return ConditionPlacement(
        aunit=aunit_name,
        activator=activator_name,
        handler=handler.name,
        client_side=client_side,
        referenced_tables=referenced,
        reason=reason,
    )


class PartitioningSimulator:
    """Estimate request latency with and without client-side validation.

    Model: every user attempt either passes validation (probability
    ``1 - invalid_rate``) or fails it.  A server round trip costs
    ``network_latency_ms`` plus ``server_cost_ms``; a client-side check costs
    ``client_cost_ms``.  Without partitioning every attempt is a round trip;
    with partitioning, failed attempts are caught in the browser and only
    passing attempts reach the server.
    """

    def __init__(
        self,
        network_latency_ms: float = 40.0,
        server_cost_ms: float = 5.0,
        client_cost_ms: float = 0.5,
    ) -> None:
        self.network_latency_ms = network_latency_ms
        self.server_cost_ms = server_cost_ms
        self.client_cost_ms = client_cost_ms

    def simulate(
        self, attempts: int, invalid_rate: float, client_side: bool
    ) -> Dict[str, float]:
        invalid = int(round(attempts * invalid_rate))
        valid = attempts - invalid
        if client_side:
            round_trips = valid
            total_ms = (
                attempts * self.client_cost_ms
                + valid * (self.network_latency_ms + self.server_cost_ms)
            )
        else:
            round_trips = attempts
            total_ms = attempts * (self.network_latency_ms + self.server_cost_ms)
        return {
            "attempts": float(attempts),
            "round_trips": float(round_trips),
            "total_ms": total_ms,
            "mean_ms_per_attempt": total_ms / attempts if attempts else 0.0,
        }
