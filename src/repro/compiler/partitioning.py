"""Client/server code partitioning analysis (Section 6.2).

The paper observes that because Hilda programs are declarative, the compiler
can decide *where* to evaluate pieces of application logic.  The example
given is assignment creation: the release-date/due-date check touches only
the CreateAssignment instance's local state and the user's input, so it can
be evaluated in the browser, saving a server round trip whenever the check
fails.

:func:`analyse_program` classifies every handler condition as client-side
eligible (it reads only local tables, the child's output and the
``activationTuple``) or server-side required (it reads persistent or input
tables, which only the server has).  :class:`PartitioningSimulator` then
estimates the latency effect of the partitioning under a simple network
model, which the E12 benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.hilda.ast import Assignment, AUnitDecl, HandlerDecl, QueryBlock
from repro.hilda.program import HildaProgram
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Query,
    SelectItem,
    SelectQuery,
    TableRef,
    UnionQuery,
)

__all__ = [
    "ConditionPlacement",
    "PartitioningReport",
    "analyse_program",
    "PartitioningSimulator",
    "TablePlacement",
    "TablePlacementReport",
    "analyse_table_placements",
    "select_is_affine",
]


@dataclass
class ConditionPlacement:
    """Where one handler condition can be evaluated."""

    aunit: str
    activator: str
    handler: str
    client_side: bool
    referenced_tables: Tuple[str, ...]
    reason: str


@dataclass
class PartitioningReport:
    """The classification of every handler condition in a program."""

    placements: List[ConditionPlacement] = field(default_factory=list)

    @property
    def client_side(self) -> List[ConditionPlacement]:
        return [placement for placement in self.placements if placement.client_side]

    @property
    def server_side(self) -> List[ConditionPlacement]:
        return [placement for placement in self.placements if not placement.client_side]

    def summary(self) -> Dict[str, int]:
        return {
            "conditions": len(self.placements),
            "client_side": len(self.client_side),
            "server_side": len(self.server_side),
        }


def analyse_program(program: HildaProgram) -> PartitioningReport:
    """Classify every handler condition of every reachable AUnit."""
    report = PartitioningReport()
    for aunit in program.reachable_aunits():
        local_names = set(aunit.local_schema.table_names)
        persist_names = set(aunit.persist_schema.table_names)
        input_names = set(aunit.input_schema.table_names)
        for activator in aunit.activators:
            child_names = {activator.child.name}
            for handler in activator.handlers:
                if handler.condition is None:
                    continue
                placement = _classify_condition(
                    aunit.name,
                    activator.name,
                    handler,
                    handler.condition,
                    local_names=local_names,
                    persist_names=persist_names,
                    input_names=input_names,
                    child_names=child_names,
                )
                report.placements.append(placement)
    return report


def _classify_condition(
    aunit_name: str,
    activator_name: str,
    handler: HandlerDecl,
    condition: QueryBlock,
    local_names: Set[str],
    persist_names: Set[str],
    input_names: Set[str],
    child_names: Set[str],
) -> ConditionPlacement:
    referenced = tuple(sorted(set(condition.query.referenced_tables())))
    blocking: List[str] = []
    for table in referenced:
        base = table.split(".")[0]
        if table in local_names or base in local_names:
            continue
        if base in child_names or table == "activationTuple":
            continue
        if table.startswith("in.") or table in input_names or base in input_names:
            # Input tables were shipped to the client when the page was built,
            # so checks over them can also run client-side.
            continue
        if table in persist_names or base in persist_names:
            blocking.append(f"{table} is persistent (server only)")
        else:
            blocking.append(f"{table} is not available on the client")
    client_side = not blocking
    reason = (
        "reads only local/client-visible tables"
        if client_side
        else "; ".join(blocking)
    )
    return ConditionPlacement(
        aunit=aunit_name,
        activator=activator_name,
        handler=handler.name,
        client_side=client_side,
        referenced_tables=referenced,
        reason=reason,
    )


# ---------------------------------------------------------------------------
# Shard-placement analysis (docs/cluster.md)
# ---------------------------------------------------------------------------
#
# The same observation that lets handler conditions move to the *client*
# lets persistent tables move to the *shard* owning a session: a table whose
# every read is constrained by ``T.kc = <root input column>`` and whose
# every write preserves that key column is session-affine — each worker can
# hold exactly the rows whose key hashes to it.  Everything else is
# replicated (the safe default), and reads that reach beyond one shard are
# scatter-gathered at run time.


@dataclass
class TablePlacement:
    """Where one persistent table's rows live in a sharded deployment."""

    table: str
    #: ``"partitioned"`` (rows split by key hash) or ``"replicated"``.
    mode: str
    #: The partitioning column (None when replicated).
    key_column: Optional[str]
    reason: str

    @property
    def partitioned(self) -> bool:
        return self.mode == "partitioned"


@dataclass
class TablePlacementReport:
    """The shard placement of every persistent table of a program."""

    placements: Dict[str, TablePlacement] = field(default_factory=dict)
    #: The root AUnit's input table names — the session-affinity sources
    #: equality predicates are matched against.
    input_tables: Tuple[str, ...] = ()

    @property
    def partitioned(self) -> Dict[str, str]:
        """table -> key column, for every partitioned table."""
        return {
            name: placement.key_column
            for name, placement in self.placements.items()
            if placement.partitioned
        }

    @property
    def replicated(self) -> List[str]:
        return sorted(
            name for name, placement in self.placements.items() if not placement.partitioned
        )

    def summary(self) -> Dict[str, int]:
        return {
            "tables": len(self.placements),
            "partitioned": len(self.partitioned),
            "replicated": len(self.replicated),
        }


def analyse_table_placements(
    program: HildaProgram,
    overrides: Optional[Mapping[str, str]] = None,
) -> TablePlacementReport:
    """Classify every persistent table as partitioned or replicated.

    A root-AUnit table is *partitioned* on column ``kc`` when some program
    query constrains it with ``T.kc = <root input column>`` (the session-
    affinity witness) and every handler action targeting it is
    partition-preserving: each SELECT arm's value at the key position is
    either the table's own key column (rows stay put) or a root-input
    column (new rows carry the acting session's key).  Anything else —
    including every non-root persist table — is *replicated*.

    ``overrides`` maps table names to key columns and wins over the
    analysis (the ``ClusterConfig.partition`` escape hatch).
    """
    root = program.root
    input_names = tuple(root.input_schema.table_names)
    overrides = dict(overrides or {})
    queries = list(_program_queries(program))
    actions = [
        assignment
        for aunit in program.reachable_aunits()
        for activator in aunit.activators
        for handler in activator.handlers
        for assignment in handler.actions
    ]
    report = TablePlacementReport(input_tables=input_names)

    for aunit in program.reachable_aunits():
        for schema in aunit.persist_schema:
            name = schema.name
            if name in report.placements:
                continue
            columns = list(schema.column_names)
            if name in overrides:
                key_column = overrides[name]
                if key_column not in columns:
                    from repro.errors import CompilerError

                    raise CompilerError(
                        f"partition override for table {name!r} names unknown "
                        f"column {key_column!r} (has {columns})"
                    )
                report.placements[name] = TablePlacement(
                    name, "partitioned", key_column, "explicit partition override"
                )
                continue
            if aunit.name != root.name:
                report.placements[name] = TablePlacement(
                    name,
                    "replicated",
                    None,
                    f"persists under non-root AUnit {aunit.name!r}",
                )
                continue
            report.placements[name] = _classify_table(
                name, columns, queries, actions, input_names
            )
    return report


def _classify_table(
    table: str,
    columns: List[str],
    queries: List[Query],
    actions: List[Assignment],
    input_names: Tuple[str, ...],
) -> TablePlacement:
    candidates = sorted(_affinity_candidates(table, queries, input_names))
    if not candidates:
        return TablePlacement(
            table,
            "replicated",
            None,
            "no query constrains it by a root input column (no affinity witness)",
        )
    writes = [action for action in actions if action.simple_target == table]
    for key_column in candidates:
        key_pos = columns.index(key_column)
        broken = None
        for action in writes:
            for select in _selects(action.query.query):
                if not _arm_preserves(select, table, key_column, key_pos, input_names):
                    broken = action
                    break
            if broken is not None:
                break
        if broken is None:
            return TablePlacement(
                table,
                "partitioned",
                key_column,
                f"affine reads on {key_column!r}; every write preserves the key",
            )
    return TablePlacement(
        table,
        "replicated",
        None,
        f"affinity witness on {candidates!r} but a write does not preserve the key",
    )


def _affinity_candidates(
    table: str, queries: List[Query], input_names: Tuple[str, ...]
) -> Set[str]:
    """Key columns some query equates with a root input column."""
    candidates: Set[str] = set()
    for query in queries:
        for select in _selects(query):
            bindings = _bindings(select)
            for left, right in _equalities(select):
                for own, other in ((left, right), (right, left)):
                    if (
                        own.qualifier is not None
                        and bindings.get(own.qualifier) == table
                        and other.qualifier is not None
                        and bindings.get(other.qualifier) in input_names
                        and not own.is_positional
                    ):
                        candidates.add(own.name)
    return candidates


def _arm_preserves(
    select: SelectQuery,
    table: str,
    key_column: str,
    key_pos: int,
    input_names: Tuple[str, ...],
) -> bool:
    """Does one SELECT arm writing ``table`` keep rows in their own shard?"""
    if len(select.items) <= key_pos:
        return False
    item = select.items[key_pos]
    if not isinstance(item, SelectItem) or not isinstance(item.expression, ColumnRef):
        return False
    expression = item.expression
    if expression.qualifier is None:
        return False
    bindings = _bindings(select)
    base = bindings.get(expression.qualifier)
    if base == table:
        # Reading the table's own key back: existing rows stay in place.
        if expression.is_positional:
            return expression.position == key_pos + 1
        return expression.name == key_column
    # A root-input column: new rows carry the acting session's key, which
    # hashes to the worker serving that session (the router uses the same
    # hash for session placement and row placement).
    return base in input_names


def select_is_affine(
    select: SelectQuery,
    table: str,
    key_column: str,
    input_names: Tuple[str, ...],
) -> bool:
    """True when every read of ``table`` in this SELECT block is shard-local.

    Each top-level binding of the table must carry a conjunctive equality
    ``binding.key_column = <root input column>``.  References inside
    subqueries (derived tables, EXISTS/IN/scalar subqueries) are not
    analysed and count as non-affine — the safe direction, since the only
    cost of a false negative is an unnecessary scatter.
    """
    bindings = _bindings(select)
    table_bindings = [
        binding for binding, base in bindings.items() if base == table
    ]
    if _deep_references(select, table) > len(table_bindings):
        return False
    if not table_bindings:
        return True
    equalities = list(_equalities(select))
    for binding in table_bindings:
        bound = False
        for left, right in equalities:
            for own, other in ((left, right), (right, left)):
                if (
                    own.qualifier == binding
                    and own.name == key_column
                    and other.qualifier is not None
                    and bindings.get(other.qualifier) in input_names
                ):
                    bound = True
        if not bound:
            return False
    return True


def _selects(query: Query) -> Iterator[SelectQuery]:
    """Every SELECT block of a (possibly UNION) query, left to right."""
    if isinstance(query, UnionQuery):
        yield from _selects(query.left)
        yield from _selects(query.right)
    elif isinstance(query, SelectQuery):
        yield query


def _bindings(select: SelectQuery) -> Dict[str, str]:
    """Top-level base-table bindings of one SELECT: binding name -> table."""
    out: Dict[str, str] = {}

    def visit(item) -> None:
        if isinstance(item, TableRef):
            out[item.binding_name] = item.name
        elif hasattr(item, "left") and hasattr(item, "right"):  # JoinRef
            visit(item.left)
            visit(item.right)

    for item in select.from_items:
        visit(item)
    return out


def _conjuncts(expression) -> Iterator:
    if isinstance(expression, BinaryOp) and expression.operator.upper() == "AND":
        yield from _conjuncts(expression.left)
        yield from _conjuncts(expression.right)
    elif expression is not None:
        yield expression


def _equalities(select: SelectQuery) -> Iterator[Tuple[ColumnRef, ColumnRef]]:
    """Column-to-column equalities in the top-level WHERE/JOIN conjunction."""
    predicates = list(_conjuncts(select.where))
    for item in select.from_items:
        predicates.extend(_join_conditions(item))
    for predicate in predicates:
        if (
            isinstance(predicate, BinaryOp)
            and predicate.operator == "="
            and isinstance(predicate.left, ColumnRef)
            and isinstance(predicate.right, ColumnRef)
        ):
            yield predicate.left, predicate.right


def _join_conditions(item) -> Iterator:
    if hasattr(item, "left") and hasattr(item, "right"):  # JoinRef
        condition = getattr(item, "condition", None)
        if condition is not None and getattr(item, "join_type", "INNER") == "INNER":
            yield from _conjuncts(condition)
        yield from _join_conditions(item.left)
        yield from _join_conditions(item.right)


def _deep_references(select: SelectQuery, table: str) -> int:
    """How often ``table`` is referenced anywhere in one SELECT block,
    including derived tables and expression subqueries."""
    count = select.referenced_tables().count(table)
    for expression in select.expressions():
        count += _expression_references(expression, table)
    return count


def _expression_references(expression, table: str) -> int:
    count = 0
    subquery = getattr(expression, "subquery", None)
    if subquery is not None and not isinstance(subquery, bool):
        for inner in _selects(subquery):
            count += _deep_references(inner, table)
    query = getattr(expression, "query", None)
    if query is not None and isinstance(query, (SelectQuery, UnionQuery)):
        for inner in _selects(query):
            count += _deep_references(inner, table)
    for child in expression.children() if hasattr(expression, "children") else ():
        count += _expression_references(child, table)
    return count


def _program_queries(program: HildaProgram) -> Iterator[Query]:
    """Every SQL query reachable in a program's declarations."""
    for aunit in program.reachable_aunits():
        for assignment in aunit.persist_query:
            yield assignment.query.query
        for assignment in aunit.local_query:
            yield assignment.query.query
        for activator in aunit.activators:
            if activator.activation_query is not None:
                yield activator.activation_query.query
            for filter_block in activator.activation_filters:
                yield filter_block.query
            for assignment in activator.input_query:
                yield assignment.query.query
            for handler in activator.handlers:
                if handler.condition is not None:
                    yield handler.condition.query
                for assignment in handler.actions:
                    yield assignment.query.query


class PartitioningSimulator:
    """Estimate request latency with and without client-side validation.

    Model: every user attempt either passes validation (probability
    ``1 - invalid_rate``) or fails it.  A server round trip costs
    ``network_latency_ms`` plus ``server_cost_ms``; a client-side check costs
    ``client_cost_ms``.  Without partitioning every attempt is a round trip;
    with partitioning, failed attempts are caught in the browser and only
    passing attempts reach the server.
    """

    def __init__(
        self,
        network_latency_ms: float = 40.0,
        server_cost_ms: float = 5.0,
        client_cost_ms: float = 0.5,
    ) -> None:
        self.network_latency_ms = network_latency_ms
        self.server_cost_ms = server_cost_ms
        self.client_cost_ms = client_cost_ms

    def simulate(
        self, attempts: int, invalid_rate: float, client_side: bool
    ) -> Dict[str, float]:
        invalid = int(round(attempts * invalid_rate))
        valid = attempts - invalid
        if client_side:
            round_trips = valid
            total_ms = (
                attempts * self.client_cost_ms
                + valid * (self.network_latency_ms + self.server_cost_ms)
            )
        else:
            round_trips = attempts
            total_ms = attempts * (self.network_latency_ms + self.server_cost_ms)
        return {
            "attempts": float(attempts),
            "round_trips": float(round_trips),
            "total_ms": total_ms,
            "mean_ms_per_attempt": total_ms / attempts if attempts else 0.0,
        }
