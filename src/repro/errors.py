"""Exception hierarchy for the Hilda reproduction.

Every error raised by the library derives from :class:`ReproError` so
applications embedding the library can catch a single base class.  The
sub-hierarchy mirrors the major subsystems (relational substrate, SQL
engine, Hilda language front end, runtime, compiler, web container).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigError(ReproError, ValueError):
    """A typed configuration object (``repro.config``) was built with an
    invalid value, or a legacy keyword argument could not be translated.

    Also a :class:`ValueError` so pre-existing callers that caught
    ``ValueError`` for bad constructor arguments keep working.
    """


# ---------------------------------------------------------------------------
# Relational substrate
# ---------------------------------------------------------------------------


class RelationalError(ReproError):
    """Base class for errors in the relational substrate."""


class SchemaError(RelationalError):
    """A schema definition is invalid (duplicate columns, bad types, ...)."""


class TypeMismatchError(RelationalError):
    """A value does not conform to the declared column type."""


class IntegrityError(RelationalError):
    """A key or arity constraint was violated."""


class UnknownTableError(RelationalError):
    """A referenced table does not exist in the catalog."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown table: {name!r}")
        self.name = name


class UnknownColumnError(RelationalError):
    """A referenced column does not exist in the referenced table."""

    def __init__(self, name: str, table: str | None = None) -> None:
        where = f" in table {table!r}" if table else ""
        super().__init__(f"unknown column: {name!r}{where}")
        self.name = name
        self.table = table


class DuplicateTableError(RelationalError):
    """Attempt to create a table whose name already exists."""

    def __init__(self, name: str) -> None:
        super().__init__(f"table already exists: {name!r}")
        self.name = name


# ---------------------------------------------------------------------------
# SQL engine
# ---------------------------------------------------------------------------


class SQLError(ReproError):
    """Base class for SQL front-end and execution errors."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SQLBindingError(SQLError):
    """Name resolution failed (unknown or ambiguous table/column)."""


class SQLExecutionError(SQLError):
    """A runtime failure while executing a SQL statement."""


# ---------------------------------------------------------------------------
# Hilda language front end
# ---------------------------------------------------------------------------


class HildaError(ReproError):
    """Base class for Hilda language errors."""


class BuilderError(HildaError):
    """The fluent authoring DSL (``repro.api``) was used incorrectly.

    Messages name the AUnit / activator / handler being built so the
    failing call is identifiable without a stack trace.
    """


class HildaSyntaxError(HildaError):
    """The Hilda program text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class HildaValidationError(HildaError):
    """A Hilda program violates a static rule of the language."""


class UnknownAUnitError(HildaError):
    """An activator references an AUnit that is not defined."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown AUnit: {name!r}")
        self.name = name


# ---------------------------------------------------------------------------
# Runtime
# ---------------------------------------------------------------------------


class RuntimeHildaError(ReproError):
    """Base class for Hilda runtime errors."""


class ActivationError(RuntimeHildaError):
    """Activation or reactivation of an AUnit instance failed."""


class HandlerError(RuntimeHildaError):
    """Evaluating a handler condition or action failed."""


class ConflictError(RuntimeHildaError):
    """A user action targets an AUnit instance that is no longer active.

    This is the application-level conflict the paper's Section 3.2.6
    describes: the Basic AUnit instance the user interacted with has been
    deactivated by a concurrent action, so the pending operation must be
    rejected.
    """

    def __init__(self, instance_id: int, message: str | None = None) -> None:
        super().__init__(
            message
            or f"operation rejected: AUnit instance {instance_id} is no longer active"
        )
        self.instance_id = instance_id


class SessionError(RuntimeHildaError):
    """A session identifier is unknown or has been closed."""


# ---------------------------------------------------------------------------
# Durable storage
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for the durable storage subsystem (``repro.storage``)."""


class RecoveryError(StorageError):
    """Crash recovery could not restore a consistent state.

    Raised loudly — a snapshot whose checksum does not match, or recovered
    tables failing :meth:`~repro.relational.table.Table.check_integrity` —
    rather than silently serving wrong rows (see ``docs/storage.md``).
    """


class SimulatedCrash(Exception):
    """A fault injected at a :class:`~repro.storage.wal.CrashPoint`.

    Deliberately *not* a :class:`ReproError`: a simulated power failure is
    not a library error, and must never be swallowed by handlers catching
    the library's exception hierarchy.  Raised only by test harnesses that
    armed a crash point (see ``docs/storage.md``).
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


# ---------------------------------------------------------------------------
# Compiler and web container
# ---------------------------------------------------------------------------


class CompilerError(ReproError):
    """Code generation or compilation of a Hilda program failed."""


class WebError(ReproError):
    """Base class for the web container substrate."""


class RoutingError(WebError):
    """No handler matched the incoming request path."""


class FormDecodingError(WebError):
    """Posted form data could not be decoded into a Basic AUnit action."""


# ---------------------------------------------------------------------------
# Cluster serving
# ---------------------------------------------------------------------------


class ClusterError(ReproError):
    """Base class for the multi-process serving subsystem (``repro.cluster``)."""


class RpcError(ClusterError):
    """A framed RPC request failed: bad frame, codec error, timeout, or the
    remote worker reported an unexpected fault."""


class WorkerUnavailableError(ClusterError):
    """The worker owning a shard cannot be reached (crashed or draining).

    The router maps this to a 503 response with ``Retry-After`` so affine
    sessions can retry once the worker restarts (see docs/cluster.md).
    """

    def __init__(self, worker: int, message: str | None = None) -> None:
        super().__init__(message or f"cluster worker {worker} is unavailable")
        self.worker = worker


class WorkerBusyError(ClusterError):
    """A worker's RPC connection pool is saturated; the worker itself is fine.

    Deliberately *not* a :class:`WorkerUnavailableError`: the router maps
    this to a retryable 503 without marking the worker dead, so the monitor
    never terminates (and restarts) a healthy worker that is merely under
    load — a restart would destroy its in-memory web sessions.  Health
    probes run on a dedicated out-of-pool connection for the same reason.
    """

    def __init__(self, worker: int, message: str | None = None) -> None:
        super().__init__(
            message or f"cluster worker {worker} connection pool is exhausted"
        )
        self.worker = worker
