"""Query-evaluation contexts for AUnit instances.

Every SQL query in a Hilda program runs against the namespace its context
defines (Section 3.2 of the paper):

* activation and local queries see the instance's input, local and
  persistent tables;
* input queries additionally see ``activationTuple`` and the child's input
  tables (qualified as ``Child.table``);
* handler conditions and actions additionally see the returning child's
  output tables (``Child.table``, ``Child.output``) and, for inout tables,
  the ``Child.in.X`` / ``Child.out.X`` views;
* inside an AUnit, an inout table read as a plain name refers to its *input*
  version, ``in.X`` / ``out.X`` select a version explicitly, and assignments
  to the plain name write the *output* version.

This module builds those namespaces as :class:`DictCatalog` objects the SQL
executor can query, and provides the assignment-execution helper shared by
the activation, return and reactivation phases.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, TYPE_CHECKING

from repro.config import EngineConfig
from repro.errors import HandlerError, UnknownTableError
from repro.hilda.ast import Assignment
from repro.relational.database import Catalog
from repro.relational.functions import FunctionRegistry
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.sql.executor import SQLExecutor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.instance import AUnitInstance

__all__ = [
    "DictCatalog",
    "build_read_catalog",
    "child_visible_tables",
    "make_activation_tuple_table",
    "run_assignments",
]


class DictCatalog(Catalog):
    """A catalog backed by a plain name -> Table mapping."""

    def __init__(self, tables: Optional[Dict[str, Table]] = None) -> None:
        self._tables: Dict[str, Table] = dict(tables or {})

    def add(self, name: str, table: Table, overwrite: bool = False) -> None:
        if not overwrite and name in self._tables:
            return
        self._tables[name] = table

    def update(self, tables: Dict[str, Table], overwrite: bool = False) -> None:
        for name, table in tables.items():
            self.add(name, table, overwrite=overwrite)

    def resolve_table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> List[str]:
        return list(self._tables)

    def as_dict(self) -> Dict[str, Table]:
        return dict(self._tables)


def build_read_catalog(
    instance: "AUnitInstance",
    persist_tables: Dict[str, Table],
    activation_tuple: Optional[Table] = None,
    child_tables: Optional[Dict[str, Table]] = None,
    include_output: bool = True,
    output_shadows_input: bool = False,
) -> DictCatalog:
    """The tables readable from queries evaluated in ``instance``'s context.

    ``output_shadows_input`` is set while executing handler actions: there, a
    plain inout table name refers to the *output* version being built (the
    input version stays reachable as ``in.X``), so later assignments of the
    same action can read what earlier ones wrote.  Everywhere else a plain
    inout name refers to the input version.
    """
    catalog = DictCatalog()

    # Local tables shadow nothing (the validator rejects collisions), but
    # register them first so reads inside handlers see the freshest state.
    catalog.update(instance.local_tables)

    # Input tables under their plain names and the in.X view for inout tables.
    for name, table in instance.input_tables.items():
        catalog.add(name, table)
    for name in instance.decl.inout_tables:
        table = instance.input_tables.get(name)
        if table is not None:
            catalog.add(f"in.{name}", table)

    # Output tables (once created by a return handler) are readable both as
    # plain names (later assignments of the same action read earlier ones,
    # e.g. newproblem reads newassign) and as out.X for inout tables.
    if include_output:
        for name, table in instance.output_tables.items():
            catalog.add(name, table, overwrite=output_shadows_input)
            if name in instance.decl.inout_tables:
                catalog.add(f"out.{name}", table, overwrite=True)

    # Persistent tables, shared across instances of this AUnit type.
    catalog.update(persist_tables)

    if activation_tuple is not None:
        catalog.add("activationTuple", activation_tuple, overwrite=True)
    if child_tables:
        catalog.update(child_tables, overwrite=True)
    return catalog


def child_visible_tables(child_ref_name: str, child: "AUnitInstance") -> Dict[str, Table]:
    """The returning child's tables as visible to its parent's handlers."""
    tables: Dict[str, Table] = {}
    for name, table in child.output_tables.items():
        tables[f"{child_ref_name}.{name}"] = table
    for name in child.decl.inout_tables:
        if name in child.input_tables:
            tables[f"{child_ref_name}.in.{name}"] = child.input_tables[name]
        if name in child.output_tables:
            tables[f"{child_ref_name}.out.{name}"] = child.output_tables[name]
    # The child's input tables are also readable qualified (CMSRoot reads
    # CourseAdmin.in.assign; some programs read Child.input for Basic AUnits).
    for name, table in child.input_tables.items():
        tables.setdefault(f"{child_ref_name}.{name}", table)
    return tables


def make_activation_tuple_table(schema: TableSchema, values) -> Table:
    """A one-row table named ``activationTuple`` holding an activation tuple."""
    table = Table(schema.renamed("activationTuple"))
    table.insert(values)
    return table


def run_assignments(
    assignments: Iterable[Assignment],
    catalog: Catalog,
    functions: FunctionRegistry,
    resolve_target,
    optimize: bool = True,
    location: str = "",
    executor_factory=None,
    read_tracker=None,
) -> List[str]:
    """Execute a list of assignments sequentially.

    ``resolve_target`` maps an :class:`Assignment` to the :class:`Table` it
    writes.  Each query is fully materialised before its target is replaced,
    so an assignment may read the previous contents of the table it writes
    (``problem :- SELECT ... FROM problem UNION ...``).

    ``executor_factory`` (catalog -> :class:`SQLExecutor`) lets the engine
    supply executors wired to its shared parse/plan/compile caches and
    indexing policy.  When given, it fully determines the executor and the
    ``functions`` / ``optimize`` arguments are unused; otherwise a
    standalone executor is built from them.

    ``read_tracker``, when given, is a mutable set that collects the table
    read set of every executed query (the dependency footprint the runtime
    records for delta reactivation; see ``docs/caching.md``).

    Returns the list of written table names (as given in the assignments).
    """
    if executor_factory is not None:
        executor = executor_factory(catalog)
    else:
        executor = SQLExecutor(
            catalog, functions=functions, config=EngineConfig(optimize=optimize)
        )
    written: List[str] = []
    for assignment in assignments:
        target = resolve_target(assignment)
        if target is None:
            raise HandlerError(
                f"{location}: assignment target {assignment.target!r} is not writable here"
            )
        if read_tracker is not None:
            read_tracker |= executor.read_set(assignment.query.query)
        relation = executor.execute_query(assignment.query.query)
        try:
            target.replace(relation.rows)
        except Exception as exc:
            raise HandlerError(
                f"{location}: assignment to {assignment.target!r} failed: {exc}"
            ) from exc
        written.append(assignment.target)
    return written
