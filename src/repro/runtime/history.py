"""Execution histories and the Section 5 correctness criterion.

Section 5 of the paper defines the semantics of concurrent Hilda execution
through *execution histories*: a sequence of (state, operation-set) pairs
with a partial order on operations.  A history is *correct* when there is a
sequential ordering of the requested operations such that each operation was
``allowable`` (its Basic AUnit instance still active) in the state it was
applied to, the ordering respects the partial order, and each state is the
result of applying the chosen operation to the previous state.

The runtime applies operations one at a time, so the history it produces is
correct by construction; the :class:`HistoryChecker` verifies that property
after the fact and is used by the property-based tests and by the
concurrency benchmarks to validate simulated interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.runtime.operations import ApplyResult, Operation, OperationStatus

__all__ = ["HistoryEntry", "ExecutionHistory", "HistoryChecker"]


@dataclass
class HistoryEntry:
    """One applied (or rejected) operation together with the observable state.

    ``active_ids_before`` is the set of active Basic AUnit instance IDs just
    before the operation was applied — the ``allowable`` relation of
    Definition 9 reduces to membership in this set.
    """

    operation: Operation
    status: str
    active_ids_before: Set[int]
    state_version_before: int
    state_version_after: int
    forest_size_after: int


class ExecutionHistory:
    """A log of all operations applied by an engine."""

    def __init__(self) -> None:
        self.entries: List[HistoryEntry] = []

    def record(
        self,
        operation: Operation,
        result: ApplyResult,
        active_ids_before: Set[int],
        state_version_before: int,
        state_version_after: int,
        forest_size_after: int,
    ) -> HistoryEntry:
        entry = HistoryEntry(
            operation=operation,
            status=result.status,
            active_ids_before=set(active_ids_before),
            state_version_before=state_version_before,
            state_version_after=state_version_after,
            forest_size_after=forest_size_after,
        )
        self.entries.append(entry)
        return entry

    # -- views ---------------------------------------------------------------------

    def applied(self) -> List[HistoryEntry]:
        return [entry for entry in self.entries if entry.status == OperationStatus.APPLIED]

    def conflicts(self) -> List[HistoryEntry]:
        return [entry for entry in self.entries if entry.status == OperationStatus.CONFLICT]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)


class HistoryChecker:
    """Checks an execution history against the Section 5 correctness criterion."""

    def __init__(self, history: ExecutionHistory) -> None:
        self.history = history
        self.violations: List[str] = []

    def check(self) -> bool:
        """True when the history satisfies the correctness criterion."""
        self.violations = []
        previous_version: Optional[int] = None
        for index, entry in enumerate(self.history.entries):
            operation = entry.operation

            # Allowability: an applied operation's instance must have been
            # active in the state it was applied to (Definition 9/11).
            if entry.status == OperationStatus.APPLIED:
                if operation.instance_id not in entry.active_ids_before:
                    self.violations.append(
                        f"entry {index}: operation {operation.operation_id} was applied "
                        f"but instance {operation.instance_id} was not active"
                    )
            elif entry.status == OperationStatus.CONFLICT:
                if operation.instance_id in entry.active_ids_before:
                    self.violations.append(
                        f"entry {index}: operation {operation.operation_id} was rejected "
                        f"as a conflict although instance {operation.instance_id} was active"
                    )

            # State monotonicity: operations are applied one at a time, so the
            # observable state versions must be non-decreasing (the analogue of
            # the ordering constraint on the sequence of states).
            if previous_version is not None and entry.state_version_before < previous_version:
                self.violations.append(
                    f"entry {index}: state version went backwards "
                    f"({previous_version} -> {entry.state_version_before})"
                )
            previous_version = entry.state_version_after

            # An applied operation must not leave the state version behind the
            # one it started from.
            if entry.state_version_after < entry.state_version_before:
                self.violations.append(
                    f"entry {index}: state version decreased while applying "
                    f"operation {operation.operation_id}"
                )
        return not self.violations

    def explain(self) -> str:
        if not self.violations:
            return "history is correct (serializable in the Section 5 sense)"
        return "\n".join(self.violations)


def equivalent_serial_order(history: ExecutionHistory) -> List[Operation]:
    """The serial order the runtime actually produced (applied operations only).

    Because the engine applies operations one at a time, the list of applied
    operations *is* an equivalent serial schedule; exposing it makes the
    benchmarks' reporting straightforward.
    """
    return [entry.operation for entry in history.applied()]
