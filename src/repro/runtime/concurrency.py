"""Concurrency-control strategies for application-level preconditions.

Section 6.2 of the paper notes that because Hilda preconditions are
declarative (activation queries), the system is free to choose *how* to
enforce them:

* **optimistic** — let users act on possibly stale pages; re-check the
  precondition (is the Basic AUnit instance still active?) when the action
  arrives.  Conflicting actions are rejected after the fact.  This is what
  the engine does natively.
* **pessimistic** — when a user views an actionable instance, lock it (and
  the rows it depends on); conflicting actions by other users block or are
  refused up front, so no work is wasted, at the cost of holding locks for
  the whole think time.
* **trigger-based** — watch the persistent tables; as soon as an update
  invalidates an instance that some user is viewing, push an invalidation so
  the user's later action is refused immediately without re-running the
  precondition.

:class:`ConcurrencySimulator` replays a workload of *intents* (a user views
an instance, thinks, then acts) under each strategy and reports the
throughput/conflict/blocking profile; the E11 benchmark sweeps contention.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.runtime.engine import HildaEngine
from repro.runtime.operations import ApplyResult, OperationStatus

__all__ = [
    "Intent",
    "StrategyResult",
    "LockManager",
    "ConcurrencySimulator",
    "OPTIMISTIC",
    "PESSIMISTIC",
    "TRIGGER_BASED",
]

OPTIMISTIC = "optimistic"
PESSIMISTIC = "pessimistic"
TRIGGER_BASED = "trigger"


@dataclass
class Intent:
    """A user's intention to act on a Basic AUnit instance.

    ``view_time`` is when the user loaded the page showing the instance;
    ``act_time`` is when the action is submitted.  Between the two, other
    users' actions may invalidate the instance.
    """

    user: str
    instance_id: int
    values: Optional[Sequence[Any]] = None
    view_time: float = 0.0
    act_time: float = 0.0
    description: str = ""


@dataclass
class StrategyResult:
    """Outcome counts of running a workload under one strategy."""

    strategy: str
    attempted: int = 0
    applied: int = 0
    conflicts: int = 0
    refused_up_front: int = 0
    lock_waits: int = 0
    lock_wait_time: float = 0.0
    wasted_work: int = 0

    def summary(self) -> Dict[str, float]:
        return {
            "strategy": self.strategy,
            "attempted": self.attempted,
            "applied": self.applied,
            "conflicts": self.conflicts,
            "refused_up_front": self.refused_up_front,
            "lock_waits": self.lock_waits,
            "lock_wait_time": round(self.lock_wait_time, 3),
            "wasted_work": self.wasted_work,
        }


class LockManager:
    """Instance-granularity locks for the pessimistic strategy."""

    def __init__(self) -> None:
        self._locks: Dict[int, str] = {}
        self.waits = 0

    def acquire(self, instance_id: int, owner: str) -> bool:
        holder = self._locks.get(instance_id)
        if holder is None or holder == owner:
            self._locks[instance_id] = owner
            return True
        self.waits += 1
        return False

    def release_all(self, owner: str) -> None:
        for instance_id in [iid for iid, holder in self._locks.items() if holder == owner]:
            del self._locks[instance_id]

    def holder(self, instance_id: int) -> Optional[str]:
        return self._locks.get(instance_id)


class ConcurrencySimulator:
    """Replay a workload of intents under a precondition-enforcement strategy.

    The simulator serialises intents by their ``act_time`` (the engine's
    semantics are serial anyway); the strategies differ in *when* the
    precondition is enforced and therefore in how much work is wasted or how
    long locks are held.
    """

    def __init__(self, engine: HildaEngine) -> None:
        self.engine = engine

    # -- strategies -----------------------------------------------------------------

    def run(self, intents: List[Intent], strategy: str = OPTIMISTIC) -> StrategyResult:
        ordered = sorted(intents, key=lambda intent: intent.act_time)
        if strategy == OPTIMISTIC:
            return self._run_optimistic(ordered)
        if strategy == PESSIMISTIC:
            return self._run_pessimistic(ordered)
        if strategy == TRIGGER_BASED:
            return self._run_trigger(ordered)
        raise ValueError(f"unknown strategy {strategy!r}")

    def _run_optimistic(self, intents: List[Intent]) -> StrategyResult:
        result = StrategyResult(strategy=OPTIMISTIC)
        for intent in intents:
            result.attempted += 1
            outcome = self.engine.perform(intent.instance_id, intent.values)
            if outcome.status == OperationStatus.APPLIED:
                result.applied += 1
            elif outcome.status == OperationStatus.CONFLICT:
                result.conflicts += 1
                result.wasted_work += 1  # the user filled in / clicked for nothing
            else:
                result.conflicts += 1
        return result

    def _run_pessimistic(self, intents: List[Intent]) -> StrategyResult:
        result = StrategyResult(strategy=PESSIMISTIC)
        locks = LockManager()
        # Locks are taken in view order (when the page was rendered) and held
        # until the action completes.
        for intent in sorted(intents, key=lambda item: item.view_time):
            locks.acquire(intent.instance_id, intent.user) or None
        lock_owner: Dict[int, str] = {}
        for intent in sorted(intents, key=lambda item: item.view_time):
            if intent.instance_id not in lock_owner:
                lock_owner[intent.instance_id] = intent.user
        for intent in sorted(intents, key=lambda item: item.act_time):
            result.attempted += 1
            owner = lock_owner.get(intent.instance_id)
            if owner is not None and owner != intent.user:
                # Someone else holds the lock on the instance this action
                # targets: the action is refused before any work happens.
                result.refused_up_front += 1
                result.lock_waits += 1
                result.lock_wait_time += max(0.0, intent.act_time - intent.view_time)
                continue
            outcome = self.engine.perform(intent.instance_id, intent.values)
            if outcome.status == OperationStatus.APPLIED:
                result.applied += 1
            elif outcome.status == OperationStatus.CONFLICT:
                result.conflicts += 1
        return result

    def _run_trigger(self, intents: List[Intent]) -> StrategyResult:
        result = StrategyResult(strategy=TRIGGER_BASED)
        invalidated: Set[int] = set()
        for intent in sorted(intents, key=lambda item: item.act_time):
            result.attempted += 1
            if intent.instance_id in invalidated:
                # The trigger already told this user their action is void; no
                # server round trip, no wasted handler evaluation.
                result.refused_up_front += 1
                continue
            before_ids = {node.instance_id for node in self.engine.forest.all_instances()}
            outcome = self.engine.perform(intent.instance_id, intent.values)
            if outcome.status == OperationStatus.APPLIED:
                result.applied += 1
                after_ids = {node.instance_id for node in self.engine.forest.all_instances()}
                invalidated |= before_ids - after_ids
            elif outcome.status == OperationStatus.CONFLICT:
                result.conflicts += 1
        return result


def conflicting_invitation_workload(
    engine: HildaEngine,
    session_pairs: List[Tuple[str, str]],
    conflict_rate: float = 0.5,
    seed: int = 7,
) -> List[Intent]:
    """Build an invitation withdraw/accept workload with a given conflict rate.

    For each (inviter session, invitee session) pair an outstanding
    invitation is expected to exist; with probability ``conflict_rate`` both
    the withdraw and the accept intents are issued (only one can win),
    otherwise only the accept is issued.
    """
    rng = random.Random(seed)
    intents: List[Intent] = []
    clock = 0.0
    for inviter_session, invitee_session in session_pairs:
        withdraws = engine.find_instances(
            "SelectRow", session_id=inviter_session, activator="ActWithdrawInv"
        )
        accepts = engine.find_instances(
            "SelectRow", session_id=invitee_session, activator="ActAcceptInv"
        )
        if not accepts:
            continue
        accept = accepts[0]
        clock += 1.0
        if withdraws and rng.random() < conflict_rate:
            withdraw = withdraws[0]
            intents.append(
                Intent(
                    user=inviter_session,
                    instance_id=withdraw.instance_id,
                    view_time=clock,
                    act_time=clock + 0.5,
                    description="withdraw invitation",
                )
            )
            intents.append(
                Intent(
                    user=invitee_session,
                    instance_id=accept.instance_id,
                    view_time=clock,
                    act_time=clock + 1.0,
                    description="accept invitation (conflicting)",
                )
            )
        else:
            intents.append(
                Intent(
                    user=invitee_session,
                    instance_id=accept.instance_id,
                    view_time=clock,
                    act_time=clock + 1.0,
                    description="accept invitation",
                )
            )
    return intents
