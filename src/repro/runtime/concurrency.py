"""Concurrency control: thread-safety primitives and precondition strategies.

This module has two halves (documented in ``docs/concurrency.md``):

**Thread-safety primitives** used by :class:`~repro.runtime.engine.HildaEngine`
and the web container to serve many simultaneous users from one process:

* :class:`ReadWriteLock` — a reentrant, writer-preferring reader/writer lock
  guarding the shared database and the activation forest.  Page renders are
  readers; operations (and reactivation) are writers.
* :class:`SessionLockTable` — a lock per session key, so requests belonging
  to one session are serialised without blocking other sessions.

**Precondition-enforcement strategies** — Section 6.2 of the paper notes
that because Hilda preconditions are declarative (activation queries), the
system is free to choose *how* to enforce them:

* **optimistic** — let users act on possibly stale pages; re-check the
  precondition (is the Basic AUnit instance still active?) when the action
  arrives.  Conflicting actions are rejected after the fact.  This is what
  the engine does natively.
* **pessimistic** — when a user views an actionable instance, lock it (and
  the rows it depends on); conflicting actions by other users block or are
  refused up front, so no work is wasted, at the cost of holding locks for
  the whole think time.
* **trigger-based** — watch the persistent tables; as soon as an update
  invalidates an instance that some user is viewing, push an invalidation so
  the user's later action is refused immediately without re-running the
  precondition.

:class:`ConcurrencySimulator` replays a workload of *intents* (a user views
an instance, thinks, then acts) under each strategy and reports the
throughput/conflict/blocking profile; the E11 benchmark sweeps contention.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro.runtime.operations import ApplyResult, OperationStatus

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.runtime.engine import HildaEngine

__all__ = [
    "Intent",
    "StrategyResult",
    "LockManager",
    "ReadWriteLock",
    "SessionLockTable",
    "ConcurrencySimulator",
    "OPTIMISTIC",
    "PESSIMISTIC",
    "TRIGGER_BASED",
]


class ReadWriteLock:
    """A reentrant, writer-preferring reader/writer lock.

    Any number of threads may hold the read side at once; the write side is
    exclusive.  Reentrancy rules:

    * a thread holding the **write** lock may re-acquire either side (the
      engine's mutating entry points call its reading helpers);
    * a thread holding the **read** lock may re-acquire the read side;
    * upgrading read → write is refused with :class:`RuntimeError` — it
      deadlocks as soon as two threads try it, so the engine is structured
      to decide read-vs-write *before* acquiring (see ``docs/concurrency.md``).

    Writer preference: once a writer is waiting, new first-time readers
    queue behind it, so a steady stream of page renders cannot starve
    actions.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers: Dict[int, int] = {}
        self._writer: Optional[int] = None
        self._writer_depth = 0
        self._writers_waiting = 0

    # -- read side -----------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                self._readers[me] += 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth -= 1
                return
            count = self._readers.get(me)
            if count is None:
                raise RuntimeError("release_read without a matching acquire_read")
            if count > 1:
                self._readers[me] = count - 1
            else:
                del self._readers[me]
                self._cond.notify_all()

    # -- write side ----------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                raise RuntimeError(
                    "read -> write lock upgrade would deadlock; acquire the "
                    "write lock before (instead of while) holding the read lock"
                )
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a thread not holding the write lock")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers ------------------------------------------------------

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (tests) -------------------------------------------------

    def held_for_write(self) -> bool:
        with self._cond:
            return self._writer is not None

    def reader_count(self) -> int:
        with self._cond:
            return len(self._readers)


class SessionLockTable:
    """A table of per-key reentrant locks, created on demand.

    The engine keys it by engine-session id and the web container by cookie
    token: two requests belonging to the *same* session are serialised (a
    browser double-submit cannot interleave mid-pipeline) while requests of
    different sessions only contend on the shared reader/writer lock.
    """

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._locks: Dict[str, threading.RLock] = {}

    def lock(self, key: str) -> threading.RLock:
        """The lock for ``key`` (created on first use)."""
        with self._guard:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.RLock()
            return lock

    @contextmanager
    def holding(self, key: str) -> Iterator[None]:
        lock = self.lock(key)
        with lock:
            yield

    def discard(self, key: str) -> None:
        """Forget the lock for a closed session (safe if absent or held).

        Discarding is inherently racy with late arrivals: a request that
        already holds (or is waiting on) the old lock object is not
        serialised against one that mints a fresh lock afterwards.  That is
        acceptable because discard is only called once the session is dead —
        both such requests fail the session lookup and bounce to login, and
        state safety never rests on this table (the reader/writer lock
        guarantees it); this table only orders requests of *live* sessions.
        """
        with self._guard:
            self._locks.pop(key, None)

    def __len__(self) -> int:
        with self._guard:
            return len(self._locks)

OPTIMISTIC = "optimistic"
PESSIMISTIC = "pessimistic"
TRIGGER_BASED = "trigger"


@dataclass
class Intent:
    """A user's intention to act on a Basic AUnit instance.

    ``view_time`` is when the user loaded the page showing the instance;
    ``act_time`` is when the action is submitted.  Between the two, other
    users' actions may invalidate the instance.
    """

    user: str
    instance_id: int
    values: Optional[Sequence[Any]] = None
    view_time: float = 0.0
    act_time: float = 0.0
    description: str = ""


@dataclass
class StrategyResult:
    """Outcome counts of running a workload under one strategy."""

    strategy: str
    attempted: int = 0
    applied: int = 0
    conflicts: int = 0
    refused_up_front: int = 0
    lock_waits: int = 0
    lock_wait_time: float = 0.0
    wasted_work: int = 0

    def summary(self) -> Dict[str, float]:
        return {
            "strategy": self.strategy,
            "attempted": self.attempted,
            "applied": self.applied,
            "conflicts": self.conflicts,
            "refused_up_front": self.refused_up_front,
            "lock_waits": self.lock_waits,
            "lock_wait_time": round(self.lock_wait_time, 3),
            "wasted_work": self.wasted_work,
        }


class LockManager:
    """Instance-granularity locks for the pessimistic strategy."""

    def __init__(self) -> None:
        self._locks: Dict[int, str] = {}
        self.waits = 0

    def acquire(self, instance_id: int, owner: str) -> bool:
        holder = self._locks.get(instance_id)
        if holder is None or holder == owner:
            self._locks[instance_id] = owner
            return True
        self.waits += 1
        return False

    def release_all(self, owner: str) -> None:
        for instance_id in [iid for iid, holder in self._locks.items() if holder == owner]:
            del self._locks[instance_id]

    def holder(self, instance_id: int) -> Optional[str]:
        return self._locks.get(instance_id)


class ConcurrencySimulator:
    """Replay a workload of intents under a precondition-enforcement strategy.

    The simulator serialises intents by their ``act_time`` (the engine's
    semantics are serial anyway); the strategies differ in *when* the
    precondition is enforced and therefore in how much work is wasted or how
    long locks are held.
    """

    def __init__(self, engine: HildaEngine) -> None:
        self.engine = engine

    # -- strategies -----------------------------------------------------------------

    def run(self, intents: List[Intent], strategy: str = OPTIMISTIC) -> StrategyResult:
        ordered = sorted(intents, key=lambda intent: intent.act_time)
        if strategy == OPTIMISTIC:
            return self._run_optimistic(ordered)
        if strategy == PESSIMISTIC:
            return self._run_pessimistic(ordered)
        if strategy == TRIGGER_BASED:
            return self._run_trigger(ordered)
        raise ValueError(f"unknown strategy {strategy!r}")

    def _run_optimistic(self, intents: List[Intent]) -> StrategyResult:
        result = StrategyResult(strategy=OPTIMISTIC)
        for intent in intents:
            result.attempted += 1
            outcome = self.engine.perform(intent.instance_id, intent.values)
            if outcome.status == OperationStatus.APPLIED:
                result.applied += 1
            elif outcome.status == OperationStatus.CONFLICT:
                result.conflicts += 1
                result.wasted_work += 1  # the user filled in / clicked for nothing
            else:
                result.conflicts += 1
        return result

    def _run_pessimistic(self, intents: List[Intent]) -> StrategyResult:
        result = StrategyResult(strategy=PESSIMISTIC)
        locks = LockManager()
        # Locks are taken in view order (when the page was rendered) and held
        # until the action completes.
        for intent in sorted(intents, key=lambda item: item.view_time):
            locks.acquire(intent.instance_id, intent.user) or None
        lock_owner: Dict[int, str] = {}
        for intent in sorted(intents, key=lambda item: item.view_time):
            if intent.instance_id not in lock_owner:
                lock_owner[intent.instance_id] = intent.user
        for intent in sorted(intents, key=lambda item: item.act_time):
            result.attempted += 1
            owner = lock_owner.get(intent.instance_id)
            if owner is not None and owner != intent.user:
                # Someone else holds the lock on the instance this action
                # targets: the action is refused before any work happens.
                result.refused_up_front += 1
                result.lock_waits += 1
                result.lock_wait_time += max(0.0, intent.act_time - intent.view_time)
                continue
            outcome = self.engine.perform(intent.instance_id, intent.values)
            if outcome.status == OperationStatus.APPLIED:
                result.applied += 1
            elif outcome.status == OperationStatus.CONFLICT:
                result.conflicts += 1
        return result

    def _run_trigger(self, intents: List[Intent]) -> StrategyResult:
        result = StrategyResult(strategy=TRIGGER_BASED)
        invalidated: Set[int] = set()
        for intent in sorted(intents, key=lambda item: item.act_time):
            result.attempted += 1
            if intent.instance_id in invalidated:
                # The trigger already told this user their action is void; no
                # server round trip, no wasted handler evaluation.
                result.refused_up_front += 1
                continue
            before_ids = {node.instance_id for node in self.engine.forest.all_instances()}
            outcome = self.engine.perform(intent.instance_id, intent.values)
            if outcome.status == OperationStatus.APPLIED:
                result.applied += 1
                after_ids = {node.instance_id for node in self.engine.forest.all_instances()}
                invalidated |= before_ids - after_ids
            elif outcome.status == OperationStatus.CONFLICT:
                result.conflicts += 1
        return result


def conflicting_invitation_workload(
    engine: HildaEngine,
    session_pairs: List[Tuple[str, str]],
    conflict_rate: float = 0.5,
    seed: int = 7,
) -> List[Intent]:
    """Build an invitation withdraw/accept workload with a given conflict rate.

    For each (inviter session, invitee session) pair an outstanding
    invitation is expected to exist; with probability ``conflict_rate`` both
    the withdraw and the accept intents are issued (only one can win),
    otherwise only the accept is issued.
    """
    rng = random.Random(seed)
    intents: List[Intent] = []
    clock = 0.0
    for inviter_session, invitee_session in session_pairs:
        withdraws = engine.find_instances(
            "SelectRow", session_id=inviter_session, activator="ActWithdrawInv"
        )
        accepts = engine.find_instances(
            "SelectRow", session_id=invitee_session, activator="ActAcceptInv"
        )
        if not accepts:
            continue
        accept = accepts[0]
        clock += 1.0
        if withdraws and rng.random() < conflict_rate:
            withdraw = withdraws[0]
            intents.append(
                Intent(
                    user=inviter_session,
                    instance_id=withdraw.instance_id,
                    view_time=clock,
                    act_time=clock + 0.5,
                    description="withdraw invitation",
                )
            )
            intents.append(
                Intent(
                    user=invitee_session,
                    instance_id=accept.instance_id,
                    view_time=clock,
                    act_time=clock + 1.0,
                    description="accept invitation (conflicting)",
                )
            )
        else:
            intents.append(
                Intent(
                    user=invitee_session,
                    instance_id=accept.instance_id,
                    view_time=clock,
                    act_time=clock + 1.0,
                    description="accept invitation",
                )
            )
    return intents
