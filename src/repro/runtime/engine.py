"""The Hilda engine: sessions, operations and the three execution phases.

:class:`HildaEngine` is the interpreter for resolved Hilda programs.  It
owns the persistent store (one set of tables per AUnit type, shared by all
instances, initialised by the persist query the first time the type is
used), the activation forest, and the operation log.

Life cycle of one user action (Definition 8 of the paper):

1. the user performs an action on a Basic AUnit instance (identified by ID);
2. **conflict check** — if that ID is no longer in the activation forest the
   operation is rejected (Section 3.2.6);
3. **return phase** — handlers fire up the tree (:mod:`repro.runtime.returns`);
4. **reactivation phase** — the forest is rebuilt; surviving instances keep
   their local state and IDs (:mod:`repro.runtime.activation`).

Reactivation can be *eager* (every session's tree is rebuilt immediately,
the default) or *lazy* (other sessions' trees are rebuilt when next
accessed), which models the paper's remark that changes need only be
propagated when a user reloads the page.

The engine is **thread-safe** (see ``docs/concurrency.md``): a shared
reader/writer lock lets any number of page renders proceed concurrently
while operations, session creation and reactivation are exclusive, and a
per-session lock table serialises requests belonging to one session.
Operations interleave with first-committer-wins semantics per instance: the
first operation to commit under the write lock wins, and any later
operation targeting an instance it invalidated receives a deterministic
conflict report naming the winning operation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.config import DEFAULT_ACTIVATION_CACHE_SIZE, EngineConfig
from repro.errors import (
    ConflictError,
    HandlerError,
    RecoveryError,
    SessionError,
    UnknownTableError,
)
from repro.hilda.ast import ActivatorDecl, AUnitDecl
from repro.hilda.program import HildaProgram
from repro.relational.functions import FunctionRegistry, SequentialKeyGenerator
from repro.relational.table import Table
from repro.runtime.activation import (
    ActivationBuilder,
    PreservedInstance,
    dep_vector,
    deps_current,
)
from repro.runtime.concurrency import ReadWriteLock, SessionLockTable
from repro.runtime.forest import ActivationForest
from repro.runtime.history import ExecutionHistory
from repro.runtime.instance import AUnitInstance, InstanceLabel
from repro.runtime.operations import ApplyResult, Operation, OperationStatus
from repro.runtime.returns import ReturnProcessor
from repro.sql.delta import DeltaLog, DeltaProgram, build_delta_program
from repro.sql.executor import SQLCaches, SQLExecutor
from repro.sql.stats import CacheStats, MaintenanceStats
from repro.storage.backend import create_backend

__all__ = ["HildaEngine"]

#: How many invalidation records to keep for conflict attribution before the
#: oldest are dropped (bounds memory on long-running servers).
_INVALIDATION_LOG_LIMIT = 10_000


class HildaEngine:
    """Interpreter for a resolved Hilda program.

    Parameters
    ----------
    program:
        A resolved :class:`~repro.hilda.program.HildaProgram`.
    functions:
        Scalar function registry.  By default a fresh registry with a
        deterministic sequential ``genkey()`` is used so examples, tests and
        benchmarks are reproducible.
    config:
        A typed :class:`~repro.config.EngineConfig` carrying every knob:
        planner/compiler switches (``optimize``, ``auto_index``,
        ``compile_expressions``), the nested
        :class:`~repro.config.OptimizerConfig` selecting the cost-based vs
        heuristic planning strategy (``docs/optimizer.md``), the
        ``reactivation`` mode (``"eager"``
        rebuilds every session's tree after each operation, ``"lazy"``
        defers other sessions until accessed), ``record_history``, and a
        nested :class:`~repro.config.CacheConfig` for activation-query
        caching, dependency tracking, delta reactivation and cache bounds
        (see ``docs/caching.md``).
    **legacy_options:
        The pre-config keyword arguments (``optimize=...``,
        ``cache_activation_queries=...``, ...) are still accepted and are
        merged onto ``config``, each emitting a ``DeprecationWarning`` once
        per process.  See ``docs/api.md`` for the migration table.
    """

    def __init__(
        self,
        program: HildaProgram,
        functions: Optional[FunctionRegistry] = None,
        config: Optional[EngineConfig] = None,
        **legacy_options: Any,
    ) -> None:
        config = EngineConfig.from_legacy(config, legacy_options, owner="HildaEngine")
        self.config = config
        self.program = program
        self.functions = functions or self._default_functions()
        self.optimize = config.optimize
        self.auto_index = config.auto_index
        self.compile_expressions = config.compile_expressions
        self.optimizer = config.optimizer
        #: Parse/plan/compile caches shared by every executor the engine
        #: builds: program queries are parsed once at load time, so their
        #: ASTs (and hence plans and compiled closures) are reusable across
        #: the short-lived per-context executors of every phase.
        self.sql_caches = SQLCaches()
        self.reactivation = config.reactivation
        self.cache_activation_queries = config.cache.activation_queries
        self.dependency_tracking = config.cache.dependency_tracking
        self.delta_reactivation = config.cache.delta_reactivation
        self.activation_cache_size = config.cache.activation_cache_size
        #: ``"incremental"`` patches stale cached activation results through
        #: per-plan delta programs; ``"recompute"`` (default) re-executes.
        self.maintenance = config.cache.maintenance
        #: The in-memory delta log feeding incremental maintenance.  None
        #: unless ``maintenance="incremental"`` *and* dependency tracking is
        #: on (the stamps the patch path advances are dependency vectors).
        self.delta_log: Optional[DeltaLog] = (
            DeltaLog(config.cache.delta_log_size)
            if config.cache.maintenance == "incremental"
            and config.cache.dependency_tracking
            else None
        )
        #: Engine-wide incremental-maintenance counters (docs/caching.md).
        self.maintenance_stats = MaintenanceStats()
        #: id(plan) -> (plan, delta program or None); the plan reference
        #: pins the id.  Swept wholesale when it outgrows the plan cache.
        self._delta_programs: Dict[int, Tuple[Any, Optional[DeltaProgram]]] = {}
        self.forest = ActivationForest()
        self.history: Optional[ExecutionHistory] = (
            ExecutionHistory() if config.record_history else None
        )

        self._persist: Dict[str, Dict[str, Table]] = {}
        self._persist_initialised: Set[str] = set()
        self._session_inputs: Dict[str, Dict[str, List[Sequence[Any]]]] = {}
        self._session_counter = SequentialKeyGenerator(1)
        self._instance_counter = SequentialKeyGenerator(1)
        self._state_version = 0
        #: Cluster hook (docs/cluster.md): when a shard worker installs a
        #: scatter provider, executors fan cross-shard reads out through it
        #: and the caches stop trusting purely-local version stamps for
        #: global queries.  None in single-process engines.
        self.scatter: Optional[Any] = None
        self.session_scoped_ids = config.session_scoped_ids
        #: session id -> next per-session instance sequence number (only
        #: consulted under ``session_scoped_ids``; see :meth:`id_scope`).
        self._session_instance_counters: Dict[str, int] = {}
        self._id_scope_session: Optional[str] = None

        #: The durable storage backend (docs/storage.md): MemoryBackend —
        #: every call a no-op — unless ``config.storage`` (or the
        #: REPRO_STORAGE_BACKEND env override) selects the WAL backend, in
        #: which case constructing it performs crash recovery and the
        #: counters of the last committed transaction are restored here, so
        #: a recovered engine continues the pre-crash id/key sequences.
        self.storage = create_backend(config.storage)
        self.storage.bind_engine(self)
        recovered_counters = self.storage.recovered_counters()
        if recovered_counters:
            self._state_version = recovered_counters.get("state_version", 0)
            self._session_counter.reset(recovered_counters.get("session_seq", 1))
            self._instance_counter.reset(recovered_counters.get("instance_seq", 1))
            next_genkey = recovered_counters.get("genkey")
            if next_genkey is not None:
                self.functions.restore_sequential_keys(next_genkey)

        self._dirty_sessions: Set[str] = set()
        #: (instance label, activator name) -> (validity stamp, cached rows).
        #: The stamp is a dependency version vector under dependency
        #: tracking, or the global state version in the coarse mode.
        #: Ordered for LRU eviction past ``activation_cache_size``.
        self._activation_cache: "OrderedDict[Tuple, Tuple[Any, List[Tuple[Any, ...]]]]" = (
            OrderedDict()
        )
        #: Hit/miss/evict/invalidation counters of the activation cache.
        self.activation_cache_stats = CacheStats()

        #: Shared-database reader/writer lock: page renders and lookups are
        #: readers, operations / session lifecycle / reactivation are writers.
        self._rw = ReadWriteLock()
        #: One lock per session id, serialising requests of the same session.
        self.session_locks = SessionLockTable()
        #: instance_id -> (winning operation_id, winning session_id) for
        #: instances removed from the forest by a committed operation; used
        #: for deterministic first-committer-wins conflict reports.
        self._invalidated_by: Dict[int, Tuple[int, Optional[str]]] = {}
        #: session_id -> the first committed operation that marked it stale
        #: (lazy mode); instances that vanish in the deferred rebuild are
        #: attributed to it.
        self._dirty_markers: Dict[str, Tuple[int, Optional[str]]] = {}

        self._builder = ActivationBuilder(self)
        self._returns = ReturnProcessor(self)

    # ------------------------------------------------------------------
    # Locking helpers (docs/concurrency.md)
    # ------------------------------------------------------------------

    def read_locked(self):
        """Context manager: hold the shared lock for reading (page renders)."""
        return self._rw.read()

    def write_locked(self):
        """Context manager: hold the shared lock exclusively (mutations)."""
        return self._rw.write()

    # ------------------------------------------------------------------
    # Low-level services used by the phase implementations
    # ------------------------------------------------------------------

    @staticmethod
    def _default_functions() -> FunctionRegistry:
        registry = FunctionRegistry()
        registry.use_sequential_keys(start=1000)
        return registry

    def next_instance_id(self) -> int:
        if self.session_scoped_ids and self._id_scope_session is not None:
            session_id = self._id_scope_session
            if session_id.startswith("S") and session_id[1:].isdigit():
                # Ids are a function of (session number, per-session
                # sequence), not of the engine's global allocation order —
                # every worker process derives the same ids for the same
                # session regardless of what its siblings built.  The 1e6
                # stride keeps them disjoint from the global counter's range
                # (docs/cluster.md documents the per-session bound).
                seq = self._session_instance_counters.get(session_id, 0) + 1
                self._session_instance_counters[session_id] = seq
                return int(session_id[1:]) * 1_000_000 + seq
        return self._instance_counter()

    @contextmanager
    def id_scope(self, session_id: Optional[str]) -> Iterator[None]:
        """Attribute instance ids allocated inside to ``session_id``.

        A no-op unless ``config.session_scoped_ids`` is on.  Held by the
        activation builder around one session's tree build (tree builds run
        under the write lock, so the single scope slot cannot race).
        """
        previous = self._id_scope_session
        self._id_scope_session = session_id
        try:
            yield
        finally:
            self._id_scope_session = previous

    def make_executor(self, catalog) -> SQLExecutor:
        """A SQL executor over ``catalog`` wired to the engine's shared caches."""
        return SQLExecutor(
            catalog,
            functions=self.functions,
            config=self.config,
            caches=self.sql_caches,
            scatter=self.scatter,
        )

    def query_is_global(self, query: Union[str, Any]) -> bool:
        """Does this query read beyond the local shard (scatter-gather)?

        Always False outside cluster workers (no scatter provider).
        """
        if self.scatter is None:
            return False
        try:
            return self.scatter.is_global(query)
        except Exception:
            return False

    @property
    def state_version(self) -> int:
        return self._state_version

    def bump_state_version(self) -> None:
        self._state_version += 1

    # -- durability plumbing (docs/storage.md) ---------------------------------

    def _commit_meta(self) -> Dict[str, Any]:
        """The engine counters a committed transaction makes durable.

        Captured at commit time (under the write lock) so a recovered
        engine's id/key sequences equal those of an engine that saw only
        the committed prefix — which is what makes post-recovery sessions,
        instance ids and generated keys (and hence rendered pages)
        byte-identical to the never-crashed reference.
        """
        return {
            "state_version": self._state_version,
            "session_seq": self._session_counter.peek(),
            "instance_seq": self._instance_counter.peek(),
            "genkey": self.functions.sequential_key_state(),
        }

    def export_persist_state(self) -> Dict[str, Any]:
        """The committed persistent state, for a storage checkpoint.

        Called by the backend with the engine's write lock held.
        """
        return {
            "persist": {
                aunit_name: {
                    name: {
                        "rows": list(table.rows),
                        "version": table.version,
                        "indexes": table.indexes,
                    }
                    for name, table in tables.items()
                }
                for aunit_name, tables in self._persist.items()
            },
            "created": sorted(self._persist_initialised),
        }

    def close(self) -> None:
        """Flush and release the storage backend (idempotent).

        The engine itself stays usable for in-memory reads, but further
        writes against a WAL backend will fail — close is for shutdown.
        """
        self.storage.close()

    @contextmanager
    def _durable_write(self) -> Iterator[None]:
        """One engine transaction: begin/commit under the write lock, then
        await durability after releasing it (which is what lets concurrent
        committers share a group-commit fsync, see ``docs/concurrency.md``).

        The commit runs even when the body raises — handlers have no
        rollback path, so the log must mirror in-memory state on every
        outcome — but with care about exception precedence: a storage
        failure during that commit must not *mask* the body's exception
        (the root cause); it is chained onto it instead.  When the body
        failed but the commit was logged, its durability is still awaited
        before the original error is re-raised.
        """
        error: Optional[BaseException] = None
        ticket: Optional[Any] = None
        with self._rw.write():
            self.storage.begin()
            try:
                yield
            except BaseException as exc:
                error = exc
            try:
                ticket = self.storage.commit(self._commit_meta())
            except Exception as commit_exc:
                if error is None:
                    raise
                raise error from commit_exc
        if error is None:
            self.storage.wait_durable(ticket)
            return
        try:
            self.storage.wait_durable(ticket)
        except Exception:
            # Raising inside the handler chains the durability failure onto
            # the original error (as __context__) instead of replacing it.
            raise error
        raise error

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """One externally-driven engine transaction (docs/cluster.md).

        Runs the body under the write lock inside a durable storage
        transaction and bumps the global state version, exactly like an
        applied operation — used by cluster workers for replica refresh and
        shard localisation, and available to embedders for bulk mutations.
        """
        with self._durable_write():
            yield
            self.bump_state_version()

    def mark_all_stale(self) -> None:
        """Mark every session's tree stale so the next access rebuilds it.

        Cluster workers call this when the router reports that *another*
        shard committed a write visible through a cross-shard read: no local
        table version moved, so dependency tracking alone would never
        invalidate, but the scatter-gathered results have changed.
        """
        with self._rw.write():
            self._dirty_sessions.update(self.forest.session_ids())

    def ensure_persistent(self, decl: AUnitDecl) -> None:
        """Create and initialise the persistent tables of an AUnit type once."""
        if decl.name in self._persist_initialised:
            return
        with self._durable_write():
            self._ensure_persistent_locked(decl)

    def _ensure_persistent_locked(self, decl: AUnitDecl) -> None:
        if decl.name in self._persist_initialised:
            return
        recovered = self.storage.recovered_persist(decl)
        if recovered is not None:
            # Crash recovery rebuilt contents/indexes/version stamps from
            # the log; skip seeding (the persist query already ran, and its
            # effects are part of the recovered state).
            self._persist[decl.name] = recovered
            for table in recovered.values():
                if self.config.storage.verify_recovery:
                    problems = table.check_integrity()
                    if problems:
                        raise RecoveryError(
                            f"recovered table {decl.name}.{table.name} is "
                            "inconsistent: " + "; ".join(problems)
                        )
                self.storage.bind_table(decl.name, table)
                if self.delta_log is not None:
                    self.delta_log.attach(table)
            self._persist_initialised.add(decl.name)
            return
        tables = {schema.name: Table(schema) for schema in decl.persist_schema}
        self._persist[decl.name] = tables
        # Journal creation (with the fresh version stamps) before seeding,
        # so recovery re-creates the tables even when seeding writes nothing.
        self.storage.mark_persist_created(
            decl.name, {name: table.version for name, table in tables.items()}
        )
        for table in tables.values():
            self.storage.bind_table(decl.name, table)
            if self.delta_log is not None:
                self.delta_log.attach(table)
        if decl.persist_query:
            from repro.runtime.context import DictCatalog, run_assignments

            catalog = DictCatalog(dict(tables))
            run_assignments(
                decl.persist_query,
                catalog,
                self.functions,
                lambda assignment: tables.get(assignment.simple_target),
                location=f"{decl.name}.persist_query",
                executor_factory=self.make_executor,
            )
        # Published last: the lock-free fast path in ensure_persistent must
        # only see the flag once the tables exist and are fully seeded.
        self._persist_initialised.add(decl.name)

    def persist_tables(self, aunit_name: str) -> Dict[str, Table]:
        """The shared persistent tables of one AUnit type (may be empty)."""
        return self._persist.get(aunit_name, {})

    # -- activation-query cache (Section 6.2 data caching) ----------------------------

    def activation_cache_lookup(
        self,
        instance: AUnitInstance,
        activator: ActivatorDecl,
        catalog,
        executor: Optional[SQLExecutor] = None,
    ) -> Optional[List[Tuple[Any, ...]]]:
        """Cached activation rows for one (instance, activator), if still valid.

        Under dependency tracking an entry is valid while every table its
        query read still holds the version recorded at store time (resolved
        through ``catalog``, the instance's read catalog); in the coarse
        mode validity means "no write anywhere since".  Called under the
        engine's write lock (tree builds are exclusive).

        Under ``maintenance="incremental"`` a *stale* entry carrying a delta
        program is first offered to the patch path: the deltas between its
        recorded and current table versions are propagated through the
        program, and on success the repaired entry counts as a hit.  Any
        bailout falls through to the ordinary invalidation miss.
        """
        if not self.cache_activation_queries:
            return None
        key = (instance.label, activator.name)
        stats = self.activation_cache_stats
        cached = self._activation_cache.get(key)
        if cached is None:
            stats.misses += 1
            return None
        stamp, rows, program, sources = cached
        if self.dependency_tracking:
            valid = deps_current(stamp, catalog)
        else:
            valid = stamp == self._state_version
        if not valid:
            if (
                program is not None
                and sources is not None
                and executor is not None
                and self.delta_log is not None
            ):
                patched = self._patch_activation_entry(key, cached, executor)
                if patched is not None:
                    stats.hits += 1
                    return patched
                self.maintenance_stats.bailouts += 1
                executor.stats.maintenance_bailouts += 1
            del self._activation_cache[key]
            stats.misses += 1
            stats.invalidations += 1
            return None
        self._activation_cache.move_to_end(key)
        stats.hits += 1
        return rows

    def _patch_activation_entry(
        self, key: Tuple, cached: Tuple, executor: SQLExecutor
    ) -> Optional[List[Tuple[Any, ...]]]:
        """Repair one stale cache entry through its delta program (or None)."""
        stamp, rows, program, sources = cached
        # Plan-drift guard: the program's delta rules replay one physical
        # plan's output order.  If re-planning (a stats-fingerprint miss)
        # superseded that plan, the recomputed order could differ — bail.
        try:
            if executor._plan(program.ast) is not program.plan:
                return None
        except Exception:
            return None
        result = program.maintain(
            list(zip(sources, rows)),
            stamp,
            executor._context(),
            self.delta_log,
            self.maintenance_stats,
        )
        if result is None:
            return None
        new_pairs, new_stamp = result
        new_rows = [out for _, out in new_pairs]
        new_sources = [source for source, _ in new_pairs]
        cache = self._activation_cache
        cache[key] = (new_stamp, new_rows, program, new_sources)
        cache.move_to_end(key)
        self.maintenance_stats.patched += 1
        executor.stats.maintenance_patches += 1
        return new_rows

    def _delta_program_for(
        self, executor: SQLExecutor, query
    ) -> Optional[DeltaProgram]:
        """The (memoised) delta program for a query's current plan, or None."""
        try:
            ast = executor._parse_query(query)
            plan = executor._plan(ast)
        except Exception:
            return None
        memo = self._delta_programs
        entry = memo.get(id(plan))
        if entry is not None and entry[0] is plan:
            return entry[1]
        try:
            program = build_delta_program(ast, plan, executor._plan_read_set(plan))
        except Exception:
            program = None
        if len(memo) > 512:
            memo.clear()  # dead plans linger after cache eviction; resweep
        memo[id(plan)] = (plan, program)
        return program

    def activation_cache_store(
        self,
        instance: AUnitInstance,
        activator: ActivatorDecl,
        rows: List[Tuple[Any, ...]],
        read_names,
        catalog,
        query=None,
        executor: Optional[SQLExecutor] = None,
    ) -> None:
        """Memoise activation rows, stamped with their dependency versions.

        ``read_names`` is the query's table read set (None when untracked —
        then nothing is stored under dependency tracking, since the entry
        could never be validated).  Under incremental maintenance, ``query``
        and ``executor`` let the entry carry a delta program plus the
        provenance (source-table row per output row) the patch path needs;
        the program's snapshot is verified against ``rows`` at store time,
        so a program that cannot reproduce the plan's exact output order is
        dropped here rather than trusted later.
        """
        if not self.cache_activation_queries:
            return
        if query is not None and self.query_is_global(query):
            # Cross-shard reads cannot be validated by local version stamps
            # (a peer's write bumps no local table version), so the entry
            # would be served stale forever.  Never memoise them.
            return
        stamp: Any
        if self.dependency_tracking:
            if read_names is None:
                return
            stamp = dep_vector(read_names, catalog)
            if stamp is None:
                return
        else:
            stamp = self._state_version
        program = None
        sources = None
        if self.delta_log is not None and query is not None and executor is not None:
            program = self._delta_program_for(executor, query)
            if program is not None:
                context = executor._context()
                pairs = program.snapshot(context, rows)
                if pairs is None:
                    program = None
                else:
                    sources = [source for source, _ in pairs]
                    # Lazily track whatever table this plan scans — local and
                    # input tables too, not just the persistent set attached
                    # up front — so their future mutations are patchable.
                    try:
                        self.delta_log.attach(
                            context.catalog.resolve_table(program.source)
                        )
                    except UnknownTableError:
                        program = None
                        sources = None
        cache = self._activation_cache
        cache[(instance.label, activator.name)] = (stamp, list(rows), program, sources)
        cache.move_to_end((instance.label, activator.name))
        if self.activation_cache_size is not None:
            while len(cache) > self.activation_cache_size:
                cache.popitem(last=False)
                self.activation_cache_stats.evictions += 1

    # ------------------------------------------------------------------
    # Persistent-data helpers (fixtures, tests, baselines)
    # ------------------------------------------------------------------

    def persistent_table(self, table_name: str, aunit_name: Optional[str] = None) -> Table:
        """Direct access to a persistent table (defaults to the root AUnit's)."""
        owner = aunit_name or self.program.root_name
        self.ensure_persistent(self.program.aunit(owner))
        tables = self.persist_tables(owner)
        if table_name not in tables:
            raise SessionError(
                f"AUnit {owner!r} has no persistent table {table_name!r}"
            )
        return tables[table_name]

    def seed_persistent(
        self,
        rows_by_table: Dict[str, List[Sequence[Any]]],
        aunit_name: Optional[str] = None,
        refresh: bool = True,
    ) -> None:
        """Bulk-load persistent tables (used by fixtures and benchmarks)."""
        with self._durable_write():
            for table_name, rows in rows_by_table.items():
                table = self.persistent_table(table_name, aunit_name)
                table.insert_many(rows)
            self.bump_state_version()
            if refresh and self.forest.session_ids():
                self.reactivate_all()

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def start_session(
        self,
        input_rows: Optional[Dict[str, List[Sequence[Any]]]] = None,
        session_id: Optional[str] = None,
    ) -> str:
        """Activate a new root AUnit instance (a user session) and return its id."""
        # Sessions themselves are volatile, but building the tree may have
        # initialised persistent tables (and advanced counters); the
        # transaction commits even on failure so the log mirrors in-memory
        # state.
        with self._durable_write():
            if session_id is None:
                session_id = f"S{self._session_counter()}"
            if self.forest.has_session(session_id):
                raise SessionError(f"session {session_id!r} already exists")
            inputs = {name: list(rows) for name, rows in (input_rows or {}).items()}
            self._session_inputs[session_id] = inputs
            root = self._builder.build_session_tree(session_id, inputs)
            self.forest.add_root(session_id, root)
        return session_id

    def close_session(self, session_id: str) -> None:
        """Deactivate a session's root instance (and thereby its whole tree)."""
        with self.session_locks.holding(session_id):
            with self._rw.write():
                self.forest.remove_session(session_id)
                self._session_inputs.pop(session_id, None)
                self._dirty_sessions.discard(session_id)
                self._dirty_markers.pop(session_id, None)
                self._session_instance_counters.pop(session_id, None)
        self.session_locks.discard(session_id)

    def session_ids(self) -> List[str]:
        with self._rw.read():
            return self.forest.session_ids()

    def session_tree(self, session_id: str) -> AUnitInstance:
        """The activation tree of a session (rebuilding it first if stale)."""
        with self.session_locks.holding(session_id):
            if session_id not in self._dirty_sessions:
                with self._rw.read():
                    # Re-check under the lock: a writer may have marked the
                    # session stale between the test above and acquisition.
                    if session_id not in self._dirty_sessions:
                        return self.forest.root_for_session(session_id)
            with self._rw.write():
                self._ensure_fresh(session_id)
                return self.forest.root_for_session(session_id)

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------

    def instance(self, instance_id: int) -> Optional[AUnitInstance]:
        with self._rw.read():
            return self.forest.instance_by_id(instance_id)

    def find_instances(
        self,
        aunit_name: Optional[str] = None,
        session_id: Optional[str] = None,
        activator: Optional[str] = None,
    ) -> List[AUnitInstance]:
        """Find active instances, refreshing lazily-reactivated sessions first."""
        self._refresh_stale(session_id)
        with self._rw.read():
            return self.forest.find_instances(
                aunit_name=aunit_name, session_id=session_id, activator=activator
            )

    def render_forest(self) -> str:
        self._refresh_stale()
        with self._rw.read():
            return self.forest.render()

    def _refresh_stale(self, session_id: Optional[str] = None) -> None:
        """Rebuild stale (lazily-reactivated) sessions, write-locking only if needed."""
        if session_id is not None:
            if session_id in self._dirty_sessions:
                with self._rw.write():
                    self._ensure_fresh(session_id)
        elif self._dirty_sessions:
            with self._rw.write():
                for stale in list(self._dirty_sessions):
                    self._ensure_fresh(stale)

    # ------------------------------------------------------------------
    # Operations (user actions)
    # ------------------------------------------------------------------

    def perform(
        self,
        instance_id: int,
        values: Optional[Sequence[Any]] = None,
        description: str = "",
    ) -> ApplyResult:
        """Perform a user action on a Basic AUnit instance by ID."""
        operation = Operation(
            instance_id=instance_id,
            values=values,
            observed_state_version=self._state_version,
            description=description,
        )
        return self.apply(operation)

    #: Alias matching the paper's vocabulary ("the returning of an instance").
    submit = perform

    def apply(self, operation: Operation) -> ApplyResult:
        """Apply one operation: conflict check, return phase, reactivation phase.

        Operations are serialised under the engine's write lock, which yields
        first-committer-wins semantics per instance: whichever of two racing
        operations acquires the lock first commits, and the loser receives a
        deterministic conflict report naming the winning operation.
        """
        # Handlers have no rollback path (failed ones may have left partial
        # writes); _durable_write commits on every outcome so the log stays
        # an exact mirror of in-memory state.
        with self._durable_write():
            result = self._apply_locked(operation)
        return result

    def _apply_locked(self, operation: Operation) -> ApplyResult:
        active_before = {node.instance_id for node in self.forest.all_instances()}
        version_before = self._state_version

        instance = self.forest.instance_by_id(operation.instance_id)
        if instance is None:
            result = ApplyResult(
                operation=operation,
                status=OperationStatus.CONFLICT,
                message=self._conflict_message(
                    operation.instance_id,
                    f"AUnit instance {operation.instance_id} is no longer active; "
                    "the operation conflicts with a concurrent update",
                ),
                conflict_with=self._conflict_winner(operation.instance_id),
                state_version=self._state_version,
            )
            self._record(operation, result, active_before, version_before)
            return result

        if not instance.is_basic:
            result = ApplyResult(
                operation=operation,
                status=OperationStatus.REJECTED,
                message=f"instance {operation.instance_id} is not a Basic AUnit instance",
                state_version=self._state_version,
            )
            self._record(operation, result, active_before, version_before)
            return result

        operation.session_id = instance.session_id

        # If the acting session is stale (lazy mode), refresh it first: the
        # user is interacting with it, which is exactly the "page reload"
        # moment at which changes must be propagated.  The conflict check is
        # then repeated against the fresh tree.
        if instance.session_id in self._dirty_sessions:
            self._ensure_fresh(instance.session_id)
            instance = self.forest.instance_by_id(operation.instance_id)
            if instance is None:
                result = ApplyResult(
                    operation=operation,
                    status=OperationStatus.CONFLICT,
                    message=self._conflict_message(
                        operation.instance_id,
                        f"AUnit instance {operation.instance_id} disappeared when its "
                        "session was refreshed; the operation conflicts with a concurrent update",
                    ),
                    conflict_with=self._conflict_winner(operation.instance_id),
                    state_version=self._state_version,
                )
                self._record(operation, result, active_before, version_before)
                return result

        spec_kind = instance.decl.basic_kind
        if spec_kind in ("ShowRow", "ShowTable"):
            result = ApplyResult(
                operation=operation,
                status=OperationStatus.REJECTED,
                message=f"Basic AUnit {spec_kind} is display-only and cannot return",
                state_version=self._state_version,
            )
            self._record(operation, result, active_before, version_before)
            return result

        try:
            outcome = self._returns.process(instance, operation.values)
        except HandlerError as exc:
            result = ApplyResult(
                operation=operation,
                status=OperationStatus.REJECTED,
                message=str(exc),
                state_version=self._state_version,
            )
            self._record(operation, result, active_before, version_before)
            return result

        built_before = self._builder.instances_built
        reused_before = self._builder.instances_reused
        self._reactivate_after(operation, outcome)

        status = (
            OperationStatus.APPLIED if outcome.any_handler_fired else OperationStatus.NO_HANDLER
        )
        if status == OperationStatus.APPLIED:
            active_after = {node.instance_id for node in self.forest.all_instances()}
            self._note_invalidations(operation, active_before - active_after)
        result = ApplyResult(
            operation=operation,
            status=status,
            handlers=outcome.handlers_fired,
            returned_instance_ids=[node.instance_id for node in outcome.returned_instances],
            state_version=self._state_version,
            instances_rebuilt=self._builder.instances_built - built_before,
            instances_reused=self._builder.instances_reused - reused_before,
        )
        self._record(operation, result, active_before, version_before)
        return result

    # -- first-committer-wins conflict attribution -------------------------------

    def _note_invalidations(self, operation: Operation, vanished: Set[int]) -> None:
        """Remember which committed operation invalidated each vanished instance."""
        for instance_id in vanished:
            self._invalidated_by[instance_id] = (
                operation.operation_id,
                operation.session_id,
            )
        self._trim_invalidation_log()

    def _trim_invalidation_log(self) -> None:
        while len(self._invalidated_by) > _INVALIDATION_LOG_LIMIT:
            self._invalidated_by.pop(next(iter(self._invalidated_by)))

    def _conflict_winner(self, instance_id: int) -> Optional[int]:
        entry = self._invalidated_by.get(instance_id)
        return entry[0] if entry is not None else None

    def _conflict_message(self, instance_id: int, fallback: str) -> str:
        entry = self._invalidated_by.get(instance_id)
        if entry is None:
            return fallback
        winner_id, winner_session = entry
        who = f" from session {winner_session!r}" if winner_session else ""
        return (
            f"AUnit instance {instance_id} is no longer active: it was "
            f"invalidated by operation #{winner_id}{who}, which committed first; "
            "the operation conflicts with that concurrent update"
        )

    # ------------------------------------------------------------------
    # Reactivation
    # ------------------------------------------------------------------

    def reactivate_all(self) -> None:
        """Rebuild every session's activation tree immediately."""
        with self._rw.write():
            for session_id in self.forest.session_ids():
                self._rebuild_session(session_id)
            self._dirty_sessions.clear()

    def refresh(self, session_id: Optional[str] = None) -> None:
        """Explicitly refresh one session (the user's page reload) or all."""
        if session_id is None:
            self.reactivate_all()
        else:
            with self._rw.write():
                self._rebuild_session(session_id)
                self._dirty_sessions.discard(session_id)

    def _reactivate_after(self, operation: Operation, outcome) -> None:
        acting_session = operation.session_id
        if self.reactivation == "eager":
            self.reactivate_all()
            return
        if acting_session is not None:
            self._rebuild_session(acting_session)
            self._dirty_sessions.discard(acting_session)
        for session_id in self.forest.session_ids():
            if session_id != acting_session:
                self._dirty_sessions.add(session_id)
                self._dirty_markers.setdefault(
                    session_id, (operation.operation_id, operation.session_id)
                )

    def _ensure_fresh(self, session_id: str) -> None:
        if session_id in self._dirty_sessions:
            self._rebuild_session(session_id)
            self._dirty_sessions.discard(session_id)

    def _rebuild_session(self, session_id: str) -> None:
        old_root = self.forest.root_for_session(session_id)
        preserved: Dict[InstanceLabel, PreservedInstance] = {}
        for node in old_root.walk():
            if not node.returned:
                preserved[node.label] = PreservedInstance(
                    instance_id=node.instance_id, local_tables=node.local_tables
                )
        inputs = self._session_inputs.get(session_id, {})
        new_root = self._builder.build_session_tree(
            session_id, inputs, preserved, old_root=old_root
        )
        self.forest.replace_root(session_id, new_root)
        marker = self._dirty_markers.pop(session_id, None)
        if marker is not None:
            # Deferred (lazy) rebuild: attribute instances that vanished to
            # the first operation that staled this session, unless a more
            # precise attribution was already recorded.
            new_ids = {node.instance_id for node in new_root.walk()}
            for node in old_root.walk():
                if node.instance_id not in new_ids:
                    self._invalidated_by.setdefault(node.instance_id, marker)
            self._trim_invalidation_log()

    # ------------------------------------------------------------------
    # History
    # ------------------------------------------------------------------

    def _record(
        self,
        operation: Operation,
        result: ApplyResult,
        active_before: Set[int],
        version_before: int,
    ) -> None:
        if self.history is None:
            return
        self.history.record(
            operation=operation,
            result=result,
            active_ids_before=active_before,
            state_version_before=version_before,
            state_version_after=self._state_version,
            forest_size_after=self.forest.size(),
        )
