"""The return phase (Section 3.2.4 of the paper).

A return is triggered by a user action on a Basic AUnit instance.  The
instance's output tables are populated from the user's input, then the
return is processed by the handlers of the activator that activated it:

* the conditions of the activator's handlers are evaluated; one satisfied
  handler is chosen (the first in declaration order — the paper allows a
  nondeterministic choice) and its action executed;
* a *return* handler writes the parent's output and persistent tables and
  causes the parent to return in turn, recursively;
* a non-return handler writes the parent's local and persistent tables and
  ends the return phase;
* if no handler condition holds, nothing happens and the system proceeds to
  reactivation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import HandlerError
from repro.hilda.ast import ActivatorDecl, Assignment, HandlerDecl
from repro.relational.table import Table
from repro.runtime.context import (
    build_read_catalog,
    child_visible_tables,
    make_activation_tuple_table,
    run_assignments,
)
from repro.runtime.instance import AUnitInstance
from repro.runtime.operations import HandlerFired


if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import HildaEngine

__all__ = ["ReturnProcessor", "ReturnOutcome"]


class ReturnOutcome:
    """What happened during one return phase."""

    def __init__(self) -> None:
        self.handlers_fired: List[HandlerFired] = []
        self.returned_instances: List[AUnitInstance] = []
        self.persistent_written = False

    @property
    def any_handler_fired(self) -> bool:
        return bool(self.handlers_fired)


class ReturnProcessor:
    """Processes the return of a Basic AUnit instance up the activation tree."""

    def __init__(self, engine: "HildaEngine") -> None:
        self.engine = engine
        self.program = engine.program

    # -- public API -----------------------------------------------------------------

    def process(
        self, basic_instance: AUnitInstance, output_values: Optional[Sequence[Any]]
    ) -> ReturnOutcome:
        outcome = ReturnOutcome()
        self._populate_basic_output(basic_instance, output_values)
        basic_instance.returned = True
        outcome.returned_instances.append(basic_instance)

        child = basic_instance
        while True:
            parent = child.parent
            if parent is None:
                break
            activator = parent.decl.activator(child.activator_name)
            handler = self._select_handler(parent, activator, child)
            if handler is None:
                break
            written = self._execute_handler(parent, activator, child, handler, outcome)
            outcome.handlers_fired.append(
                HandlerFired(
                    aunit_name=parent.decl.name,
                    activator_name=activator.name,
                    handler_name=handler.name,
                    is_return=handler.is_return,
                    written_tables=tuple(written),
                )
            )
            if handler.is_return:
                if parent.is_root:
                    raise HandlerError(
                        f"return handler {handler.name!r} fired on the root AUnit "
                        f"{parent.decl.name!r}, but the root cannot return"
                    )
                parent.returned = True
                outcome.returned_instances.append(parent)
                child = parent
                continue
            break
        return outcome

    # -- pieces ------------------------------------------------------------------------

    def _populate_basic_output(
        self, instance: AUnitInstance, output_values: Optional[Sequence[Any]]
    ) -> None:
        """Fill the Basic AUnit's output table from the user-supplied row."""
        if not instance.decl.output_schema.is_empty():
            instance.create_output_tables()
            output_table = instance.output_tables.get("output")
            if output_table is None:  # pragma: no cover - defensive
                return
            values = output_values
            if values is None and instance.decl.basic_kind == "SelectRow":
                # Selecting is implicit when exactly one row is on display.
                input_table = instance.input_tables.get("input")
                if input_table is not None and len(input_table) == 1:
                    values = input_table.rows[0]
            if values is None:
                raise HandlerError(
                    f"Basic AUnit {instance.decl.name!r} (id={instance.instance_id}) "
                    "requires a row of values to return"
                )
            output_table.insert(values)
        elif instance.decl.output_schema.is_empty() and not instance.is_basic:
            instance.create_output_tables()

    def _select_handler(
        self,
        parent: AUnitInstance,
        activator: ActivatorDecl,
        child: AUnitInstance,
    ) -> Optional[HandlerDecl]:
        """The first handler whose condition is satisfied (or has no condition)."""
        if not activator.handlers:
            return None
        catalog = self._handler_catalog(parent, activator, child)
        executor = self.engine.make_executor(catalog)
        for handler in activator.handlers:
            if handler.condition is None:
                return handler
            try:
                relation = executor.execute_query(handler.condition.query)
            except Exception as exc:
                raise HandlerError(
                    f"condition of handler {parent.decl.name}.{activator.name}."
                    f"{handler.name} failed: {exc}"
                ) from exc
            if relation.rows:
                return handler
        return None

    def _execute_handler(
        self,
        parent: AUnitInstance,
        activator: ActivatorDecl,
        child: AUnitInstance,
        handler: HandlerDecl,
        outcome: ReturnOutcome,
    ) -> List[str]:
        """Run a handler's action; returns the names of the tables written."""
        if handler.is_return:
            parent.create_output_tables()

        catalog = self._handler_catalog(
            parent, activator, child, output_shadows_input=handler.is_return
        )
        persist = self.engine.persist_tables(parent.decl.name)

        def resolve_target(assignment: Assignment) -> Optional[Table]:
            name = assignment.simple_target
            if assignment.target.startswith("out.") and name in parent.output_tables:
                return parent.output_tables[name]
            if handler.is_return:
                if name in parent.output_tables:
                    return parent.output_tables[name]
                if name in persist:
                    return persist[name]
                return None
            if name in parent.local_tables:
                return parent.local_tables[name]
            if name in persist:
                return persist[name]
            return None

        written = run_assignments(
            handler.actions,
            catalog,
            self.engine.functions,
            resolve_target,
            location=f"{parent.decl.name}.{activator.name}.{handler.name}",
            executor_factory=self.engine.make_executor,
        )
        if any(assignment.simple_target in persist for assignment in handler.actions):
            outcome.persistent_written = True
        if written:
            self.engine.bump_state_version()
        return written

    def _handler_catalog(
        self,
        parent: AUnitInstance,
        activator: ActivatorDecl,
        child: AUnitInstance,
        output_shadows_input: bool = False,
    ):
        persist = self.engine.persist_tables(parent.decl.name)
        activation_tuple_table = None
        if activator.activation_schema is not None and child.activation_tuple is not None:
            activation_tuple_table = make_activation_tuple_table(
                activator.activation_schema, child.activation_tuple
            )
        child_tables = child_visible_tables(child.child_ref_name or child.decl.name, child)
        return build_read_catalog(
            parent,
            persist,
            activation_tuple=activation_tuple_table,
            child_tables=child_tables,
            include_output=True,
            output_shadows_input=output_shadows_input,
        )
