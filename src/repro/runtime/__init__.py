"""The Hilda runtime: activation forests, execution phases, sessions,
conflict detection, concurrency strategies and execution histories
(``docs/architecture.md`` § "repro.runtime"; locking and
first-committer-wins conflict semantics in ``docs/concurrency.md``)."""

from repro.runtime.activation import ActivationBuilder, PreservedInstance
from repro.runtime.engine import HildaEngine
from repro.runtime.forest import ActivationForest
from repro.runtime.history import ExecutionHistory, HistoryChecker, HistoryEntry
from repro.runtime.instance import AUnitInstance, activation_key
from repro.runtime.operations import ApplyResult, HandlerFired, Operation, OperationStatus
from repro.runtime.returns import ReturnOutcome, ReturnProcessor

__all__ = [
    "ActivationBuilder",
    "ActivationForest",
    "ApplyResult",
    "AUnitInstance",
    "ExecutionHistory",
    "HandlerFired",
    "HildaEngine",
    "HistoryChecker",
    "HistoryEntry",
    "Operation",
    "OperationStatus",
    "PreservedInstance",
    "ReturnOutcome",
    "ReturnProcessor",
    "activation_key",
]
