"""The activation (and reactivation) phase.

The :class:`ActivationBuilder` constructs activation trees: starting from a
root AUnit instance it evaluates each activator's activation query, applies
any activation filters (added by inheritance, Figure 12), creates one child
instance per activation tuple, computes the child's input tables with the
activator's input query, and recurses.

The *reactivation* phase (Section 3.2.5) is the same construction with one
difference: an instance whose label already existed before the return phase
and which did not return keeps its local-table contents and its instance ID.
That prior state is supplied to the builder as a *preservation map*.

Two dependency-tracking optimizations ride on the construction
(``docs/caching.md``):

* every activation query consults the engine's **activation cache**, keyed
  on the version vector of the tables the query's plan reads, so a write to
  an unrelated table no longer invalidates the memoised rows;
* **delta reactivation** — while building, each instance records per
  activator the ``(table, version)`` vector its activation and input
  queries read.  On a rebuild, an activator whose recorded versions are all
  unchanged must produce the identical child set with identical input
  tables, so the old child instances are *reused* (re-parented as-is when
  their own subtrees are also clean, or rebuilt shallowly around adopted
  input tables when only a deeper subtree changed) instead of recomputed.
  Reused instances keep their IDs and table objects, which both preserves
  the first-committer-wins conflict semantics and keeps the renderer's
  fragment fingerprints stable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro.errors import ActivationError, UnknownTableError
from repro.hilda.ast import ActivatorDecl, Assignment, AUnitDecl
from repro.relational.table import Table
from repro.runtime.context import (
    DictCatalog,
    build_read_catalog,
    make_activation_tuple_table,
    run_assignments,
)
from repro.runtime.instance import AUnitInstance, InstanceLabel, activation_key


if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import HildaEngine

__all__ = ["ActivationBuilder", "PreservedInstance", "dep_vector", "deps_current"]

#: A dependency version vector: ``((table name, version), ...)`` sorted by name.
DepVector = Tuple[Tuple[str, int], ...]

#: Sentinel distinguishing "never recorded" from "recorded as uncacheable".
_NO_RECORD = object()


def dep_vector(names, catalog) -> Optional[DepVector]:
    """Resolve table names to a ``(name, version)`` vector (None if any fail)."""
    deps = []
    for name in sorted(names):
        try:
            deps.append((name, catalog.resolve_table(name).version))
        except UnknownTableError:
            return None
    return tuple(deps)


def deps_current(deps: DepVector, catalog) -> bool:
    """True when every table in the vector still resolves to the same version."""
    for name, version in deps:
        try:
            table = catalog.resolve_table(name)
        except UnknownTableError:
            return False
        if table.version != version:
            return False
    return True


class PreservedInstance:
    """Local state carried over from a surviving instance (same label)."""

    __slots__ = ("instance_id", "local_tables")

    def __init__(self, instance_id: int, local_tables: Dict[str, Table]) -> None:
        self.instance_id = instance_id
        self.local_tables = local_tables


class ActivationBuilder:
    """Builds activation trees for the engine."""

    def __init__(self, engine: "HildaEngine") -> None:
        self.engine = engine
        self.program = engine.program
        #: Cumulative counters (delta-reactivation observability): instances
        #: constructed from scratch vs adopted wholesale from the old tree.
        #: The engine snapshots them around reactivations to report per
        #: operation (:attr:`~repro.runtime.operations.ApplyResult`).
        self.instances_built = 0
        self.instances_reused = 0
        #: (adopted old child, new parent) pairs collected during one build;
        #: the parent pointers are flipped only once the whole tree built
        #: successfully, so a failed rebuild leaves the still-installed old
        #: tree completely untouched.
        self._pending_reparent: List[Tuple[AUnitInstance, AUnitInstance]] = []

    # -- public API ---------------------------------------------------------------

    def build_session_tree(
        self,
        session_id: str,
        input_rows: Dict[str, List[Sequence[Any]]],
        preserved: Optional[Dict[InstanceLabel, PreservedInstance]] = None,
        old_root: Optional[AUnitInstance] = None,
    ) -> AUnitInstance:
        """Build (or rebuild) the activation tree of one session.

        ``old_root`` is the session's previous tree during reactivation;
        when delta reactivation is enabled its dependency records drive
        subtree reuse (see module doc).
        """
        with self.engine.id_scope(session_id):
            return self._build_tree(session_id, input_rows, preserved, old_root)

    def _build_tree(
        self,
        session_id: str,
        input_rows: Dict[str, List[Sequence[Any]]],
        preserved: Optional[Dict[InstanceLabel, PreservedInstance]],
        old_root: Optional[AUnitInstance],
    ) -> AUnitInstance:
        preserved = preserved or {}
        delta = (
            old_root is not None
            and self.engine.dependency_tracking
            and self.engine.delta_reactivation
        )
        root_decl = self.program.root
        self.engine.ensure_persistent(root_decl)
        label: InstanceLabel = ("session", session_id)
        root = self._new_instance(
            decl=root_decl,
            label=label,
            parent=None,
            activator=None,
            activation_tuple=None,
            session_id=session_id,
            preserved=preserved,
        )
        if delta:
            # Session inputs are fixed at session start, so the prior root's
            # input tables hold exactly the rows about to be re-applied;
            # adopting the objects keeps their version stamps, which is what
            # lets child dependency vectors referencing them stay valid.
            self._adopt_input_tables(root, old_root)
        else:
            root.create_input_tables()
        for table_name, rows in (input_rows or {}).items():
            table = root.input_tables.get(table_name)
            if table is None:
                raise ActivationError(
                    f"root AUnit {root_decl.name!r} has no input table {table_name!r}"
                )
            table.replace(rows)
        self._initialise_local(root, preserved)
        self._pending_reparent = []
        self._activate_children(root, preserved, old_root if delta else None)
        # Commit point: only now that the whole tree built without raising is
        # the old tree mutated (adopted subtrees re-parented into the new
        # one).  An exception above leaves the installed tree untouched.
        for adopted, new_parent in self._pending_reparent:
            adopted.parent = new_parent
        self._pending_reparent = []
        return root

    # -- instance construction --------------------------------------------------------

    def _new_instance(
        self,
        decl: AUnitDecl,
        label: InstanceLabel,
        parent: Optional[AUnitInstance],
        activator: Optional[ActivatorDecl],
        activation_tuple: Optional[Tuple[Any, ...]],
        session_id: Optional[str],
        preserved: Dict[InstanceLabel, PreservedInstance],
    ) -> AUnitInstance:
        prior = preserved.get(label)
        instance_id = prior.instance_id if prior is not None else self.engine.next_instance_id()
        self.instances_built += 1
        return AUnitInstance(
            instance_id=instance_id,
            label=label,
            decl=decl,
            parent=parent,
            activator_name=activator.name if activator is not None else None,
            child_ref_name=activator.child.name if activator is not None else None,
            activation_tuple=activation_tuple,
            activation_schema=activator.activation_schema if activator is not None else None,
            session_id=session_id,
        )

    @staticmethod
    def _adopt_input_tables(instance: AUnitInstance, old: AUnitInstance) -> None:
        """Take over a prior incarnation's input-table objects (same contents)."""
        instance.input_tables = dict(old.input_tables)
        for schema in instance.decl.input_schema:
            if schema.name not in instance.input_tables:
                instance.input_tables[schema.name] = Table(schema)

    def _initialise_local(
        self,
        instance: AUnitInstance,
        preserved: Dict[InstanceLabel, PreservedInstance],
    ) -> None:
        """Initialise (or carry over) the instance's local tables."""
        prior = preserved.get(instance.label)
        if prior is not None and not instance.decl.synchronized:
            instance.adopt_local_tables(prior.local_tables)
            # Tables added to the schema after the snapshot (only possible for
            # programmatically constructed programs) are created empty.
            for schema in instance.decl.local_schema:
                if schema.name not in instance.local_tables:
                    instance.local_tables[schema.name] = Table(schema)
            return

        instance.create_local_tables()
        if not instance.decl.local_query:
            instance.local_deps = ()
            return
        persist = self.engine.persist_tables(instance.decl.name)
        catalog = build_read_catalog(instance, persist, include_output=False)
        tracker: Optional[Set[str]] = set() if self.engine.dependency_tracking else None
        run_assignments(
            instance.decl.local_query,
            catalog,
            self.engine.functions,
            lambda assignment: instance.local_tables.get(assignment.simple_target),
            location=f"{instance.decl.name}.local_query",
            executor_factory=self.engine.make_executor,
            read_tracker=tracker,
        )
        if tracker is not None:
            if any(
                self.engine.query_is_global(assignment.query.query)
                for assignment in instance.decl.local_query
            ):
                instance.local_deps = None  # cross-shard read: untrackable
            else:
                instance.local_deps = dep_vector(tracker, catalog)

    # -- children ------------------------------------------------------------------------

    def _activate_children(
        self,
        instance: AUnitInstance,
        preserved: Dict[InstanceLabel, PreservedInstance],
        old_node: Optional[AUnitInstance] = None,
    ) -> None:
        for activator in instance.decl.activators:
            child_decl = self.program.resolve_child(activator.child)
            self.engine.ensure_persistent(child_decl)
            if old_node is not None and self._reactivate_delta(
                instance, activator, child_decl, preserved, old_node
            ):
                continue
            self._build_children(instance, activator, child_decl, preserved, old_node)

    def _build_children(
        self,
        instance: AUnitInstance,
        activator: ActivatorDecl,
        child_decl: AUnitDecl,
        preserved: Dict[InstanceLabel, PreservedInstance],
        old_node: Optional[AUnitInstance],
    ) -> None:
        """Run the activator's queries and construct its child instances."""
        persist = self.engine.persist_tables(instance.decl.name)
        catalog = build_read_catalog(instance, persist, include_output=False)
        tuples, read_names = self._activation_tuples(instance, activator, catalog)
        if read_names is not None and any(
            self.engine.query_is_global(assignment.query.query)
            for assignment in activator.input_query
        ):
            # A cross-shard input query reads peer shards whose writes move
            # no local version stamp, so its footprint is untrackable; the
            # activator must rebuild (re-scattering) on every reactivation.
            read_names = None
        # Input-query reads are tracked apart from the activation query's so
        # the split vectors below can tell "only activation inputs moved"
        # from "the child input tables would change too".
        input_reads: Optional[Set[str]] = set() if read_names is not None else None

        old_children: Optional[Dict[InstanceLabel, AUnitInstance]] = None
        if old_node is not None:
            old_children = {
                child.label: child
                for child in old_node.children
                if child.activator_name == activator.name
            }

        for activation_tuple in tuples:
            key = activation_key(activator.activation_schema, activation_tuple)
            label: InstanceLabel = (instance.label, activator.name, key)
            child = self._new_instance(
                decl=child_decl,
                label=label,
                parent=instance,
                activator=activator,
                activation_tuple=activation_tuple,
                session_id=instance.session_id,
                preserved=preserved,
            )
            child.create_input_tables()
            self._compute_child_input(instance, activator, child, input_reads)
            instance.children.append(child)
            self._initialise_local(child, preserved)
            self._activate_children(
                child,
                preserved,
                old_children.get(label) if old_children else None,
            )

        if read_names is None:
            instance.activator_deps[activator.name] = None
            instance.activator_act_deps[activator.name] = None
            instance.activator_input_deps[activator.name] = None
        else:
            # The per-child synthetic tables (the activation tuple and the
            # child's own input tables read back by later assignments) are
            # functions of the queries' other inputs, so they are excluded
            # from the recorded footprint; everything left resolves in the
            # instance's plain read catalog.
            excluded = {"activationTuple"}
            excluded.update(
                f"{activator.child.name}.{schema.name}"
                for schema in child_decl.input_schema
            )
            instance.activator_deps[activator.name] = dep_vector(
                (read_names | input_reads) - excluded, catalog
            )
            instance.activator_act_deps[activator.name] = dep_vector(
                read_names - excluded, catalog
            )
            instance.activator_input_deps[activator.name] = dep_vector(
                input_reads - excluded, catalog
            )

    # -- delta reactivation -------------------------------------------------------------

    def _reactivate_delta(
        self,
        instance: AUnitInstance,
        activator: ActivatorDecl,
        child_decl: AUnitDecl,
        preserved: Dict[InstanceLabel, PreservedInstance],
        old_node: AUnitInstance,
    ) -> bool:
        """Reuse the old tree's children for one activator if its deps are unchanged.

        Returns True when the activator was handled (children adopted or
        shallowly rebuilt); False sends the caller down the full rebuild
        path.  Under incremental maintenance a stale dependency vector gets
        a second chance: when only the activation query's inputs moved and
        its (cache-patched) *results* compare equal to the old child set,
        the children are still adoptable (see :meth:`_results_unchanged`).
        """
        deps = old_node.activator_deps.get(activator.name, _NO_RECORD)
        if deps is _NO_RECORD or deps is None:
            return False
        persist = self.engine.persist_tables(instance.decl.name)
        catalog = build_read_catalog(instance, persist, include_output=False)
        if not deps_current(deps, catalog):
            if not self._results_unchanged(instance, activator, old_node, catalog):
                return False
            deps = dep_vector([name for name, _ in deps], catalog)
            if deps is None:
                return False

        # The activation and input queries would produce identical results:
        # same child set, same activation tuples, same child input tables.
        old_children = [
            child for child in old_node.children if child.activator_name == activator.name
        ]
        for old_child in old_children:
            if self._subtree_clean(old_child):
                self._pending_reparent.append((old_child, instance))
                instance.children.append(old_child)
                self.instances_reused += sum(1 for _ in old_child.walk())
            else:
                # Something deeper changed (or the child returned): rebuild
                # the node itself, but skip re-running the input query — its
                # dependencies are unchanged, so the old input tables hold
                # exactly what recomputation would produce.
                child = self._new_instance(
                    decl=child_decl,
                    label=old_child.label,
                    parent=instance,
                    activator=activator,
                    activation_tuple=old_child.activation_tuple,
                    session_id=instance.session_id,
                    preserved=preserved,
                )
                self._adopt_input_tables(child, old_child)
                instance.children.append(child)
                self._initialise_local(child, preserved)
                self._activate_children(child, preserved, old_child)
        instance.activator_deps[activator.name] = deps
        for split in ("activator_act_deps", "activator_input_deps"):
            recorded = getattr(old_node, split).get(activator.name)
            getattr(instance, split)[activator.name] = (
                dep_vector([name for name, _ in recorded], catalog)
                if recorded is not None
                else None
            )
        return True

    def _results_unchanged(
        self,
        instance: AUnitInstance,
        activator: ActivatorDecl,
        old_node: AUnitInstance,
        catalog: DictCatalog,
    ) -> bool:
        """Prove one activator's *results* unchanged despite moved versions.

        Entered when the activator's combined dependency vector went stale.
        If the input query's own footprint is still current, the only thing
        that can differ is the activation tuple set — so re-evaluate the
        activation query (served by the activation cache, which under
        incremental maintenance patches its stale entry through the delta
        program rather than recomputing) and compare against the old child
        set.  Equal tuples mean a rebuild would reproduce the children
        verbatim, so the caller may adopt them even though table versions
        moved.
        """
        if self.engine.maintenance != "incremental":
            return False
        if activator.activation_query is None or activator.activation_filters:
            return False
        input_deps = old_node.activator_input_deps.get(activator.name, _NO_RECORD)
        if input_deps is _NO_RECORD or input_deps is None:
            return False
        if not deps_current(input_deps, catalog):
            return False
        tuples, _ = self._activation_tuples(instance, activator, catalog)
        old_tuples = [
            child.activation_tuple
            for child in old_node.children
            if child.activator_name == activator.name
        ]
        if list(tuples) != old_tuples:
            return False
        self.engine.maintenance_stats.results_unchanged += 1
        return True

    def _subtree_clean(self, node: AUnitInstance) -> bool:
        """True when a whole old subtree can be adopted as-is.

        Requires that no instance in the subtree returned, and that every
        recorded dependency vector (activator queries, plus the local query
        for synchronized AUnits) still matches the current table versions.
        The vectors resolve against the node's *own* catalog, whose tables
        are the very objects being adopted, so a reused subtree is exactly
        the tree a full rebuild would have produced.
        """
        if node.returned:
            return False
        if node.decl.synchronized or node.decl.activators:
            persist = self.engine.persist_tables(node.decl.name)
            catalog = build_read_catalog(node, persist, include_output=False)
            if node.decl.synchronized:
                if node.local_deps is None or not deps_current(node.local_deps, catalog):
                    return False
            for activator in node.decl.activators:
                deps = node.activator_deps.get(activator.name, _NO_RECORD)
                if deps is _NO_RECORD or deps is None:
                    return False
                if not deps_current(deps, catalog):
                    return False
        for child in node.children:
            if not self._subtree_clean(child):
                return False
        return True

    # -- activation queries -------------------------------------------------------------

    def _activation_tuples(
        self, instance: AUnitInstance, activator: ActivatorDecl, catalog: DictCatalog
    ) -> Tuple[List[Optional[Tuple[Any, ...]]], Optional[Set[str]]]:
        """The activation tuples of one activator (None = single unconditional child).

        Also returns the names of the tables read while computing them — the
        start of the activator's dependency footprint — or None when the
        footprint cannot be tracked (activation filters run per-row queries
        whose reads are not recorded).
        """
        track = self.engine.dependency_tracking
        if activator.activation_query is None:
            if activator.activation_filters:
                # A filtered activator without an activation query activates
                # its single child only when every filter returns rows.
                executor = self.engine.make_executor(catalog)
                for filter_block in activator.activation_filters:
                    if not executor.execute_query(filter_block.query).rows:
                        return [], None
                return [None], None
            return [None], (set() if track else None)

        executor = self.engine.make_executor(catalog)
        query = activator.activation_query.query
        query_reads: Optional[Set[str]] = set(executor.read_set(query)) if track else None
        if query_reads is not None and self.engine.query_is_global(query):
            query_reads = None  # cross-shard read: local versions can't witness it
        cached = self.engine.activation_cache_lookup(
            instance, activator, catalog, executor=executor
        )
        if cached is not None:
            rows = cached
        else:
            try:
                rows = executor.execute_query(query).as_tuples()
            except Exception as exc:
                raise ActivationError(
                    f"activation query of {instance.decl.name}.{activator.name} failed: {exc}"
                ) from exc
            self.engine.activation_cache_store(
                instance, activator, rows, query_reads, catalog,
                query=query, executor=executor,
            )

        if not activator.activation_filters:
            return list(rows), query_reads

        persist = self.engine.persist_tables(instance.decl.name)
        schema = activator.activation_schema
        kept: List[Optional[Tuple[Any, ...]]] = []
        for row in rows:
            tuple_table = make_activation_tuple_table(schema, row)
            filter_catalog = build_read_catalog(
                instance, persist, activation_tuple=tuple_table, include_output=False
            )
            filter_executor = self.engine.make_executor(filter_catalog)
            if all(
                filter_executor.execute_query(filter_block.query).rows
                for filter_block in activator.activation_filters
            ):
                kept.append(row)
        return kept, None

    def _compute_child_input(
        self,
        instance: AUnitInstance,
        activator: ActivatorDecl,
        child: AUnitInstance,
        read_tracker: Optional[Set[str]] = None,
    ) -> None:
        """Evaluate the activator's input query to fill the child's input tables."""
        if not activator.input_query:
            return
        persist = self.engine.persist_tables(instance.decl.name)
        activation_tuple_table = None
        if activator.activation_schema is not None and child.activation_tuple is not None:
            activation_tuple_table = make_activation_tuple_table(
                activator.activation_schema, child.activation_tuple
            )
        # The child's input tables are readable under their qualified names so
        # later assignments of the same input query may refer to earlier ones.
        child_qualified = {
            f"{activator.child.name}.{name}": table
            for name, table in child.input_tables.items()
        }
        catalog = build_read_catalog(
            instance,
            persist,
            activation_tuple=activation_tuple_table,
            child_tables=child_qualified,
            include_output=False,
        )

        def resolve_target(assignment: Assignment) -> Optional[Table]:
            return child.input_tables.get(assignment.simple_target)

        run_assignments(
            activator.input_query,
            catalog,
            self.engine.functions,
            resolve_target,
            location=f"{instance.decl.name}.{activator.name}.input_query",
            executor_factory=self.engine.make_executor,
            read_tracker=read_tracker,
        )
