"""The activation (and reactivation) phase.

The :class:`ActivationBuilder` constructs activation trees: starting from a
root AUnit instance it evaluates each activator's activation query, applies
any activation filters (added by inheritance, Figure 12), creates one child
instance per activation tuple, computes the child's input tables with the
activator's input query, and recurses.

The *reactivation* phase (Section 3.2.5) is the same construction with one
difference: an instance whose label already existed before the return phase
and which did not return keeps its local-table contents and its instance ID.
That prior state is supplied to the builder as a *preservation map*.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import ActivationError
from repro.hilda.ast import ActivatorDecl, Assignment, AUnitDecl
from repro.relational.table import Table
from repro.runtime.context import (
    DictCatalog,
    build_read_catalog,
    make_activation_tuple_table,
    run_assignments,
)
from repro.runtime.instance import AUnitInstance, InstanceLabel, activation_key


if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import HildaEngine

__all__ = ["ActivationBuilder", "PreservedInstance"]


class PreservedInstance:
    """Local state carried over from a surviving instance (same label)."""

    __slots__ = ("instance_id", "local_tables")

    def __init__(self, instance_id: int, local_tables: Dict[str, Table]) -> None:
        self.instance_id = instance_id
        self.local_tables = local_tables


class ActivationBuilder:
    """Builds activation trees for the engine."""

    def __init__(self, engine: "HildaEngine") -> None:
        self.engine = engine
        self.program = engine.program

    # -- public API ---------------------------------------------------------------

    def build_session_tree(
        self,
        session_id: str,
        input_rows: Dict[str, List[Sequence[Any]]],
        preserved: Optional[Dict[InstanceLabel, PreservedInstance]] = None,
    ) -> AUnitInstance:
        """Build (or rebuild) the activation tree of one session."""
        preserved = preserved or {}
        root_decl = self.program.root
        self.engine.ensure_persistent(root_decl)
        label: InstanceLabel = ("session", session_id)
        root = self._new_instance(
            decl=root_decl,
            label=label,
            parent=None,
            activator=None,
            activation_tuple=None,
            session_id=session_id,
            preserved=preserved,
        )
        root.create_input_tables()
        for table_name, rows in (input_rows or {}).items():
            table = root.input_tables.get(table_name)
            if table is None:
                raise ActivationError(
                    f"root AUnit {root_decl.name!r} has no input table {table_name!r}"
                )
            table.replace(rows)
        self._initialise_local(root, preserved)
        self._activate_children(root, preserved)
        return root

    # -- instance construction --------------------------------------------------------

    def _new_instance(
        self,
        decl: AUnitDecl,
        label: InstanceLabel,
        parent: Optional[AUnitInstance],
        activator: Optional[ActivatorDecl],
        activation_tuple: Optional[Tuple[Any, ...]],
        session_id: Optional[str],
        preserved: Dict[InstanceLabel, PreservedInstance],
    ) -> AUnitInstance:
        prior = preserved.get(label)
        instance_id = prior.instance_id if prior is not None else self.engine.next_instance_id()
        return AUnitInstance(
            instance_id=instance_id,
            label=label,
            decl=decl,
            parent=parent,
            activator_name=activator.name if activator is not None else None,
            child_ref_name=activator.child.name if activator is not None else None,
            activation_tuple=activation_tuple,
            activation_schema=activator.activation_schema if activator is not None else None,
            session_id=session_id,
        )

    def _initialise_local(
        self,
        instance: AUnitInstance,
        preserved: Dict[InstanceLabel, PreservedInstance],
    ) -> None:
        """Initialise (or carry over) the instance's local tables."""
        prior = preserved.get(instance.label)
        if prior is not None and not instance.decl.synchronized:
            instance.adopt_local_tables(prior.local_tables)
            # Tables added to the schema after the snapshot (only possible for
            # programmatically constructed programs) are created empty.
            for schema in instance.decl.local_schema:
                if schema.name not in instance.local_tables:
                    instance.local_tables[schema.name] = Table(schema)
            return

        instance.create_local_tables()
        if not instance.decl.local_query:
            return
        persist = self.engine.persist_tables(instance.decl.name)
        catalog = build_read_catalog(instance, persist, include_output=False)
        run_assignments(
            instance.decl.local_query,
            catalog,
            self.engine.functions,
            lambda assignment: instance.local_tables.get(assignment.simple_target),
            location=f"{instance.decl.name}.local_query",
            executor_factory=self.engine.make_executor,
        )

    # -- children ------------------------------------------------------------------------

    def _activate_children(
        self,
        instance: AUnitInstance,
        preserved: Dict[InstanceLabel, PreservedInstance],
    ) -> None:
        for activator in instance.decl.activators:
            child_decl = self.program.resolve_child(activator.child)
            self.engine.ensure_persistent(child_decl)
            for activation_tuple in self._activation_tuples(instance, activator):
                key = activation_key(activator.activation_schema, activation_tuple)
                label: InstanceLabel = (instance.label, activator.name, key)
                child = self._new_instance(
                    decl=child_decl,
                    label=label,
                    parent=instance,
                    activator=activator,
                    activation_tuple=activation_tuple,
                    session_id=instance.session_id,
                    preserved=preserved,
                )
                child.create_input_tables()
                self._compute_child_input(instance, activator, child)
                instance.children.append(child)
                self._initialise_local(child, preserved)
                self._activate_children(child, preserved)

    def _activation_tuples(
        self, instance: AUnitInstance, activator: ActivatorDecl
    ) -> List[Optional[Tuple[Any, ...]]]:
        """The activation tuples of one activator (None = single unconditional child)."""
        if activator.activation_query is None:
            if activator.activation_filters:
                # A filtered activator without an activation query activates
                # its single child only when every filter returns rows.
                persist = self.engine.persist_tables(instance.decl.name)
                catalog = build_read_catalog(instance, persist, include_output=False)
                executor = self.engine.make_executor(catalog)
                for filter_block in activator.activation_filters:
                    if not executor.execute_query(filter_block.query).rows:
                        return []
            return [None]

        persist = self.engine.persist_tables(instance.decl.name)
        catalog = build_read_catalog(instance, persist, include_output=False)
        executor = self.engine.make_executor(catalog)
        cached = self.engine.activation_cache_lookup(instance, activator)
        if cached is not None:
            rows = cached
        else:
            try:
                rows = executor.execute_query(activator.activation_query.query).as_tuples()
            except Exception as exc:
                raise ActivationError(
                    f"activation query of {instance.decl.name}.{activator.name} failed: {exc}"
                ) from exc
            self.engine.activation_cache_store(instance, activator, rows)

        if not activator.activation_filters:
            return list(rows)

        schema = activator.activation_schema
        kept: List[Optional[Tuple[Any, ...]]] = []
        for row in rows:
            tuple_table = make_activation_tuple_table(schema, row)
            filter_catalog = build_read_catalog(
                instance, persist, activation_tuple=tuple_table, include_output=False
            )
            filter_executor = self.engine.make_executor(filter_catalog)
            if all(
                filter_executor.execute_query(filter_block.query).rows
                for filter_block in activator.activation_filters
            ):
                kept.append(row)
        return kept

    def _compute_child_input(
        self,
        instance: AUnitInstance,
        activator: ActivatorDecl,
        child: AUnitInstance,
    ) -> None:
        """Evaluate the activator's input query to fill the child's input tables."""
        if not activator.input_query:
            return
        persist = self.engine.persist_tables(instance.decl.name)
        activation_tuple_table = None
        if activator.activation_schema is not None and child.activation_tuple is not None:
            activation_tuple_table = make_activation_tuple_table(
                activator.activation_schema, child.activation_tuple
            )
        # The child's input tables are readable under their qualified names so
        # later assignments of the same input query may refer to earlier ones.
        child_qualified = {
            f"{activator.child.name}.{name}": table
            for name, table in child.input_tables.items()
        }
        catalog = build_read_catalog(
            instance,
            persist,
            activation_tuple=activation_tuple_table,
            child_tables=child_qualified,
            include_output=False,
        )

        def resolve_target(assignment: Assignment) -> Optional[Table]:
            return child.input_tables.get(assignment.simple_target)

        run_assignments(
            activator.input_query,
            catalog,
            self.engine.functions,
            resolve_target,
            location=f"{instance.decl.name}.{activator.name}.input_query",
            executor_factory=self.engine.make_executor,
        )
