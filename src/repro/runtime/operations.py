"""Operations and apply results.

An *operation* (Definition 7 of the paper) is the return of a Basic AUnit
instance, triggered by a user: pressing a submit button, entering a row,
selecting a row, editing a row.  Operations are addressed by the ID of the
Basic AUnit instance the user interacted with; if that instance is no longer
part of the activation forest when the operation is applied, the operation
is rejected as an application-level conflict (Section 3.2.6).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

__all__ = ["Operation", "HandlerFired", "ApplyResult", "OperationStatus"]

_operation_counter = itertools.count(1)


class OperationStatus:
    """Outcome categories of applying an operation."""

    APPLIED = "applied"
    CONFLICT = "conflict"
    NO_HANDLER = "no_handler"
    REJECTED = "rejected"


@dataclass
class Operation:
    """A user action: return the Basic AUnit instance with ``instance_id``.

    ``values`` is the output row the user supplies (None for SubmitBasic and
    for SelectRow instances whose input has exactly one row).
    ``observed_state_version`` records the engine state version at the time
    the user saw the page containing the instance — used by the concurrency
    simulation and the history checker.
    """

    instance_id: int
    values: Optional[Sequence[Any]] = None
    session_id: Optional[str] = None
    observed_state_version: Optional[int] = None
    operation_id: int = field(default_factory=lambda: next(_operation_counter))
    description: str = ""

    def __repr__(self) -> str:
        return (
            f"Operation(#{self.operation_id} on instance {self.instance_id}"
            + (f", values={tuple(self.values)}" if self.values is not None else "")
            + ")"
        )


@dataclass
class HandlerFired:
    """One handler that fired while processing a return chain."""

    aunit_name: str
    activator_name: str
    handler_name: str
    is_return: bool
    written_tables: Tuple[str, ...] = ()

    def __str__(self) -> str:
        kind = "return handler" if self.is_return else "handler"
        return f"{self.aunit_name}.{self.activator_name}.{self.handler_name} ({kind})"


@dataclass
class ApplyResult:
    """The result of applying one operation.

    ``conflict_with`` carries first-committer-wins attribution: when the
    status is ``CONFLICT`` and the engine knows which committed operation
    invalidated the targeted instance, this is that operation's id (see
    ``docs/concurrency.md``).

    ``instances_rebuilt`` / ``instances_reused`` report how the reactivation
    phase triggered by this operation went: instances constructed from
    scratch versus old subtree instances adopted unchanged by delta
    reactivation (``docs/caching.md``).  Both are 0 for rejected operations
    and cover only the trees rebuilt eagerly (lazy-mode sessions rebuild on
    their next access).
    """

    operation: Operation
    status: str
    handlers: List[HandlerFired] = field(default_factory=list)
    returned_instance_ids: List[int] = field(default_factory=list)
    message: str = ""
    state_version: int = 0
    conflict_with: Optional[int] = None
    instances_rebuilt: int = 0
    instances_reused: int = 0

    @property
    def accepted(self) -> bool:
        return self.status == OperationStatus.APPLIED

    @property
    def conflicted(self) -> bool:
        return self.status == OperationStatus.CONFLICT

    def __repr__(self) -> str:
        return (
            f"ApplyResult({self.status}, handlers={[str(h) for h in self.handlers]}, "
            f"message={self.message!r})"
        )
