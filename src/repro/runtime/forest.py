"""The activation forest (Section 3.2.3 of the paper).

The forest holds one activation tree per active session (root AUnit
instance).  It supports the lookups the runtime needs:

* instance by ID (user actions are addressed to IDs — conflict detection);
* instance by label (the reactivation phase matches old and new instances);
* traversal and counting for tests, examples and benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import SessionError
from repro.runtime.instance import AUnitInstance, InstanceLabel

__all__ = ["ActivationForest"]


class ActivationForest:
    """All activation trees of the running application."""

    def __init__(self) -> None:
        self._roots: Dict[str, AUnitInstance] = {}
        self._by_id: Dict[int, AUnitInstance] = {}
        self._by_label: Dict[InstanceLabel, AUnitInstance] = {}

    # -- roots / sessions ----------------------------------------------------------

    @property
    def roots(self) -> List[AUnitInstance]:
        return list(self._roots.values())

    def session_ids(self) -> List[str]:
        return list(self._roots)

    def root_for_session(self, session_id: str) -> AUnitInstance:
        try:
            return self._roots[session_id]
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None

    def has_session(self, session_id: str) -> bool:
        return session_id in self._roots

    def add_root(self, session_id: str, root: AUnitInstance) -> None:
        if session_id in self._roots:
            raise SessionError(f"session {session_id!r} already exists")
        self._roots[session_id] = root
        self.index_tree(root)

    def remove_session(self, session_id: str) -> AUnitInstance:
        root = self.root_for_session(session_id)
        del self._roots[session_id]
        for node in root.walk():
            self._by_id.pop(node.instance_id, None)
            self._by_label.pop(node.label, None)
        return root

    def replace_root(self, session_id: str, root: AUnitInstance) -> None:
        """Swap in a rebuilt activation tree for a session (reactivation)."""
        old = self._roots.get(session_id)
        if old is not None:
            for node in old.walk():
                self._by_id.pop(node.instance_id, None)
                self._by_label.pop(node.label, None)
        self._roots[session_id] = root
        self.index_tree(root)

    # -- indexing -------------------------------------------------------------------

    def index_tree(self, root: AUnitInstance) -> None:
        for node in root.walk():
            self._by_id[node.instance_id] = node
            self._by_label[node.label] = node

    # -- lookups -----------------------------------------------------------------------

    def instance_by_id(self, instance_id: int) -> Optional[AUnitInstance]:
        return self._by_id.get(instance_id)

    def instance_by_label(self, label: InstanceLabel) -> Optional[AUnitInstance]:
        return self._by_label.get(label)

    def has_instance(self, instance_id: int) -> bool:
        return instance_id in self._by_id

    def all_instances(self) -> Iterator[AUnitInstance]:
        for root in self._roots.values():
            yield from root.walk()

    def find_instances(
        self,
        aunit_name: Optional[str] = None,
        session_id: Optional[str] = None,
        activator: Optional[str] = None,
    ) -> List[AUnitInstance]:
        """Instances filtered by AUnit name / Basic kind, session and activator."""
        if session_id is not None:
            nodes: Iterator[AUnitInstance] = self.root_for_session(session_id).walk()
        else:
            nodes = self.all_instances()
        matches = []
        for node in nodes:
            if aunit_name is not None and not (
                node.aunit_name == aunit_name or node.decl.basic_kind == aunit_name
            ):
                continue
            if activator is not None and node.activator_name != activator:
                continue
            matches.append(node)
        return matches

    # -- statistics --------------------------------------------------------------------

    def size(self) -> int:
        """Total number of active AUnit instances."""
        return sum(1 for _ in self.all_instances())

    def depth(self) -> int:
        """Depth of the deepest activation tree."""
        best = 0
        for node in self.all_instances():
            best = max(best, node.depth + 1)
        return best

    def render(self) -> str:
        """ASCII rendering of the whole forest (used by examples and tests)."""
        sections = []
        for session_id, root in self._roots.items():
            sections.append(f"Session {session_id}:")
            sections.append(root.render_tree())
        return "\n".join(sections)

    def __len__(self) -> int:
        return self.size()
