"""AUnit instances and their labels.

An :class:`AUnitInstance` is one live activation of an AUnit (Section 3.2.3
of the paper).  It owns its *input* tables (computed by the parent's input
query), its *local* tables (initialised by the local query, preserved across
reactivation while the instance survives) and — once it returns — its
*output* tables.  Persistent tables are *not* stored here: they are shared
by all instances of an AUnit type and live in the engine's persistent store.

Every instance has

* an **ID**: unique for the lifetime of the engine; a new ID is assigned
  every time an instance is (re)activated from scratch, and the same ID is
  retained across reactivations while the instance survives.  User actions
  are addressed to IDs, which is what makes conflict detection work
  (Section 3.2.6).
* a **label**: the path that identifies the instance structurally — the
  parent's label plus the activator name plus the key of its activation
  tuple (Definition 6).  Labels are what the reactivation phase matches old
  and new instances on.

Instances additionally carry the **dependency records** the delta
reactivation optimization consults (``docs/caching.md``): per activator, the
``(table name, version)`` vector its activation and input queries read when
the children were built (``None`` marks the activator uncacheable, e.g. when
activation filters ran), and the same for the instance's own local query.
A subtree whose recorded versions are all still current is reused wholesale
on reactivation instead of being rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.hilda.ast import AUnitDecl
from repro.relational.schema import TableSchema
from repro.relational.table import Table

__all__ = ["InstanceLabel", "AUnitInstance", "activation_key"]

#: A label is a nested tuple: ("session", session_id) for roots and
#: (parent_label, activator_name, activation_key) for children.
InstanceLabel = Tuple[Any, ...]


def activation_key(schema: Optional[TableSchema], values: Optional[Sequence[Any]]) -> Tuple[Any, ...]:
    """The key of an activation tuple used for labels and reactivation matching.

    Definition 8 of the paper compares activation tuples "by their primary
    key".  When the activation schema declares an explicit key we use it;
    otherwise the first column acts as the key, which matches the paper's
    examples (the id column always comes first).  Activators without an
    activation schema activate a single child, whose key is the empty tuple.
    """
    if schema is None or values is None:
        return ()
    if schema.primary_key:
        return tuple(values[position] for position in schema.key_positions())
    return (values[0],)


class AUnitInstance:
    """One activation of an AUnit in the activation forest."""

    __slots__ = (
        "instance_id",
        "label",
        "decl",
        "parent",
        "activator_name",
        "child_ref_name",
        "activation_tuple",
        "activation_schema",
        "input_tables",
        "local_tables",
        "output_tables",
        "children",
        "session_id",
        "returned",
        "activator_deps",
        "activator_act_deps",
        "activator_input_deps",
        "local_deps",
    )

    def __init__(
        self,
        instance_id: int,
        label: InstanceLabel,
        decl: AUnitDecl,
        parent: Optional["AUnitInstance"] = None,
        activator_name: Optional[str] = None,
        child_ref_name: Optional[str] = None,
        activation_tuple: Optional[Tuple[Any, ...]] = None,
        activation_schema: Optional[TableSchema] = None,
        session_id: Optional[str] = None,
    ) -> None:
        self.instance_id = instance_id
        self.label = label
        self.decl = decl
        self.parent = parent
        self.activator_name = activator_name
        self.child_ref_name = child_ref_name
        self.activation_tuple = activation_tuple
        self.activation_schema = activation_schema
        self.input_tables: Dict[str, Table] = {}
        self.local_tables: Dict[str, Table] = {}
        self.output_tables: Dict[str, Table] = {}
        self.children: List["AUnitInstance"] = []
        self.session_id = session_id if session_id is not None else (
            parent.session_id if parent is not None else None
        )
        #: Set during the return phase when this instance returns.
        self.returned = False
        #: activator name -> dependency version vector recorded while the
        #: activator's children were built (None = uncacheable); consulted by
        #: delta reactivation (see module doc).
        self.activator_deps: Dict[str, Optional[Tuple[Tuple[str, int], ...]]] = {}
        #: The same footprint split by query: the activation query's reads
        #: and the input query's reads separately.  Incremental maintenance
        #: uses the split to prove an activator's *results* unchanged when
        #: only activation-side tables moved (docs/caching.md § Incremental
        #: maintenance).
        self.activator_act_deps: Dict[str, Optional[Tuple[Tuple[str, int], ...]]] = {}
        self.activator_input_deps: Dict[str, Optional[Tuple[Tuple[str, int], ...]]] = {}
        #: Dependency version vector of the local query (None = not recorded).
        self.local_deps: Optional[Tuple[Tuple[str, int], ...]] = None

    # -- structure ---------------------------------------------------------------

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_basic(self) -> bool:
        return self.decl.is_basic

    @property
    def aunit_name(self) -> str:
        return self.decl.name

    @property
    def depth(self) -> int:
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def walk(self) -> Iterator["AUnitInstance"]:
        """This instance and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find_children(
        self, aunit_name: Optional[str] = None, activator: Optional[str] = None
    ) -> List["AUnitInstance"]:
        """Direct children filtered by AUnit name and/or activator name."""
        result = []
        for child in self.children:
            if aunit_name is not None and child.aunit_name != aunit_name:
                if child.decl.basic_kind != aunit_name:
                    continue
            if activator is not None and child.activator_name != activator:
                continue
            result.append(child)
        return result

    def find_descendants(self, aunit_name: str) -> List["AUnitInstance"]:
        """All descendants whose AUnit (or Basic AUnit kind) matches ``aunit_name``."""
        return [
            node
            for node in self.walk()
            if node is not self
            and (node.aunit_name == aunit_name or node.decl.basic_kind == aunit_name)
        ]

    # -- schema bootstrap -----------------------------------------------------------

    def create_input_tables(self) -> None:
        """Create empty input tables for every table of the input schema."""
        self.input_tables = {
            schema.name: Table(schema) for schema in self.decl.input_schema
        }

    def create_local_tables(self) -> None:
        self.local_tables = {
            schema.name: Table(schema) for schema in self.decl.local_schema
        }

    def create_output_tables(self) -> None:
        """Create empty output tables (called when the instance is about to return)."""
        self.output_tables = {
            schema.name: Table(schema) for schema in self.decl.output_schema
        }

    def adopt_local_tables(self, tables: Dict[str, Table]) -> None:
        """Take over the local-table contents of a surviving prior incarnation."""
        self.local_tables = {name: table.copy() for name, table in tables.items()}

    # -- presentation helpers ------------------------------------------------------------

    def describe(self) -> str:
        """A compact one-line description used in tree dumps and examples."""
        extra = ""
        if self.activation_tuple is not None:
            extra = f" {tuple(self.activation_tuple)}"
        via = f" via {self.activator_name}" if self.activator_name else ""
        return f"{self.aunit_name}[id={self.instance_id}]{extra}{via}"

    def tree_lines(self, indent: int = 0) -> List[str]:
        lines = ["  " * indent + self.describe()]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1))
        return lines

    def render_tree(self) -> str:
        """An ASCII rendering of the activation (sub)tree rooted here."""
        return "\n".join(self.tree_lines())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AUnitInstance({self.describe()})"
