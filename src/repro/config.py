"""Typed configuration objects for the whole stack.

Before this module existed the runtime's knobs were untyped keyword
arguments sprawled across :class:`~repro.runtime.engine.HildaEngine`,
:class:`~repro.web.container.HildaApplication`,
:class:`~repro.web.server.ThreadedHildaServer` and
:class:`~repro.sql.executor.SQLExecutor`.  The dataclasses here are
now the single source of truth for those knobs:

* :class:`EngineConfig` — query planning/compilation switches, the
  reactivation mode and history recording, plus a nested
  :class:`CacheConfig` and :class:`OptimizerConfig`.
* :class:`OptimizerConfig` — the query-planning pipeline: the ``"cost"``
  (statistics-driven) vs ``"heuristic"`` (legacy) strategy and the
  join-enumeration bounds (``docs/optimizer.md``).
* :class:`CacheConfig` — every caching/invalidation knob (Section 6.2 of
  the paper: activation-query caching, fragment caching, dependency
  tracking, delta reactivation, cache bounds).
* :class:`StorageConfig` — the durable storage backend (``"memory"`` vs
  the opt-in write-ahead-logged ``"wal"`` backend), its data directory,
  fsync policy, checkpoint cadence and recovery verification
  (``docs/storage.md``).
* :class:`SessionConfig` — web-session lifetime and bounds.
* :class:`ServerConfig` — HTTP front-end binding and logging.

Every consumer still accepts its pre-existing keyword arguments through a
deprecation shim (:func:`coalesce_legacy_kwargs`): each legacy kwarg keeps
working, is mapped onto the corresponding config field, and emits a
:class:`DeprecationWarning` exactly once per process (see
:func:`warn_deprecated` / :func:`reset_deprecation_warnings`).

All configs validate on construction and raise
:class:`repro.errors.ConfigError` — never a bare ``ValueError`` — naming
the offending field.  They are frozen: derive variants with
:func:`dataclasses.replace` or the ``with_`` helpers.

See ``docs/api.md`` for the migration table from old kwargs to config
fields.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Set, Tuple

from repro.errors import ConfigError

__all__ = [
    "CacheConfig",
    "ClusterConfig",
    "EngineConfig",
    "OptimizerConfig",
    "ServerConfig",
    "SessionConfig",
    "StorageConfig",
    "DEFAULT_ACTIVATION_CACHE_SIZE",
    "DEFAULT_DELTA_LOG_SIZE",
    "DEFAULT_FRAGMENT_CACHE_SIZE",
    "MAINTENANCE_MODES",
    "coalesce_legacy_kwargs",
    "reset_deprecation_warnings",
    "warn_deprecated",
]

#: Default bound on the engine's activation-query cache (entries, LRU).
DEFAULT_ACTIVATION_CACHE_SIZE = 8192

#: Default bound on the renderer's fragment cache (entries, LRU).
DEFAULT_FRAGMENT_CACHE_SIZE = 8192

#: The reactivation modes :class:`~repro.runtime.engine.HildaEngine` knows.
REACTIVATION_MODES = ("eager", "lazy")

#: The query-planning strategies the SQL layer implements (docs/optimizer.md).
OPTIMIZER_STRATEGIES = ("cost", "heuristic")

#: The cardinality estimators the cost-based pipeline can run on
#: (docs/optimizer.md § "Pessimistic upper bounds").
CARDINALITY_ESTIMATORS = ("systemr", "pessimistic")

#: How the runtime treats stale cached activation-query results:
#: ``"incremental"`` patches them in place through per-plan delta programs
#: (falling back to recomputation on any bailout), ``"recompute"`` always
#: re-executes the query (docs/caching.md § Incremental maintenance).
MAINTENANCE_MODES = ("incremental", "recompute")

#: Default per-table cap on retained delta rows (``CacheConfig.delta_log_size``).
DEFAULT_DELTA_LOG_SIZE = 512

#: The storage backends the engine can mount (docs/storage.md).
STORAGE_BACKENDS = ("memory", "wal")

#: WAL durability policies: fsync per commit inside the write lock, batched
#: group commit outside it, or no fsync at all (docs/storage.md).
FSYNC_MODES = ("always", "batch", "off")

#: How cluster workers are hosted: ``"fork"`` runs each worker in its own
#: process (real scale-out; Linux fork start method), ``"thread"`` hosts the
#: worker RPC servers as threads over one shared application (exercises the
#: router/transport in-process; used by the ``REPRO_SERVER_MODE=cluster``
#: test override).  See docs/cluster.md.
CLUSTER_PROCESS_MODELS = ("fork", "thread")


# ---------------------------------------------------------------------------
# Warn-once deprecation machinery
# ---------------------------------------------------------------------------

#: ``"Owner.kwarg"`` keys that already produced their DeprecationWarning.
_warned_kwargs: Set[str] = set()


def warn_deprecated(owner: str, kwarg: str, replacement: str) -> None:
    """Emit the deprecation warning for ``owner(kwarg=...)`` once per process.

    Python's own ``once`` warning filter is keyed on the call site, which
    makes "exactly once per old kwarg" unreliable under pytest's filter
    resets; this registry is keyed on ``owner.kwarg`` instead.
    """
    key = f"{owner}.{kwarg}"
    if key in _warned_kwargs:
        return
    _warned_kwargs.add(key)
    # Every call chain is user code -> consumer __init__ -> a coalescing
    # helper -> coalesce_legacy_kwargs -> here, so level 5 attributes the
    # warning to the user's call site (where default filters display it).
    warnings.warn(
        f"{owner}({kwarg}=...) is deprecated; set the {replacement!r} field on "
        "the typed config instead (see docs/api.md for the migration table)",
        DeprecationWarning,
        stacklevel=5,
    )


def reset_deprecation_warnings() -> None:
    """Forget which deprecated kwargs have warned (test isolation hook)."""
    _warned_kwargs.clear()


def coalesce_legacy_kwargs(
    owner: str,
    legacy: Mapping[str, Any],
    mapping: Mapping[str, str],
) -> Dict[str, Any]:
    """Validate and translate legacy kwargs to config-field assignments.

    ``mapping`` maps each accepted legacy kwarg to the dotted config field
    that replaces it (used both for the warning text and as the returned
    key).  Unknown kwargs raise :class:`ConfigError` naming the owner, like
    the ``TypeError`` they would have produced before — but catchable as a
    :class:`~repro.errors.ReproError`.
    """
    translated: Dict[str, Any] = {}
    for kwarg, value in legacy.items():
        if kwarg not in mapping:
            raise ConfigError(
                f"{owner}() got an unexpected keyword argument {kwarg!r} "
                f"(known legacy options: {sorted(mapping)})"
            )
        warn_deprecated(owner, kwarg, mapping[kwarg])
        translated[mapping[kwarg]] = value
    return translated


# ---------------------------------------------------------------------------
# Validation helpers
# ---------------------------------------------------------------------------


def _require_bool(config: str, name: str, value: Any) -> None:
    if not isinstance(value, bool):
        raise ConfigError(f"{config}.{name} must be a bool, got {value!r}")


def _require_optional_size(config: str, name: str, value: Any) -> None:
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ConfigError(
            f"{config}.{name} must be None (unbounded) or a positive int, got {value!r}"
        )


def _require_optional_positive(config: str, name: str, value: Any) -> None:
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
        raise ConfigError(
            f"{config}.{name} must be None or a positive number, got {value!r}"
        )


# ---------------------------------------------------------------------------
# The config dataclasses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheConfig:
    """Every caching and invalidation knob of the runtime (Section 6.2).

    ``activation_queries`` / ``fragments`` default **off** — the raw engine
    recomputes everything, which is the paper's baseline.  The server path
    (:class:`~repro.web.container.HildaApplication`) uses
    :meth:`server_defaults`, which turns both on; with dependency tracking
    the caches are exactly invalidated, so serving from them is safe (see
    ``docs/caching.md``).
    """

    #: Memoise activation-query results between state changes.
    activation_queries: bool = False
    #: Bound on the activation-query cache (entries; None = unbounded).
    activation_cache_size: Optional[int] = DEFAULT_ACTIVATION_CACHE_SIZE
    #: Cache rendered HTML fragments between requests.
    fragments: bool = False
    #: Bound on the fragment cache (entries; None = unbounded).
    fragment_cache_size: Optional[int] = DEFAULT_FRAGMENT_CACHE_SIZE
    #: Key caches on per-table version vectors instead of the global state
    #: version (fine-grained invalidation).
    dependency_tracking: bool = True
    #: Reuse unchanged subtrees during reactivation (requires tracking).
    delta_reactivation: bool = True
    #: Stale cached results: ``"incremental"`` patches them through delta
    #: programs, ``"recompute"`` re-executes (requires tracking to matter).
    maintenance: str = "recompute"
    #: Per-table cap on retained delta rows (None = unbounded); only read
    #: when ``maintenance="incremental"``.
    delta_log_size: Optional[int] = DEFAULT_DELTA_LOG_SIZE

    def __post_init__(self) -> None:
        _require_bool("CacheConfig", "activation_queries", self.activation_queries)
        _require_bool("CacheConfig", "fragments", self.fragments)
        _require_bool("CacheConfig", "dependency_tracking", self.dependency_tracking)
        _require_bool("CacheConfig", "delta_reactivation", self.delta_reactivation)
        _require_optional_size(
            "CacheConfig", "activation_cache_size", self.activation_cache_size
        )
        _require_optional_size(
            "CacheConfig", "fragment_cache_size", self.fragment_cache_size
        )
        if self.maintenance not in MAINTENANCE_MODES:
            raise ConfigError(
                "CacheConfig.maintenance must be one of "
                f"{MAINTENANCE_MODES}, got {self.maintenance!r}"
            )
        _require_optional_size("CacheConfig", "delta_log_size", self.delta_log_size)

    @classmethod
    def server_defaults(cls) -> "CacheConfig":
        """The caching policy the application container turns on by default."""
        return cls(activation_queries=True, fragments=True, maintenance="incremental")

    @classmethod
    def disabled(cls) -> "CacheConfig":
        """Everything off and coarse invalidation: the ablation baseline."""
        return cls(
            activation_queries=False,
            fragments=False,
            dependency_tracking=False,
            delta_reactivation=False,
        )


@dataclass(frozen=True)
class OptimizerConfig:
    """Configuration of the staged SQL query optimizer (docs/optimizer.md).

    ``strategy`` selects the planning pipeline: ``"cost"`` (the default)
    runs the statistics-driven pipeline — cardinality estimation, join-order
    enumeration and cost-based physical operator selection — while
    ``"heuristic"`` reproduces the pre-optimizer planner exactly (syntactic
    join order, greedy hash-join/index rewrites).
    """

    #: ``"cost"`` (statistics-driven pipeline) or ``"heuristic"`` (legacy).
    strategy: str = "cost"
    #: FROM lists up to this many relations are join-ordered by dynamic
    #: programming over subsets; larger lists fall back to a greedy ordering.
    dp_threshold: int = 6
    #: ``"systemr"`` (classic selectivity formulas, the default) or
    #: ``"pessimistic"`` (UES-style upper bounds: every row estimate is a
    #: guaranteed cap on actual rows, derived from MCV top frequencies —
    #: docs/optimizer.md § "Pessimistic upper bounds").
    estimator: str = "systemr"
    #: Feedback-driven re-optimization: observe the first execution of each
    #: cached plan, record true per-node cardinalities in the engine's
    #: :class:`~repro.sql.optimizer.FeedbackCache`, and re-plan when the
    #: observed q-error exceeds ``reopt_q_error``
    #: (docs/optimizer.md § "Feedback-driven re-optimization").
    feedback: bool = False
    #: A cached plan whose worst observed per-node q-error exceeds this is
    #: invalidated so the next execution re-plans with corrected estimates.
    reopt_q_error: float = 4.0

    def __post_init__(self) -> None:
        if self.strategy not in OPTIMIZER_STRATEGIES:
            raise ConfigError(
                "OptimizerConfig.strategy must be one of "
                f"{OPTIMIZER_STRATEGIES}, got {self.strategy!r}"
            )
        if (
            isinstance(self.dp_threshold, bool)
            or not isinstance(self.dp_threshold, int)
            or self.dp_threshold < 1
        ):
            raise ConfigError(
                f"OptimizerConfig.dp_threshold must be a positive int, "
                f"got {self.dp_threshold!r}"
            )
        if self.estimator not in CARDINALITY_ESTIMATORS:
            raise ConfigError(
                "OptimizerConfig.estimator must be one of "
                f"{CARDINALITY_ESTIMATORS}, got {self.estimator!r}"
            )
        if not isinstance(self.feedback, bool):
            raise ConfigError(
                f"OptimizerConfig.feedback must be a bool, got {self.feedback!r}"
            )
        if (
            isinstance(self.reopt_q_error, bool)
            or not isinstance(self.reopt_q_error, (int, float))
            or self.reopt_q_error <= 1.0
        ):
            raise ConfigError(
                "OptimizerConfig.reopt_q_error must be a number > 1.0 "
                f"(a q-error of 1.0 is a perfect estimate), got {self.reopt_q_error!r}"
            )

    @classmethod
    def heuristic(cls) -> "OptimizerConfig":
        """The legacy planner: syntactic join order, greedy rewrites."""
        return cls(strategy="heuristic")


@dataclass(frozen=True)
class StorageConfig:
    """The engine's durable storage backend (``docs/storage.md``).

    The default ``"memory"`` backend keeps every table in process memory —
    the paper's model, and the fastest.  The ``"wal"`` backend makes
    committed state durable: each engine transaction is appended to a
    checksummed write-ahead log under ``data_dir`` and replayed on the next
    start, with periodic checkpoint snapshots bounding replay time.
    """

    #: ``"memory"`` (default, volatile) or ``"wal"`` (durable, opt-in).
    backend: str = "memory"
    #: Directory holding the WAL and snapshot (required for ``"wal"``).
    data_dir: Optional[str] = None
    #: ``"batch"`` group-commits concurrent transactions behind shared
    #: fsyncs; ``"always"`` fsyncs serially inside the commit section;
    #: ``"off"`` never fsyncs (process-crash durable, not power-loss).
    fsync: str = "batch"
    #: Checkpoint after this many transactions (None = never checkpoint).
    checkpoint_every: Optional[int] = 256
    #: Run :meth:`~repro.relational.table.Table.check_integrity` on every
    #: table rebuilt by crash recovery, failing loudly on inconsistency.
    verify_recovery: bool = True

    def __post_init__(self) -> None:
        if self.backend not in STORAGE_BACKENDS:
            raise ConfigError(
                f"StorageConfig.backend must be one of {STORAGE_BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.data_dir is not None and (
            not isinstance(self.data_dir, str) or not self.data_dir
        ):
            raise ConfigError(
                f"StorageConfig.data_dir must be None or a non-empty str, "
                f"got {self.data_dir!r}"
            )
        if self.backend == "wal" and self.data_dir is None:
            raise ConfigError(
                "StorageConfig(backend='wal') requires a data_dir "
                "(use StorageConfig.wal(data_dir))"
            )
        if self.fsync not in FSYNC_MODES:
            raise ConfigError(
                f"StorageConfig.fsync must be one of {FSYNC_MODES}, "
                f"got {self.fsync!r}"
            )
        _require_optional_size("StorageConfig", "checkpoint_every", self.checkpoint_every)
        _require_bool("StorageConfig", "verify_recovery", self.verify_recovery)

    @classmethod
    def wal(cls, data_dir: str, **overrides: Any) -> "StorageConfig":
        """A WAL backend rooted at ``data_dir`` (other fields overridable)."""
        return cls(backend="wal", data_dir=data_dir, **overrides)


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of :class:`~repro.runtime.engine.HildaEngine` and the
    SQL executors it builds (:class:`~repro.sql.executor.SQLExecutor`)."""

    #: Hash joins for equality predicates (vs nested loops everywhere).
    optimize: bool = True
    #: Let the planner create secondary hash indexes on first use.
    auto_index: bool = False
    #: Compile per-row expressions to closures (vs tree-walking).
    compile_expressions: bool = True
    #: ``"eager"`` rebuilds every session after each operation; ``"lazy"``
    #: defers other sessions' rebuilds until they are accessed.
    reactivation: str = "eager"
    #: Keep an :class:`~repro.runtime.history.ExecutionHistory`.
    record_history: bool = True
    #: Derive AUnit instance ids from the owning session's number instead
    #: of one global counter, so instance ids are reproducible regardless
    #: of which worker process builds the session (see docs/cluster.md).
    session_scoped_ids: bool = False
    #: The caching policy (activation queries, fragments, invalidation).
    cache: CacheConfig = field(default_factory=CacheConfig)
    #: The query-planning pipeline (strategy, join-enumeration bounds).
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    #: The storage backend (volatile memory vs durable WAL).
    storage: StorageConfig = field(default_factory=StorageConfig)

    def __post_init__(self) -> None:
        _require_bool("EngineConfig", "optimize", self.optimize)
        _require_bool("EngineConfig", "auto_index", self.auto_index)
        _require_bool("EngineConfig", "compile_expressions", self.compile_expressions)
        _require_bool("EngineConfig", "record_history", self.record_history)
        _require_bool("EngineConfig", "session_scoped_ids", self.session_scoped_ids)
        if self.reactivation not in REACTIVATION_MODES:
            raise ConfigError(
                "EngineConfig.reactivation must be one of "
                f"{REACTIVATION_MODES}, got {self.reactivation!r}"
            )
        if not isinstance(self.cache, CacheConfig):
            raise ConfigError(
                f"EngineConfig.cache must be a CacheConfig, got {self.cache!r}"
            )
        if not isinstance(self.optimizer, OptimizerConfig):
            raise ConfigError(
                f"EngineConfig.optimizer must be an OptimizerConfig, "
                f"got {self.optimizer!r}"
            )
        if not isinstance(self.storage, StorageConfig):
            raise ConfigError(
                f"EngineConfig.storage must be a StorageConfig, got {self.storage!r}"
            )

    #: Legacy ``HildaEngine`` kwargs -> the config fields replacing them.
    LEGACY_KWARGS = {
        "optimize": "optimize",
        "auto_index": "auto_index",
        "compile_expressions": "compile_expressions",
        "reactivation": "reactivation",
        "record_history": "record_history",
        "cache_activation_queries": "cache.activation_queries",
        "activation_cache_size": "cache.activation_cache_size",
        "dependency_tracking": "cache.dependency_tracking",
        "delta_reactivation": "cache.delta_reactivation",
    }

    @classmethod
    def from_legacy(
        cls,
        config: Optional["EngineConfig"],
        legacy: Mapping[str, Any],
        owner: str = "HildaEngine",
        allowed: Optional[Mapping[str, str]] = None,
    ) -> "EngineConfig":
        """Merge deprecated kwargs into ``config`` (warning once per kwarg).

        ``allowed`` restricts the accepted legacy kwargs (the SQL executor
        only ever took the three planner/compiler switches).
        """
        base = config if config is not None else cls()
        if not isinstance(base, EngineConfig):
            raise ConfigError(f"{owner}(config=...) must be an EngineConfig, got {base!r}")
        if not legacy:
            return base
        translated = coalesce_legacy_kwargs(
            owner,
            legacy,
            dict(allowed if allowed is not None else cls.LEGACY_KWARGS),
        )
        return base.updated(translated)

    def updated(self, assignments: Mapping[str, Any]) -> "EngineConfig":
        """A copy with dotted-field ``assignments`` applied (``cache.x`` nests)."""
        own: Dict[str, Any] = {}
        nested_cache: Dict[str, Any] = {}
        nested_optimizer: Dict[str, Any] = {}
        nested_storage: Dict[str, Any] = {}
        for dotted, value in assignments.items():
            if dotted.startswith("cache."):
                nested_cache[dotted[len("cache.") :]] = value
            elif dotted.startswith("optimizer."):
                nested_optimizer[dotted[len("optimizer.") :]] = value
            elif dotted.startswith("storage."):
                nested_storage[dotted[len("storage.") :]] = value
            else:
                own[dotted] = value
        config = self
        if nested_cache:
            config = replace(config, cache=replace(config.cache, **nested_cache))
        if nested_optimizer:
            config = replace(
                config, optimizer=replace(config.optimizer, **nested_optimizer)
            )
        if nested_storage:
            config = replace(config, storage=replace(config.storage, **nested_storage))
        if own:
            config = replace(config, **own)
        return config


@dataclass(frozen=True)
class ClusterConfig:
    """Multi-process serving: shard workers behind a session-affinity router.

    The router hashes each session's user key onto one of ``workers`` engine
    processes; session-affine tables live only in the owning worker while
    shared tables are replicated with version-stamped refresh, and
    cross-shard reads are answered by scatter-gather (``docs/cluster.md``).
    """

    #: Number of engine worker processes (shards).
    workers: int = 2
    #: ``"fork"`` (one process per worker) or ``"thread"`` (in-process
    #: worker RPC servers over a shared engine; transport testing only).
    process_model: str = "fork"
    #: Root directory for per-worker WALs (``data_dir/worker-N``); None
    #: keeps every worker on the volatile memory backend.
    data_dir: Optional[str] = None
    #: Explicit ``(table, key_column)`` partitioning overrides; tables not
    #: named here are classified by the compiler's partitioning analysis.
    partition: Tuple[Tuple[str, str], ...] = ()
    #: Per-request RPC timeout in seconds.
    request_timeout: float = 10.0
    #: Connection-establishment attempts per request before failing over.
    connect_retries: int = 3
    #: Base delay between connect retries (doubles per attempt).
    retry_backoff: float = 0.05
    #: Seconds between router health probes of each worker.
    health_interval: float = 0.5
    #: Restart a crashed worker process (its WAL replays committed state;
    #: its sessions must log in again — see docs/cluster.md § Failure).
    restart_workers: bool = True
    #: Bound on pooled RPC connections per worker.
    pool_size: int = 8

    def __post_init__(self) -> None:
        if (
            isinstance(self.workers, bool)
            or not isinstance(self.workers, int)
            or self.workers < 1
        ):
            raise ConfigError(
                f"ClusterConfig.workers must be a positive int, got {self.workers!r}"
            )
        if self.process_model not in CLUSTER_PROCESS_MODELS:
            raise ConfigError(
                "ClusterConfig.process_model must be one of "
                f"{CLUSTER_PROCESS_MODELS}, got {self.process_model!r}"
            )
        if self.data_dir is not None and (
            not isinstance(self.data_dir, str) or not self.data_dir
        ):
            raise ConfigError(
                f"ClusterConfig.data_dir must be None or a non-empty str, "
                f"got {self.data_dir!r}"
            )
        partition = self.partition
        if not isinstance(partition, tuple):
            try:
                partition = tuple(tuple(entry) for entry in partition)
            except TypeError:
                raise ConfigError(
                    "ClusterConfig.partition must be a sequence of "
                    f"(table, key_column) pairs, got {self.partition!r}"
                ) from None
            object.__setattr__(self, "partition", partition)
        for entry in partition:
            if (
                not isinstance(entry, tuple)
                or len(entry) != 2
                or not all(isinstance(part, str) and part for part in entry)
            ):
                raise ConfigError(
                    "ClusterConfig.partition entries must be "
                    f"(table, key_column) string pairs, got {entry!r}"
                )
        for name in ("request_timeout", "retry_backoff", "health_interval"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
                raise ConfigError(
                    f"ClusterConfig.{name} must be a positive number, got {value!r}"
                )
        for name in ("connect_retries", "pool_size"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ConfigError(
                    f"ClusterConfig.{name} must be a positive int, got {value!r}"
                )
        _require_bool("ClusterConfig", "restart_workers", self.restart_workers)


@dataclass(frozen=True)
class SessionConfig:
    """Web-session lifetime policy of the application container."""

    #: Idle lifetime in seconds; None = sessions never expire.
    ttl: Optional[float] = None
    #: Bound on simultaneous web sessions (LRU eviction past it).
    max_sessions: Optional[int] = None

    def __post_init__(self) -> None:
        _require_optional_positive("SessionConfig", "ttl", self.ttl)
        _require_optional_size("SessionConfig", "max_sessions", self.max_sessions)


@dataclass(frozen=True)
class ServerConfig:
    """Binding and logging of the threaded HTTP front end."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (embedding/tests); :func:`repro.api.serve`
    #: defaults to :meth:`foreground` (port 8080) instead.
    port: int = 0
    #: Log each request line to stderr.
    verbose: bool = False
    #: Listen backlog; deep enough that a burst of simultaneous browsers
    #: does not drop SYNs (see docs/concurrency.md).
    request_queue_size: int = 128
    #: Serve through a shard-worker cluster instead of one in-process
    #: application (None = single-process; see docs/cluster.md).
    cluster: Optional[ClusterConfig] = None

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ConfigError(f"ServerConfig.host must be a non-empty str, got {self.host!r}")
        if isinstance(self.port, bool) or not isinstance(self.port, int) or not (
            0 <= self.port <= 65535
        ):
            raise ConfigError(f"ServerConfig.port must be an int in 0..65535, got {self.port!r}")
        _require_bool("ServerConfig", "verbose", self.verbose)
        if (
            isinstance(self.request_queue_size, bool)
            or not isinstance(self.request_queue_size, int)
            or self.request_queue_size < 1
        ):
            raise ConfigError(
                "ServerConfig.request_queue_size must be a positive int, "
                f"got {self.request_queue_size!r}"
            )
        if self.cluster is not None and not isinstance(self.cluster, ClusterConfig):
            raise ConfigError(
                f"ServerConfig.cluster must be None or a ClusterConfig, "
                f"got {self.cluster!r}"
            )

    @classmethod
    def foreground(cls) -> "ServerConfig":
        """The interactive default: a fixed port with request logging on."""
        return cls(port=8080, verbose=True)


def config_fields(config_cls) -> Tuple[str, ...]:
    """``"name: type = default"`` rows describing a config dataclass.

    Used by ``tools/check_api_surface.py`` to snapshot the configuration
    surface; any field addition/rename/default change shows up as a diff
    against the committed manifest.
    """
    return tuple(
        f"{spec.name}: {spec.type} = {_field_default(spec)!r}"
        for spec in fields(config_cls)
    )


def _field_default(spec) -> Any:
    from dataclasses import MISSING

    if spec.default is not MISSING:
        return spec.default
    if spec.default_factory is not MISSING:
        return spec.default_factory()
    return None
