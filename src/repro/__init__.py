"""repro — a reproduction of "Hilda: A High-Level Language for Data-Driven
Web Applications" (Yang, Shanmugasundaram, Riedewald, Gehrke, Demers;
ICDE 2006).

The package provides, from the bottom up:

* ``repro.relational`` — the relational substrate (schemas, tables, databases).
* ``repro.sql`` — a SQL engine for the dialect Hilda programs use.
* ``repro.hilda`` — the Hilda language front end (parser, validator,
  inheritance, Basic AUnits, PUnit parsing).
* ``repro.runtime`` — the AUnit execution model: activation forests and the
  activation / return / reactivation phases, sessions, conflict detection,
  and the Section 5 execution-history semantics.
* ``repro.presentation`` — PUnits and recursive HTML rendering.
* ``repro.compiler`` — the proof-of-concept compiler producing DDL scripts
  and Python "servlet" code, plus the cross-layer optimizations of
  Section 6.2.
* ``repro.web`` — a minimal application-server substrate that serves
  compiled or interpreted Hilda applications.
* ``repro.apps`` — the MiniCMS case-study application and a hand-coded
  three-tier baseline.

* ``repro.api`` — the recommended entry point: the Python authoring DSL
  (author applications without Hilda text), the typed configuration
  objects, and the ``build_app``/``serve`` facade.

Most users start from :mod:`repro.api` (``build_app``, ``serve``, the
builder DSL); see ``examples/quickstart.py`` and ``docs/api.md``.  The
full pipeline is documented in ``docs/architecture.md``, the multi-user
serving model in ``docs/concurrency.md`` and the query hot path in
``docs/sql_engine.md``.
"""

from repro.errors import ReproError

__version__ = "0.1.0"

__all__ = [
    "ReproError",
    "__version__",
    "load_program",
    "HildaEngine",
    "build_app",
    "serve",
]


def load_program(source: str):
    """Parse, resolve and validate a Hilda program from source text.

    This is a thin convenience wrapper around
    :func:`repro.hilda.program.load_program` that avoids importing the whole
    language package up front.
    """
    from repro.hilda.program import load_program as _load_program

    return _load_program(source)


def __getattr__(name: str):
    """Lazily expose the most commonly used entry points at the package root."""
    if name == "HildaEngine":
        from repro.runtime.engine import HildaEngine

        return HildaEngine
    if name in ("build_app", "serve"):
        from repro.api import build_app, serve

        return {"build_app": build_app, "serve": serve}[name]
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
