"""``repro.storage`` — the durable storage subsystem (``docs/storage.md``).

A pluggable :class:`~repro.storage.backend.StorageBackend` seam behind
:class:`~repro.runtime.engine.HildaEngine`:
:class:`~repro.storage.backend.MemoryBackend` (default, volatile) and
:class:`~repro.storage.wal_backend.WalBackend` (opt-in write-ahead log with
group commit, checkpoint snapshots and crash recovery), selected by
:class:`~repro.config.StorageConfig`.  The fault-injection surface —
:data:`~repro.storage.wal.CRASH_POINTS` and
:class:`~repro.storage.wal.CrashPointRegistry` — lives here too.
"""

from repro.storage.backend import MemoryBackend, StorageBackend, create_backend
from repro.storage.snapshot import load_snapshot, write_snapshot
from repro.storage.wal import (
    CRASH_POINTS,
    CrashPointRegistry,
    WAL_MAGIC,
    WalWriter,
    encode_record,
    read_wal,
)
from repro.storage.wal_backend import WalBackend

__all__ = [
    "CRASH_POINTS",
    "CrashPointRegistry",
    "MemoryBackend",
    "StorageBackend",
    "WAL_MAGIC",
    "WalBackend",
    "WalWriter",
    "create_backend",
    "encode_record",
    "load_snapshot",
    "read_wal",
    "write_snapshot",
]
