"""The durable backend: logical WAL + checkpoint snapshots + recovery.

One engine transaction — a user operation, a session start, a bulk seed —
becomes **one WAL record**::

    {"kind": "txn", "seq": <n>, "ops": [...], "meta": {...}}

``ops`` are the logical table mutations journaled by
:class:`~repro.relational.table.Table` while the transaction was open
(plus ``persist_created`` markers for newly initialised AUnit types);
``meta`` captures the engine's counters *after* the transaction (state
version, next session/instance/genkey values), which is what makes a
recovered engine continue exactly where the committed prefix left off.
Because a whole transaction is one checksummed record, recovery applies it
atomically: a record torn by a crash fails its checksum and is discarded
wholesale — never half-applied (see :mod:`repro.storage.wal`).

Recovery happens at construction: load the snapshot (checksummed; a
corrupt one raises :class:`~repro.errors.RecoveryError` loudly), replay
every valid WAL record with ``seq`` greater than the snapshot's into plain
row lists, and hand the result to the engine lazily — the engine asks
:meth:`recovered_persist` per AUnit type, and table *schemas* always come
from the current program declaration, so only contents, secondary indexes
and version stamps cross the crash.

Checkpoints run under the engine's write lock every ``checkpoint_every``
transactions: write the full committed state to a temporary file, fsync,
atomically publish it, then truncate the WAL.  Every step is bracketed by
``checkpoint.*`` crash points; the ``seq`` filter above is what makes the
crash window between publish and truncation safe (the stale WAL prefix is
skipped, not replayed twice).  See ``docs/storage.md``.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.config import StorageConfig
from repro.errors import RecoveryError, SimulatedCrash, StorageError
from repro.storage.backend import StorageBackend
from repro.storage.snapshot import encode_snapshot, fsync_directory, load_snapshot
from repro.storage.wal import CrashPointRegistry, WalWriter, read_wal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.hilda.ast import AUnitDecl
    from repro.relational.table import Table

__all__ = ["WalBackend", "WAL_FILENAME", "SNAPSHOT_FILENAME"]

WAL_FILENAME = "wal.log"
SNAPSHOT_FILENAME = "snapshot.dat"


class WalBackend(StorageBackend):
    """Durable storage: group-committed WAL, snapshots, crash recovery."""

    name = "wal"

    def __init__(self, config: StorageConfig) -> None:
        if config.data_dir is None:
            raise StorageError("WalBackend requires StorageConfig.data_dir")
        self.config = config
        self.data_dir = config.data_dir
        os.makedirs(self.data_dir, exist_ok=True)
        self.wal_path = os.path.join(self.data_dir, WAL_FILENAME)
        self.snapshot_path = os.path.join(self.data_dir, SNAPSHOT_FILENAME)
        #: Fault-injection hooks shared with the writer (docs/storage.md).
        self.crash_points = CrashPointRegistry()

        # ---- recovery: snapshot base + WAL suffix -> plain state -------------
        #: aunit -> table -> {"rows": [...], "version": int, "indexes": [...]}.
        self._recovered: Dict[str, Dict[str, Dict[str, Any]]] = {}
        #: AUnit types whose persistent tables existed before the crash.
        self._created: Set[str] = set()
        self._counters: Optional[Dict[str, Any]] = None
        base_seq = 0
        snapshot = load_snapshot(self.snapshot_path)
        if snapshot is not None:
            base_seq = snapshot["seq"]
            self._recovered = snapshot["persist"]
            self._created = set(snapshot["created"])
            self._counters = snapshot["counters"]
        self._seq = base_seq
        records, _ = read_wal(self.wal_path)
        replayed = 0
        for record in records:
            if not isinstance(record, dict) or record.get("kind") != "txn":
                raise RecoveryError(
                    f"WAL {self.wal_path!r} holds an unknown record: {record!r}"
                )
            if record["seq"] <= base_seq:
                continue  # predates the snapshot (crash before WAL truncation)
            for op in record["ops"]:
                self._apply_op(op)
            self._counters = record["meta"]
            self._seq = record["seq"]
            replayed += 1
        # Leftover tmp file from a checkpoint that died before publishing.
        tmp = self.snapshot_path + ".tmp"
        if os.path.exists(tmp):
            os.unlink(tmp)

        # ---- live write path -------------------------------------------------
        self._wal = WalWriter(
            self.wal_path, fsync_mode=config.fsync, crash_points=self.crash_points
        )
        #: Serialises seq allocation + append so record order matches seq order.
        self._txn_lock = threading.Lock()
        self._depth = 0
        self._ops: List[Tuple[Any, ...]] = []
        #: Replayed transactions count against the checkpoint cadence, so a
        #: workload of short restarts still checkpoints instead of replaying
        #: an ever-growing log from an ever-staler snapshot.
        self._txns_since_checkpoint = replayed
        self._engine: Any = None
        self._close_hooks: List[Callable[[], None]] = []
        self._closed = False

    # -- introspection ----------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """The sequence number of the last known committed transaction."""
        return self._seq

    @property
    def wal(self) -> WalWriter:
        return self._wal

    # -- wiring -----------------------------------------------------------------

    def bind_engine(self, engine: Any) -> None:
        self._engine = engine

    def bind_table(self, aunit_name: str, table: "Table") -> None:
        table_name = table.name
        table.set_journal(lambda op: self._journal(aunit_name, table_name, op))

    def on_close(self, hook: Callable[[], None]) -> None:
        self._close_hooks.append(hook)

    # -- recovery hand-off -------------------------------------------------------

    def recovered_counters(self) -> Optional[Dict[str, Any]]:
        return self._counters

    def recovered_persist(self, decl: "AUnitDecl") -> Optional[Dict[str, "Table"]]:
        if decl.name not in self._created:
            return None
        from repro.relational.table import Table, ensure_version_clock_at_least

        state = self._recovered.get(decl.name, {})
        tables: Dict[str, Table] = {}
        for schema in decl.persist_schema:
            entry = state.get(schema.name)
            table = Table(schema, rows=entry["rows"] if entry else ())
            if entry is not None:
                for columns in entry["indexes"]:
                    table.create_index(columns)
                version = entry["version"]
                if version is not None:
                    ensure_version_clock_at_least(version)
                    table._version = version
            tables[schema.name] = table
        return tables

    # -- transactions ------------------------------------------------------------

    def begin(self) -> None:
        self._depth += 1

    def commit(self, meta: Dict[str, Any]) -> Optional[int]:
        if self._depth == 0:
            return None
        self._depth -= 1
        if self._depth:
            return None  # nested section: the outermost commit logs it all
        ops, self._ops = self._ops, []
        lsn = self._append_txn(ops, meta)
        if self.config.fsync == "always":
            # Serial durability: sync before releasing the write lock (the
            # benchmark's baseline; "batch" defers to wait_durable instead).
            self._wal.sync(lsn)
            ticket: Optional[int] = None
        else:
            ticket = lsn
        self._maybe_checkpoint()
        return ticket

    def wait_durable(self, ticket: Optional[int]) -> None:
        if ticket is not None:
            self._wal.sync(ticket)

    def mark_persist_created(
        self, aunit_name: str, versions: Optional[Dict[str, int]] = None
    ) -> None:
        self._record_op(("persist_created", aunit_name, dict(versions or {})))

    def _journal(self, aunit_name: str, table_name: str, op: Dict[str, Any]) -> None:
        kind = op["op"]
        if kind == "insert":
            record = ("insert", aunit_name, table_name, op["row"], op["version"])
        elif kind == "delete":
            record = ("delete", aunit_name, table_name, op["rows"], op["version"])
        elif kind == "update":
            record = ("update", aunit_name, table_name, op["changes"], op["version"])
        elif kind == "replace":
            record = ("replace", aunit_name, table_name, op["rows"], op["version"])
        elif kind == "create_index":
            record = ("create_index", aunit_name, table_name, list(op["columns"]))
        else:  # pragma: no cover - journal vocabulary is closed
            raise StorageError(f"unknown journal op {kind!r}")
        self._record_op(record)

    def _record_op(self, record: Tuple[Any, ...]) -> None:
        if self._depth:
            self._ops.append(record)
        else:
            # No open transaction: a mutation outside the engine's write
            # path (the planner auto-indexing during a read).  Log it as its
            # own transaction; durability rides on the next synced commit.
            self._append_txn([record], self._meta())

    def _append_txn(self, ops: List[Tuple[Any, ...]], meta: Dict[str, Any]) -> int:
        with self._txn_lock:
            self._seq += 1
            return self._wal.append(
                {"kind": "txn", "seq": self._seq, "ops": ops, "meta": meta}
            )

    def _meta(self) -> Dict[str, Any]:
        if self._engine is not None:
            return self._engine._commit_meta()
        return {}

    # -- checkpointing ------------------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        self._txns_since_checkpoint += 1
        every = self.config.checkpoint_every
        if every is None or self._engine is None:
            return
        if self._txns_since_checkpoint >= every:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Publish a snapshot of the committed state and truncate the WAL.

        Must be called with the engine's write lock held (the engine's
        commit path does): the exported state must not move underfoot.
        """
        if self._engine is None:
            raise StorageError("checkpoint requires a bound engine")
        fire = self.crash_points.fire
        try:
            fire("checkpoint.before_snapshot_write")
            exported = self._engine.export_persist_state()
            state = {
                "seq": self._seq,
                "persist": exported["persist"],
                "created": exported["created"],
                "counters": self._engine._commit_meta(),
            }
            durable = self.config.fsync != "off"
            tmp_path = self.snapshot_path + ".tmp"
            with open(tmp_path, "wb") as handle:
                handle.write(encode_snapshot(state))
                handle.flush()
                if durable:
                    os.fsync(handle.fileno())
            fire("checkpoint.after_snapshot_write")
            fire("checkpoint.before_publish")
            os.replace(tmp_path, self.snapshot_path)
            if durable:
                fsync_directory(self.data_dir)
            fire("checkpoint.after_publish")
            fire("checkpoint.before_wal_reset")
            self._wal.reset()
            fire("checkpoint.after_wal_reset")
        except SimulatedCrash:
            if not self._wal.dead:
                self._wal.kill()
            raise
        self._txns_since_checkpoint = 0

    # -- recovery replay -----------------------------------------------------------

    def _entry(self, aunit_name: str, table_name: str) -> Dict[str, Any]:
        return self._recovered.setdefault(aunit_name, {}).setdefault(
            table_name, {"rows": [], "version": None, "indexes": []}
        )

    def _apply_op(self, op: Tuple[Any, ...]) -> None:
        kind = op[0]
        if kind == "persist_created":
            _, aunit_name, versions = op
            self._created.add(aunit_name)
            self._recovered.setdefault(aunit_name, {})
            for table_name, version in versions.items():
                self._entry(aunit_name, table_name)["version"] = version
        elif kind == "replace":
            _, aunit_name, table_name, rows, version = op
            entry = self._entry(aunit_name, table_name)
            entry["rows"] = list(rows)
            entry["version"] = version
        elif kind == "insert":
            _, aunit_name, table_name, row, version = op
            entry = self._entry(aunit_name, table_name)
            entry["rows"].append(row)
            entry["version"] = version
        elif kind == "delete":
            _, aunit_name, table_name, rows, version = op
            entry = self._entry(aunit_name, table_name)
            for row in rows:
                try:
                    entry["rows"].remove(row)
                except ValueError:
                    raise RecoveryError(
                        f"WAL delete of a row absent from {aunit_name}.{table_name}: "
                        f"{row!r}"
                    ) from None
            entry["version"] = version
        elif kind == "update":
            _, aunit_name, table_name, changes, version = op
            entry = self._entry(aunit_name, table_name)
            rows = entry["rows"]
            for old, new in changes:
                try:
                    rows[rows.index(old)] = new
                except ValueError:
                    raise RecoveryError(
                        f"WAL update of a row absent from {aunit_name}.{table_name}: "
                        f"{old!r}"
                    ) from None
            entry["version"] = version
        elif kind == "create_index":
            _, aunit_name, table_name, columns = op
            entry = self._entry(aunit_name, table_name)
            canonical = tuple(columns)
            if canonical not in {tuple(existing) for existing in entry["indexes"]}:
                entry["indexes"].append(canonical)
        else:
            raise RecoveryError(f"WAL holds an unknown op kind {kind!r}")

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if not self._wal.dead:
                self._wal.close()
        finally:
            for hook in self._close_hooks:
                hook()
