"""Checkpoint snapshots: a checksummed, atomically-published state file.

A snapshot captures the full committed persistent state at one transaction
sequence number so recovery replays only the WAL suffix after it (and the
WAL can be truncated).  The file is a single checksummed record —

``HSNAP1\\n`` file magic, then ``<u32 crc32(payload)> <u32 len> <payload>``
— using the same framing as WAL records, so a snapshot that was torn or
bit-rotted on disk is *detected* (checksum mismatch) and recovery fails
loudly with :class:`~repro.errors.RecoveryError` instead of serving wrong
rows.

Publication is atomic: the state is written to a temporary file, fsynced,
then :func:`os.replace`-d over the live snapshot and the directory entry
fsynced.  A crash at any instant leaves either the old snapshot or the new
one — never a half-written file under the live name.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Any, Optional

from repro.errors import RecoveryError

__all__ = [
    "SNAPSHOT_MAGIC",
    "encode_snapshot",
    "fsync_directory",
    "load_snapshot",
    "write_snapshot",
]

#: File magic identifying a Hilda snapshot (version 1).
SNAPSHOT_MAGIC = b"HSNAP1\n"

_HEADER = struct.Struct("<II")

_PICKLE_PROTOCOL = 4


def encode_snapshot(state: Any) -> bytes:
    """The full on-disk byte image of a snapshot holding ``state``."""
    blob = pickle.dumps(state, protocol=_PICKLE_PROTOCOL)
    return SNAPSHOT_MAGIC + _HEADER.pack(zlib.crc32(blob) & 0xFFFFFFFF, len(blob)) + blob


def write_snapshot(path: str, state: Any, durable: bool = True) -> None:
    """Atomically publish ``state`` as the snapshot at ``path``.

    The caller is responsible for crash points around this call (the WAL
    backend fires the ``checkpoint.*`` hooks between its own write/publish
    steps); this function only promises that ``path`` always holds either
    the previous or the new snapshot.
    """
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(encode_snapshot(state))
        handle.flush()
        if durable:
            os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    if durable:
        fsync_directory(os.path.dirname(path) or ".")


def load_snapshot(path: str) -> Optional[Any]:
    """Load and verify the snapshot at ``path`` (None when there is none).

    Unlike a torn WAL *tail* — which is expected after a crash and silently
    discarded — a snapshot that exists but does not verify means the base
    state itself is unreadable, so this raises :class:`RecoveryError`.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return None
    if not data.startswith(SNAPSHOT_MAGIC):
        raise RecoveryError(f"snapshot {path!r} has no valid header")
    offset = len(SNAPSHOT_MAGIC)
    if len(data) < offset + _HEADER.size:
        raise RecoveryError(f"snapshot {path!r} is truncated")
    crc, length = _HEADER.unpack_from(data, offset)
    blob = data[offset + _HEADER.size : offset + _HEADER.size + length]
    if len(blob) != length:
        raise RecoveryError(f"snapshot {path!r} is truncated")
    if zlib.crc32(blob) & 0xFFFFFFFF != crc:
        raise RecoveryError(f"snapshot {path!r} failed its checksum")
    try:
        return pickle.loads(blob)
    except Exception as exc:
        raise RecoveryError(f"snapshot {path!r} could not be decoded: {exc}") from exc


def fsync_directory(directory: str) -> None:
    """Make a rename in ``directory`` durable (best effort off Linux)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform refusing dir fsync
        pass
    finally:
        os.close(fd)
