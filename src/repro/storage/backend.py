"""The storage-backend seam: one interface, many engines behind it.

:class:`~repro.runtime.engine.HildaEngine` talks to its store exclusively
through :class:`StorageBackend` (the one-interface-many-backends shape of
PostBOUND's ``db/`` layer the ROADMAP points at):

* :class:`MemoryBackend` — the default and fastest: everything lives in
  process memory, every method is a no-op.  This is exactly the engine's
  pre-storage behaviour; code paths not opting into durability pay nothing.
* :class:`~repro.storage.wal_backend.WalBackend` — opt-in durability: a
  write-ahead log with group commit plus checkpoint snapshots, recovered on
  construction (see ``docs/storage.md``).

The engine drives the backend with a small transactional protocol, always
in this order:

1. ``begin()`` under the engine's write lock (re-entrant: nested write
   sections — a session start seeding persistent tables — join the open
   transaction);
2. journal callbacks fire from inside :class:`~repro.relational.table.Table`
   mutations (the backend installed them via :meth:`bind_table`);
3. ``commit(meta)`` while still holding the write lock, returning a ticket;
4. ``wait_durable(ticket)`` *after releasing the write lock* — this is what
   lets concurrent committers share one fsync (group commit).

Recovery is engine-driven and lazy: when the engine first needs an AUnit
type's persistent tables it asks :meth:`recovered_persist` — table
*schemas* come from the program declaration, only contents, secondary
indexes and version stamps come from storage — and falls back to the
normal create-and-seed path when the backend has nothing (fresh directory,
or a type never initialised before the crash).

``REPRO_STORAGE_BACKEND=wal`` overrides the default backend process-wide
(each engine gets a fresh temporary data directory): CI runs the whole
tier-1 suite this way, making every existing test double as a durability
test.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import replace
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.config import StorageConfig
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.hilda.ast import AUnitDecl
    from repro.relational.table import Table

__all__ = ["StorageBackend", "MemoryBackend", "create_backend"]

#: Environment variable forcing a backend for engines that did not pick one.
BACKEND_ENV_VAR = "REPRO_STORAGE_BACKEND"


class StorageBackend:
    """What the engine requires of a store (see the module docstring).

    The base class *is* the memory backend's behaviour: every method is a
    safe no-op, so backends only override what they need.
    """

    #: Matches ``StorageConfig.backend`` for the backend in use.
    name = "memory"

    # -- wiring -----------------------------------------------------------------

    def bind_engine(self, engine: Any) -> None:
        """Give the backend its engine (for checkpoint state export)."""

    def bind_table(self, aunit_name: str, table: "Table") -> None:
        """Install the journal hook routing ``table``'s mutations here."""

    # -- recovery ---------------------------------------------------------------

    def recovered_counters(self) -> Optional[Dict[str, Any]]:
        """Engine counters of the last committed transaction (None = fresh)."""
        return None

    def recovered_persist(self, decl: "AUnitDecl") -> Optional[Dict[str, "Table"]]:
        """Rebuilt persistent tables for ``decl``, or None to create fresh."""
        return None

    # -- transactions -----------------------------------------------------------

    def begin(self) -> None:
        """Open (or join, when nested) a transaction."""

    def commit(self, meta: Dict[str, Any]) -> Optional[Any]:
        """Close the innermost section; at depth 0 log the transaction.

        Returns an opaque durability ticket (None when nothing to await).
        """
        return None

    def wait_durable(self, ticket: Optional[Any]) -> None:
        """Block until the committed transaction is durable (group commit)."""

    def mark_persist_created(
        self, aunit_name: str, versions: Optional[Dict[str, int]] = None
    ) -> None:
        """Journal that ``aunit_name``'s persistent tables now exist.

        ``versions`` carries the fresh tables' version stamps so recovery
        can restore them exactly even for tables that were never written.
        """

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Flush and release storage resources (idempotent)."""


class MemoryBackend(StorageBackend):
    """The default: state lives in process memory only (zero overhead)."""


def create_backend(config: StorageConfig) -> StorageBackend:
    """Build the backend ``config`` selects.

    ``REPRO_STORAGE_BACKEND`` overrides a *default* (memory) selection —
    engines that explicitly configured a backend are left alone, so the
    durability CI leg cannot redirect tests that point two engines at one
    shared data directory on purpose.  A forced WAL backend without a
    ``data_dir`` gets a private temporary directory, removed on close.
    """
    ephemeral_dir: Optional[str] = None
    override = os.environ.get(BACKEND_ENV_VAR)
    if override and config.backend == "memory":
        if override == "wal":
            ephemeral_dir = tempfile.mkdtemp(prefix="repro-wal-")
            config = replace(config, backend="wal", data_dir=ephemeral_dir)
        elif override != "memory":
            raise ConfigError(
                f"{BACKEND_ENV_VAR} must be 'memory' or 'wal', got {override!r}"
            )
    if config.backend == "memory":
        return MemoryBackend()
    from repro.storage.wal_backend import WalBackend

    backend = WalBackend(config)
    if ephemeral_dir is not None:
        backend.on_close(lambda: shutil.rmtree(ephemeral_dir, ignore_errors=True))
    return backend
