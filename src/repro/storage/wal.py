"""The write-ahead log: checksummed records, group commit, crash points.

The WAL is a single append-only file of length-prefixed, CRC-checksummed
records (``docs/storage.md`` documents the format byte by byte):

``HWAL1\\n`` file magic, then per record::

    <u32 crc32(payload)> <u32 len(payload)> <payload bytes>

Payloads are pickled Python values (the WAL lives in the application's own
data directory and is trusted input).  The checksum is what makes recovery
safe against *torn writes*: a record that was only partially on disk when
the machine died fails its CRC (or runs past end-of-file) and is discarded
together with everything after it — a record is either applied whole or
not at all, never half.

**Group commit.**  :meth:`WalWriter.append` performs the buffered write
under the writer mutex; :meth:`WalWriter.sync` makes a prefix durable with
a leader/follower protocol: the first committer to need an fsync becomes
the *leader* and fsyncs everything appended so far, committers arriving
while that fsync is in flight simply wait and are covered by the leader's
(or the next leader's) fsync.  N threads committing concurrently therefore
share O(1) fsyncs instead of paying one each — the engine releases its
write lock before waiting for durability, which is what lets the fsyncs
overlap (see ``docs/concurrency.md``).

**Crash points.**  Every interesting instant of the write path runs
through :meth:`CrashPointRegistry.fire`.  Production leaves the registry
empty (a dict lookup per fire); the fault-injection harness arms a point
with a hook that raises :class:`~repro.errors.SimulatedCrash`, after which
the writer refuses further work — exactly like a process that lost power
mid-write.  The catalog of points is :data:`CRASH_POINTS`.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import threading
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulatedCrash, StorageError

__all__ = [
    "CRASH_POINTS",
    "CrashPointRegistry",
    "WAL_MAGIC",
    "WalWriter",
    "encode_record",
    "read_wal",
]

#: File magic identifying a Hilda WAL (version 1).
WAL_MAGIC = b"HWAL1\n"

#: crc32(payload), len(payload) — little-endian u32 each.
_HEADER = struct.Struct("<II")

#: Pickle protocol 4: available on every supported Python, stable framing.
_PICKLE_PROTOCOL = 4

#: The catalog of crash points the fault-injection harness can arm, in the
#: order they are reached on the write path (see docs/storage.md).
CRASH_POINTS = (
    "wal.before_append",
    "wal.after_append",
    "wal.before_sync",
    "wal.mid_group_commit",
    "wal.after_sync",
    "checkpoint.before_snapshot_write",
    "checkpoint.after_snapshot_write",
    "checkpoint.before_publish",
    "checkpoint.after_publish",
    "checkpoint.before_wal_reset",
    "checkpoint.after_wal_reset",
)


class CrashPointRegistry:
    """Named fault-injection hooks on the storage write path.

    ``fire(point)`` is a no-op unless a hook was armed for ``point`` —
    production code pays one dict lookup.  :meth:`arm` installs a hook; the
    default hook raises :class:`~repro.errors.SimulatedCrash` on the n-th
    firing, which is how the recovery property test crashes a live engine
    at every point of the write path in turn.
    """

    def __init__(self) -> None:
        self._hooks: Dict[str, Callable[[str], None]] = {}
        self._fired: Dict[str, int] = {}

    def arm(
        self,
        point: str,
        hook: Optional[Callable[[str], None]] = None,
        at_firing: int = 1,
    ) -> None:
        """Arm ``point``; the default hook raises SimulatedCrash on the
        ``at_firing``-th time the point is reached (1-based)."""
        if point not in CRASH_POINTS:
            raise StorageError(f"unknown crash point {point!r} (see CRASH_POINTS)")
        if hook is None:
            remaining = [at_firing]

            def hook(name: str) -> None:
                remaining[0] -= 1
                if remaining[0] <= 0:
                    raise SimulatedCrash(name)

        self._hooks[point] = hook

    def disarm(self, point: Optional[str] = None) -> None:
        """Remove one hook, or every hook when ``point`` is None."""
        if point is None:
            self._hooks.clear()
        else:
            self._hooks.pop(point, None)

    def fire(self, point: str) -> None:
        hook = self._hooks.get(point)
        if hook is not None:
            self._fired[point] = self._fired.get(point, 0) + 1
            hook(point)

    def firings(self, point: str) -> int:
        """How many times an *armed* ``point`` has been reached."""
        return self._fired.get(point, 0)


# ---------------------------------------------------------------------------
# Record codec
# ---------------------------------------------------------------------------


def encode_record(payload: Any) -> bytes:
    """One WAL record: header (crc32, length) + pickled payload."""
    blob = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
    return _HEADER.pack(zlib.crc32(blob) & 0xFFFFFFFF, len(blob)) + blob


def decode_records(data: bytes, offset: int = 0) -> Tuple[List[Any], int]:
    """Decode records from ``data`` starting at ``offset``.

    Returns ``(payloads, end)`` where ``end`` is the offset just past the
    last *valid* record.  Decoding stops — without raising — at the first
    torn (runs past end of data), checksum-corrupt or unpicklable record:
    everything from there on is an invalid tail that recovery discards.
    """
    payloads: List[Any] = []
    position = offset
    size = len(data)
    while position + _HEADER.size <= size:
        crc, length = _HEADER.unpack_from(data, position)
        start = position + _HEADER.size
        end = start + length
        if end > size:
            break  # torn record: the payload never fully reached disk
        blob = data[start:end]
        if zlib.crc32(blob) & 0xFFFFFFFF != crc:
            break  # corrupt record (bit rot or a torn header)
        try:
            payloads.append(pickle.loads(blob))
        except Exception:
            break  # checksum collision on garbage — treat as corrupt
        position = end
    return payloads, position


def read_wal(path: str) -> Tuple[List[Any], int]:
    """Read every valid record of a WAL file.

    Returns ``(payloads, valid_end)``; ``valid_end`` is the byte offset of
    the end of the valid prefix (where appends may safely resume).  A
    missing file or a file without the magic yields no records.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0
    if not data.startswith(WAL_MAGIC):
        return [], 0
    return decode_records(data, offset=len(WAL_MAGIC))


# ---------------------------------------------------------------------------
# The writer
# ---------------------------------------------------------------------------


class WalWriter:
    """Appends records to the log and makes prefixes durable (group commit).

    The file is opened unbuffered so every append is a single ``write(2)``
    of the whole record — torn-tail handling in :func:`read_wal` covers the
    crash-mid-write case — and so the leader's ``fsync`` can run *outside*
    the append mutex: appends from other committers proceed while an fsync
    is in flight and are covered by the next leader.

    ``fsync_mode``:

    * ``"batch"`` — group commit (the default): :meth:`sync` batches
      concurrent committers behind one fsync;
    * ``"always"`` — identical durability, but callers invoke :meth:`sync`
      inside their critical section, serialising fsyncs (the baseline the
      storage benchmark compares against);
    * ``"off"`` — no fsync at all: durable against process crashes (every
      append reaches the OS) but not against power loss.
    """

    def __init__(
        self,
        path: str,
        fsync_mode: str = "batch",
        crash_points: Optional[CrashPointRegistry] = None,
    ) -> None:
        self.path = path
        self.fsync_mode = fsync_mode
        self.crash_points = crash_points or CrashPointRegistry()
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._sync_in_progress = False
        #: Bumped by reset(): durability tickets and leader fsync targets
        #: from an earlier epoch describe a file that no longer exists and
        #: must be discarded, never applied to the watermarks of the new one.
        self._epoch = 0
        self._dead = False
        # read_wal returns valid_end == 0 only when the file is missing or
        # its magic is damaged; both mean no salvageable prefix, so start a
        # fresh log rather than appending after unreadable bytes.
        _, valid_end = read_wal(path)
        if valid_end == 0:
            with open(path, "wb") as handle:
                handle.write(WAL_MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
            valid_end = len(WAL_MAGIC)
        elif os.path.getsize(path) > valid_end:
            # Truncate the invalid tail left by a crash so appends resume
            # from a clean record boundary.
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
        self._file: io.FileIO = open(path, "ab", buffering=0)
        self._appended = valid_end
        self._synced = valid_end

    # -- introspection (used by the fault-injection harness) -------------------

    @property
    def appended_size(self) -> int:
        """Bytes written to the OS (not necessarily durable)."""
        return self._appended

    @property
    def synced_size(self) -> int:
        """Bytes known durable (covered by an fsync)."""
        return self._synced

    @property
    def dead(self) -> bool:
        return self._dead

    # -- writing ----------------------------------------------------------------

    def append(self, payload: Any) -> int:
        """Append one record; returns the LSN (end offset) to pass to sync."""
        blob = encode_record(payload)
        with self._mutex:
            self._check_alive()
            try:
                self.crash_points.fire("wal.before_append")
                # Raw (unbuffered) writes may legally land fewer bytes than
                # asked without raising; loop so _appended only ever advances
                # past bytes that actually reached the OS.
                written = 0
                while written < len(blob):
                    count = self._file.write(blob[written:])
                    if not count:
                        raise StorageError(
                            f"WAL write to {self.path!r} made no progress"
                        )
                    written += count
                self._appended += len(blob)
                self.crash_points.fire("wal.after_append")
            except SimulatedCrash:
                self._die_locked()
                raise
            except StorageError:
                self._die_locked()
                raise
            except OSError as exc:
                # A failed write may have left a torn record on disk; refuse
                # further work so the tail stays a cleanly discardable suffix.
                self._die_locked()
                raise StorageError(
                    f"WAL append to {self.path!r} failed: {exc}"
                ) from exc
            return self._appended

    def sync(self, upto: int) -> None:
        """Block until the log is durable up to ``upto`` (group commit).

        An ``upto`` obtained before a :meth:`reset` is satisfied instantly:
        reset only ever follows a *published* checkpoint, so every byte of
        the pre-reset log is already durable in the snapshot.
        """
        if self.fsync_mode == "off":
            return
        with self._cond:
            epoch = self._epoch
            while True:
                self._check_alive()
                if self._synced >= upto:
                    return
                if self._epoch != epoch or upto > self._appended:
                    # The log was reset under us (checkpoint): everything
                    # appended before the reset is covered by the published
                    # snapshot, so there is nothing left to await.  Within
                    # one epoch upto never exceeds _appended (append returns
                    # it), so the second test only catches stale tickets.
                    return
                if not self._sync_in_progress:
                    self._sync_in_progress = True
                    target = self._appended
                    break
                self._cond.wait()
        # Leader: fsync outside the mutex so appends (and hence commits
        # queueing up behind this sync) keep flowing while we wait on disk.
        try:
            self.crash_points.fire("wal.before_sync")
            self.crash_points.fire("wal.mid_group_commit")
            os.fsync(self._file.fileno())
            self.crash_points.fire("wal.after_sync")
        except SimulatedCrash:
            with self._cond:
                self._die_locked()
            raise
        except (OSError, ValueError) as exc:
            # The file was closed under the fsync.  Only kill() can do that
            # (reset and close wait for in-flight leaders), so surface the
            # writer's death as a StorageError instead of leaking the raw
            # file error — and always clear the leader flag so waiting
            # followers are never stranded.
            with self._cond:
                if not self._dead:
                    self._die_locked()
                self._sync_in_progress = False
                self._cond.notify_all()
            raise StorageError(
                f"WAL fsync of {self.path!r} failed: {exc}"
            ) from exc
        with self._cond:
            if self._epoch == epoch:
                self._synced = max(self._synced, target)
            # else: a reset replaced the file after this leader captured its
            # target; the target describes the old file and applying it
            # would mark never-fsynced bytes of the new log as durable.
            self._sync_in_progress = False
            self._cond.notify_all()

    def reset(self) -> None:
        """Truncate the log to empty (called by checkpoint, post-publish).

        The caller guarantees every record appended so far is durable
        elsewhere (the just-published snapshot) — that is what entitles
        committers still waiting on pre-reset offsets to return satisfied.
        """
        with self._cond:
            self._check_alive()
            # A leader fsync runs outside this mutex: closing the file under
            # it would hand the leader a dead descriptor (and its stale
            # target could corrupt the new epoch's watermark).  Wait it out;
            # the leader only needs the condition variable to finish.
            while self._sync_in_progress:
                self._cond.wait()
                self._check_alive()
            self._file.close()
            with open(self.path, "wb") as handle:
                handle.write(WAL_MAGIC)
                handle.flush()
                if self.fsync_mode != "off":
                    os.fsync(handle.fileno())
            self._file = open(self.path, "ab", buffering=0)
            self._epoch += 1
            self._appended = len(WAL_MAGIC)
            self._synced = len(WAL_MAGIC)
            # Wake committers parked on pre-reset offsets: their epoch check
            # tells them their bytes are snapshot-durable.
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            if self._dead:
                return
            # Same discipline as reset(): never close the file while a
            # leader fsync is in flight outside the mutex.
            while self._sync_in_progress:
                self._cond.wait()
                if self._dead:
                    return
            try:
                if self.fsync_mode != "off" and self._synced < self._appended:
                    os.fsync(self._file.fileno())
                    self._synced = self._appended
            finally:
                self._dead = True
                self._file.close()
                self._cond.notify_all()

    def kill(self) -> None:
        """Simulate losing the process without flushing anything further."""
        with self._mutex:
            self._die_locked()

    # -- internals ---------------------------------------------------------------

    def _check_alive(self) -> None:
        if self._dead:
            raise StorageError(f"WAL writer for {self.path!r} is closed or crashed")

    def _die_locked(self) -> None:
        self._dead = True
        self._sync_in_progress = False
        try:
            self._file.close()
        except Exception:  # pragma: no cover - best effort
            pass
        self._cond.notify_all()
