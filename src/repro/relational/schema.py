"""Relational schema definitions.

A Hilda ``schema { ... }`` block declares one or more tables, each with a
list of typed columns (Figure 2 of the paper, e.g. ``course(cid:int,
cname:string)``).  These classes model that structure:

* :class:`Column` — a named, typed column.
* :class:`TableSchema` — a named table with columns and an optional key.
* :class:`Schema` — an ordered collection of table schemas, i.e. what a
  single ``input``/``output``/``local``/``persist`` block declares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.types import DataType, coerce_value, parse_type_name

__all__ = ["Column", "TableSchema", "Schema"]


@dataclass(frozen=True)
class Column:
    """A single typed column of a table."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")

    @classmethod
    def parse(cls, name: str, type_name: str) -> "Column":
        """Build a column from the ``name:type`` notation used by Hilda."""
        return cls(name=name, dtype=parse_type_name(type_name))

    def __str__(self) -> str:
        return f"{self.name}:{self.dtype.value}"


class TableSchema:
    """A named table schema: ordered columns plus an optional primary key.

    The paper's conflict-detection and reactivation semantics compare
    activation tuples "by their primary key" (Definition 8).  When no key is
    declared, the whole row acts as the key, which is what the MiniCMS
    examples rely on (their first column is a unique id).
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[Sequence[str]] = None,
        indexes: Sequence[Sequence[str]] = (),
    ) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        seen = set()
        for column in self.columns:
            if column.name in seen:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {name!r}"
                )
            seen.add(column.name)
        self._index: Dict[str, int] = {
            column.name: position for position, column in enumerate(self.columns)
        }
        if primary_key:
            missing = [col for col in primary_key if col not in self._index]
            if missing:
                raise SchemaError(
                    f"primary key column(s) {missing} not in table {name!r}"
                )
            self.primary_key: Tuple[str, ...] = tuple(primary_key)
        else:
            self.primary_key = ()
        normalized_indexes = []
        for index_columns in indexes:
            index_tuple = tuple(index_columns)
            missing = [col for col in index_tuple if col not in self._index]
            if missing:
                raise SchemaError(
                    f"index column(s) {missing} not in table {name!r}"
                )
            normalized_indexes.append(index_tuple)
        #: Secondary hash indexes declared with the schema; :class:`Table`
        #: creates and maintains them automatically.
        self.indexes: Tuple[Tuple[str, ...], ...] = tuple(normalized_indexes)

    # -- introspection ------------------------------------------------------

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    @property
    def column_types(self) -> Tuple[DataType, ...]:
        return tuple(column.dtype for column in self.columns)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def has_column(self, name: str) -> bool:
        return name in self._index

    def column_position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise UnknownColumnError(name, self.name) from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_position(name)]

    def key_positions(self) -> Tuple[int, ...]:
        """Positions of the key columns; the full row when no key declared."""
        if self.primary_key:
            return tuple(self._index[name] for name in self.primary_key)
        return tuple(range(self.arity))

    # -- row handling --------------------------------------------------------

    def coerce_row(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Validate arity and coerce every value to its column type."""
        if len(values) != self.arity:
            raise SchemaError(
                f"table {self.name!r} expects {self.arity} values, got {len(values)}"
            )
        return tuple(
            coerce_value(value, column.dtype)
            for value, column in zip(values, self.columns)
        )

    def row_from_mapping(self, mapping: Dict[str, Any]) -> Tuple[Any, ...]:
        """Build a row from a name->value mapping; missing columns become NULL."""
        unknown = set(mapping) - set(self.column_names)
        if unknown:
            raise UnknownColumnError(sorted(unknown)[0], self.name)
        return self.coerce_row([mapping.get(name) for name in self.column_names])

    def key_of(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        return tuple(row[position] for position in self.key_positions())

    # -- derivation ----------------------------------------------------------

    def renamed(self, name: str) -> "TableSchema":
        """A copy of this schema under a different table name."""
        return TableSchema(name, self.columns, self.primary_key or None, self.indexes)

    def is_union_compatible(self, other: "TableSchema") -> bool:
        """True when rows of ``other`` can be stored in this table."""
        return self.arity == other.arity

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.columns == other.columns
            and self.primary_key == other.primary_key
            and self.indexes == other.indexes
        )

    def __hash__(self) -> int:
        return hash((self.name, self.columns, self.primary_key, self.indexes))

    def __repr__(self) -> str:
        cols = ", ".join(str(column) for column in self.columns)
        return f"TableSchema({self.name}({cols}))"


class Schema:
    """An ordered collection of table schemas.

    This corresponds to one ``schema { ... }`` block in a Hilda program,
    which may declare several tables (e.g. CMSRoot's persistent schema
    declares course, staff, student, assign, problem, group, groupmember
    and invitation).
    """

    def __init__(self, tables: Iterable[TableSchema] = ()) -> None:
        self._tables: Dict[str, TableSchema] = {}
        for table in tables:
            self.add(table)

    def add(self, table: TableSchema) -> None:
        if table.name in self._tables:
            raise SchemaError(f"duplicate table {table.name!r} in schema")
        self._tables[table.name] = table

    def merge(self, other: "Schema") -> "Schema":
        """A new schema containing the tables of both (used by inheritance)."""
        merged = Schema(self._tables.values())
        for table in other:
            merged.add(table)
        return merged

    @property
    def table_names(self) -> List[str]:
        return list(self._tables)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            from repro.errors import UnknownTableError

            raise UnknownTableError(name) from None

    def get(self, name: str) -> Optional[TableSchema]:
        return self._tables.get(name)

    def __iter__(self) -> Iterator[TableSchema]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return list(self) == list(other)

    def __repr__(self) -> str:
        return f"Schema({', '.join(self.table_names)})"

    def is_empty(self) -> bool:
        return not self._tables
